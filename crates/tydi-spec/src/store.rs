//! Hash-consed storage for logical types.
//!
//! A [`TypeStore`] interns every [`LogicalType`] node exactly once and
//! hands out a compact [`TypeId`] (a `u32`). Structurally identical
//! types always receive the same id, so *type equality becomes an
//! integer compare*, and the derived properties that the compiler
//! pipeline keeps recomputing on type trees — bit width, mangled
//! display text, a stable structural fingerprint, the physical-stream
//! expansion — are computed **once per distinct node** and cached in
//! per-node side tables.
//!
//! Interning is bottom-up with true structural sharing: a `Group`
//! node's dedup key holds the [`TypeId`]s of its children, not their
//! trees, so composing a new type from already-interned pieces is
//! O(number of direct children) — independent of how deep those
//! children are. This is what makes template-heavy elaboration flat:
//! the first reference to `pass_i<type Deep>` pays for `Deep` once and
//! every later reference is a handful of integer hashes.
//!
//! Every id also exposes a canonical [`Arc<LogicalType>`] so the rest
//! of the toolchain (IR ports, lowering, text formats) keeps working
//! on plain trees; structurally equal types share one allocation,
//! which downstream consumers exploit with `Arc::ptr_eq` fast paths.
//!
//! # Concurrency
//!
//! The store is safe to share across elaboration workers: the intern
//! map is split into [`SHARD_COUNT`] shards selected by the hash of
//! the structural dedup key, each behind its own `RwLock`, and every
//! method takes `&self`. A [`TypeId`] encodes `(slot << 4) | shard`;
//! ids are assigned per shard in first-intern order, so their *raw
//! values* may vary with thread interleaving, but everything the
//! compiler emits is derived from the structural side tables (mangled
//! text, canonical trees, fingerprints), which depend only on the
//! type's structure — output stays byte-identical regardless of
//! thread count. Lock contention is counted (see
//! [`TypeStoreStats::shard_contention`]) so the `--timings` report can
//! surface it.
//!
//! Invariants maintained by construction (checked once per distinct
//! node, never re-walked):
//!
//! * every interned type is valid per [`LogicalType::validate`]
//!   (positive bit widths, unique field names, non-empty unions, no
//!   streams inside `user` types);
//! * [`TypeStore::mangled`] equals the type's canonical display form
//!   with all spaces removed — byte-identical to what template
//!   instance mangling historically produced;
//! * [`TypeStore::fingerprint`] is a stable (cross-process) structural
//!   FNV-1a hash: equal ids ⇔ equal fingerprints for ids of one store.
//!
//! The module also hosts a process-wide memo for
//! [`lower`](crate::physical::lower) — [`lower_cached`] — used by the
//! RTL backends, where ports arrive as plain `Arc<LogicalType>`
//! without a store in scope. That memo is sharded the same way (by
//! fingerprint, and by pointer for the `Arc`-identity fast path) so
//! parallel lowering does not serialize on one mutex.

use crate::logical::{union_tag_width, Field, LogicalType};
use crate::physical::PhysicalStream;
use crate::stream::{Complexity, Direction, StreamParams, Synchronicity, Throughput};
use crate::SpecError;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{
    Arc, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError, Weak,
};

/// Number of independently locked intern-map shards.
pub const SHARD_COUNT: usize = 16;
const SHARD_BITS: u32 = 4;
const SHARD_MASK: u32 = (SHARD_COUNT as u32) - 1;

/// A compact handle to an interned logical type.
///
/// Two ids from the *same* [`TypeStore`] are equal exactly when the
/// types they denote are structurally equal; comparing ids from
/// different stores is meaningless. Raw id values are only stable
/// within one run (shard slots fill in first-intern order); all
/// persisted artifacts use structural fingerprints instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(u32);

impl TypeId {
    /// The raw `(slot << 4) | shard` encoding of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn shard(self) -> usize {
        (self.0 & SHARD_MASK) as usize
    }

    fn slot(self) -> usize {
        (self.0 >> SHARD_BITS) as usize
    }

    fn encode(shard: usize, slot: usize) -> TypeId {
        let raw = u32::try_from(slot)
            .ok()
            .and_then(|s| s.checked_shl(SHARD_BITS))
            .expect("type store shard overflow");
        TypeId(raw | shard as u32)
    }
}

/// The structural dedup key of one node: children by id, so hashing
/// and equality are O(direct children).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum NodeKey {
    Null,
    Bit(u32),
    Group(Vec<(String, TypeId)>),
    Union(Vec<(String, TypeId)>),
    Stream {
        element: TypeId,
        dimension: u32,
        throughput: Throughput,
        complexity: Complexity,
        direction: Direction,
        synchronicity: Synchronicity,
        user: Option<TypeId>,
        keep: bool,
    },
}

impl NodeKey {
    /// Which shard this key's node lives in.
    fn shard(&self) -> usize {
        let mut hasher = DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) & (SHARD_COUNT - 1)
    }
}

/// Cached per-node data. Immutable after interning (the lazily
/// memoized expansion uses a lock-free [`OnceLock`]), so accessors
/// can hand out clones of the containing `Arc` without holding any
/// shard lock.
#[derive(Debug)]
struct NodeData {
    /// Canonical deep tree; structurally equal ids share this `Arc`.
    canonical: Arc<LogicalType>,
    /// Element bit width (nested streams contribute zero).
    bit_width: u32,
    /// Canonical display text with spaces removed (template mangling).
    mangled: Arc<str>,
    /// Stable structural FNV-1a fingerprint.
    fingerprint: u64,
    /// Whether the node or any descendant is a `Stream`.
    contains_stream: bool,
    /// Whether the type carries no information ([`LogicalType::is_null`]).
    is_null: bool,
    /// Total node count (compiler statistics).
    node_count: usize,
    /// Memoized physical expansion (root-level streams only).
    expansion: OnceLock<Arc<Vec<PhysicalStream>>>,
}

/// Counters describing how much work a [`TypeStore`] saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypeStoreStats {
    /// Number of distinct type nodes interned.
    pub distinct_types: usize,
    /// Constructor/intern calls answered from the dedup table.
    pub intern_hits: usize,
    /// Physical expansions served from the per-node cache.
    pub expansion_hits: usize,
    /// Physical expansions actually computed.
    pub expansions_computed: usize,
    /// Shard-lock acquisitions that found the lock held (contention
    /// under concurrent interning; always 0 single-threaded).
    pub shard_contention: usize,
}

impl TypeStoreStats {
    /// Dedup hit rate in percent (0 when nothing was interned).
    pub fn hit_rate(&self) -> f64 {
        let total = self.distinct_types + self.intern_hits;
        if total == 0 {
            0.0
        } else {
            self.intern_hits as f64 * 100.0 / total as f64
        }
    }
}

/// One intern-map shard: slot-indexed nodes plus the dedup table
/// mapping structural keys to slots.
#[derive(Debug, Default)]
struct Shard {
    nodes: Vec<Arc<NodeData>>,
    dedup: HashMap<NodeKey, u32>,
}

/// A hash-consing store for [`LogicalType`]s (see the module docs).
///
/// All methods take `&self`; the store can be shared across threads
/// (e.g. behind an `Arc`) and interned into concurrently.
#[derive(Debug, Default)]
pub struct TypeStore {
    shards: [RwLock<Shard>; SHARD_COUNT],
    intern_hits: AtomicUsize,
    expansion_hits: AtomicUsize,
    expansions_computed: AtomicUsize,
    contention: AtomicUsize,
}

impl TypeStore {
    /// An empty store.
    pub fn new() -> Self {
        TypeStore::default()
    }

    /// Number of distinct interned nodes.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("type store shard poisoned").nodes.len())
            .sum()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Usage counters.
    pub fn stats(&self) -> TypeStoreStats {
        TypeStoreStats {
            distinct_types: self.len(),
            intern_hits: self.intern_hits.load(Ordering::Relaxed),
            expansion_hits: self.expansion_hits.load(Ordering::Relaxed),
            expansions_computed: self.expansions_computed.load(Ordering::Relaxed),
            shard_contention: self.contention.load(Ordering::Relaxed),
        }
    }

    // ---- constructors (O(direct children) each) --------------------------

    /// Interns `Null`.
    pub fn null(&self) -> TypeId {
        self.insert(NodeKey::Null, |_| NodeBuild {
            canonical: LogicalType::Null,
            bit_width: 0,
            mangled: "Null".to_string(),
            contains_stream: false,
            is_null: true,
            node_count: 1,
        })
        .expect("Null is always valid")
    }

    /// Interns `Bit(width)`; rejects zero widths.
    pub fn bit(&self, width: u32) -> Result<TypeId, SpecError> {
        if width == 0 {
            return Err(SpecError::ZeroWidthBit);
        }
        self.insert(NodeKey::Bit(width), |_| NodeBuild {
            canonical: LogicalType::Bit(width),
            bit_width: width,
            mangled: format!("Bit({width})"),
            contains_stream: false,
            is_null: false,
            node_count: 1,
        })
    }

    /// Interns a `Group` of already-interned fields; rejects duplicate
    /// field names.
    pub fn group(&self, fields: Vec<(String, TypeId)>) -> Result<TypeId, SpecError> {
        self.composite(fields, /* is_group */ true)
    }

    /// Interns a `Union` of already-interned variants; rejects empty
    /// unions and duplicate variant names.
    pub fn union(&self, fields: Vec<(String, TypeId)>) -> Result<TypeId, SpecError> {
        self.composite(fields, /* is_group */ false)
    }

    /// Interns a `Stream` node over an already-interned element.
    ///
    /// `params.user` must be `None` — pass the user type as the
    /// interned `user` id instead (rejected when it contains a
    /// stream, per the specification).
    pub fn stream(
        &self,
        element: TypeId,
        params: StreamParams,
        user: Option<TypeId>,
    ) -> Result<TypeId, SpecError> {
        debug_assert!(
            params.user.is_none(),
            "pass the user type as an interned id"
        );
        if let Some(user_id) = user {
            if self.node(user_id).contains_stream {
                return Err(SpecError::InvalidParameter {
                    parameter: "user",
                    message: "user types may not contain streams".into(),
                });
            }
        }
        let key = NodeKey::Stream {
            element,
            dimension: params.dimension,
            throughput: params.throughput,
            complexity: params.complexity,
            direction: params.direction,
            synchronicity: params.synchronicity,
            user,
            keep: params.keep,
        };
        self.insert(key, |store| {
            let elem = store.node(element);
            let user_node = user.map(|u| store.node(u));
            let mut full_params = params.clone();
            full_params.user = user_node.as_ref().map(|u| Box::new((*u.canonical).clone()));
            let canonical = LogicalType::Stream {
                element: Box::new((*elem.canonical).clone()),
                params: full_params,
            };
            // Mangled text mirrors `write_logical_type` minus spaces.
            let mut mangled = format!("Stream({}", elem.mangled);
            if params.dimension != 0 {
                let _ = write!(mangled, ",d={}", params.dimension);
            }
            if params.throughput != Throughput::one() {
                let _ = write!(mangled, ",t={}", params.throughput);
            }
            if params.complexity != Complexity::default() {
                let _ = write!(mangled, ",c={}", params.complexity);
            }
            if params.direction != Direction::Forward {
                let _ = write!(mangled, ",r={}", params.direction);
            }
            if params.synchronicity != Synchronicity::Sync {
                let _ = write!(mangled, ",x={}", params.synchronicity);
            }
            if let Some(u) = &user_node {
                let _ = write!(mangled, ",u={}", u.mangled);
            }
            if params.keep {
                mangled.push_str(",keep");
            }
            mangled.push(')');
            NodeBuild {
                canonical,
                bit_width: 0,
                mangled,
                contains_stream: true,
                is_null: elem.is_null && !params.keep,
                node_count: 1
                    + elem.node_count
                    + user_node.as_ref().map(|u| u.node_count).unwrap_or(0),
            }
        })
    }

    /// Interns an arbitrary type tree, reusing every already-interned
    /// subtree. O(tree size) on first sight, O(1)-amortized per node
    /// thereafter; prefer the typed constructors on hot paths.
    pub fn intern(&self, ty: &LogicalType) -> Result<TypeId, SpecError> {
        match ty {
            LogicalType::Null => Ok(self.null()),
            LogicalType::Bit(width) => self.bit(*width),
            LogicalType::Group(fields) => {
                let interned = self.intern_fields(fields)?;
                self.group(interned)
            }
            LogicalType::Union(fields) => {
                let interned = self.intern_fields(fields)?;
                self.union(interned)
            }
            LogicalType::Stream { element, params } => {
                let element_id = self.intern(element)?;
                let user_id = match &params.user {
                    Some(user) => Some(self.intern(user)?),
                    None => None,
                };
                let mut bare = params.clone();
                bare.user = None;
                self.stream(element_id, bare, user_id)
            }
        }
    }

    fn intern_fields(&self, fields: &[Field]) -> Result<Vec<(String, TypeId)>, SpecError> {
        fields
            .iter()
            .map(|f| Ok((f.name.clone(), self.intern(&f.ty)?)))
            .collect()
    }

    // ---- accessors (O(1)) -------------------------------------------------

    /// The canonical tree behind an id; structurally equal ids share
    /// the same `Arc`.
    pub fn ty(&self, id: TypeId) -> Arc<LogicalType> {
        Arc::clone(&self.node(id).canonical)
    }

    /// Cached element bit width.
    pub fn bit_width(&self, id: TypeId) -> u32 {
        self.node(id).bit_width
    }

    /// Cached canonical mangled text (display form, spaces removed).
    pub fn mangled(&self, id: TypeId) -> Arc<str> {
        Arc::clone(&self.node(id).mangled)
    }

    /// Cached stable structural fingerprint.
    pub fn fingerprint(&self, id: TypeId) -> u64 {
        self.node(id).fingerprint
    }

    /// Whether the type is (or contains) a `Stream`.
    pub fn contains_stream(&self, id: TypeId) -> bool {
        self.node(id).contains_stream
    }

    /// Whether the node itself is a `Stream`.
    pub fn is_stream(&self, id: TypeId) -> bool {
        matches!(&*self.node(id).canonical, LogicalType::Stream { .. })
    }

    /// Whether the type carries no information.
    pub fn is_null(&self, id: TypeId) -> bool {
        self.node(id).is_null
    }

    /// Cached total node count.
    pub fn node_count(&self, id: TypeId) -> usize {
        self.node(id).node_count
    }

    /// The physical-stream expansion of the type, computed once per
    /// distinct node and shared thereafter. Concurrent first calls may
    /// race to compute; exactly one result wins and is shared.
    pub fn expansion(&self, id: TypeId) -> Result<Arc<Vec<PhysicalStream>>, SpecError> {
        let node = self.node(id);
        if let Some(expansion) = node.expansion.get() {
            self.expansion_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(expansion));
        }
        let computed = Arc::new(crate::physical::lower(&node.canonical)?);
        self.expansions_computed.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::clone(node.expansion.get_or_init(|| computed)))
    }

    // ---- internals --------------------------------------------------------

    fn composite(
        &self,
        fields: Vec<(String, TypeId)>,
        is_group: bool,
    ) -> Result<TypeId, SpecError> {
        if !is_group && fields.is_empty() {
            return Err(SpecError::EmptyUnion);
        }
        for (i, (name, _)) in fields.iter().enumerate() {
            if fields[..i].iter().any(|(other, _)| other == name) {
                return Err(SpecError::DuplicateField(name.clone()));
            }
        }
        let key = if is_group {
            NodeKey::Group(fields.clone())
        } else {
            NodeKey::Union(fields.clone())
        };
        self.insert(key, |store| {
            let kind = if is_group { "Group" } else { "Union" };
            let mut mangled = format!("{kind}(");
            let mut bit_width = 0u32;
            let mut max_width = 0u32;
            let mut contains_stream = false;
            let mut all_null = true;
            let mut node_count = 1usize;
            let mut canonical_fields = Vec::with_capacity(fields.len());
            for (i, (name, child_id)) in fields.iter().enumerate() {
                let child = store.node(*child_id);
                if i > 0 {
                    mangled.push(',');
                }
                let _ = write!(mangled, "{name}:{}", child.mangled);
                bit_width += child.bit_width;
                max_width = max_width.max(child.bit_width);
                contains_stream |= child.contains_stream;
                all_null &= child.is_null;
                node_count += child.node_count;
                canonical_fields.push(Field::new(name.clone(), (*child.canonical).clone()));
            }
            mangled.push(')');
            let (canonical, width, is_null) = if is_group {
                (LogicalType::Group(canonical_fields), bit_width, all_null)
            } else {
                (
                    LogicalType::Union(canonical_fields),
                    max_width + union_tag_width(fields.len()),
                    fields.len() <= 1 && all_null,
                )
            };
            NodeBuild {
                canonical,
                bit_width: width,
                mangled,
                contains_stream,
                is_null,
                node_count,
            }
        })
    }

    /// The shared node behind an id (clones the `Arc` so no shard lock
    /// outlives the call).
    fn node(&self, id: TypeId) -> Arc<NodeData> {
        Arc::clone(&self.read_shard(id.shard()).nodes[id.slot()])
    }

    fn read_shard(&self, idx: usize) -> RwLockReadGuard<'_, Shard> {
        match self.shards[idx].try_read() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.shards[idx].read().expect("type store shard poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("type store shard poisoned"),
        }
    }

    fn write_shard(&self, idx: usize) -> RwLockWriteGuard<'_, Shard> {
        match self.shards[idx].try_write() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.shards[idx].write().expect("type store shard poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("type store shard poisoned"),
        }
    }

    /// Dedup-or-insert: returns the existing id for `key` or builds
    /// the node via `build` (which may read already-interned nodes —
    /// it runs with **no** shard lock held, because child lookups can
    /// land in this very shard).
    fn insert(
        &self,
        key: NodeKey,
        build: impl FnOnce(&Self) -> NodeBuild,
    ) -> Result<TypeId, SpecError> {
        let shard_idx = key.shard();
        {
            let shard = self.read_shard(shard_idx);
            if let Some(&slot) = shard.dedup.get(&key) {
                self.intern_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(TypeId::encode(shard_idx, slot as usize));
            }
        }
        let built = build(self);
        let fingerprint = structural_fingerprint(&built.canonical);
        let data = Arc::new(NodeData {
            canonical: Arc::new(built.canonical),
            bit_width: built.bit_width,
            mangled: Arc::from(built.mangled.as_str()),
            fingerprint,
            contains_stream: built.contains_stream,
            is_null: built.is_null,
            node_count: built.node_count,
            expansion: OnceLock::new(),
        });
        let mut shard = self.write_shard(shard_idx);
        // Double-checked: another worker may have interned the same
        // node while we were building; its id wins so structurally
        // equal types keep sharing one allocation.
        if let Some(&slot) = shard.dedup.get(&key) {
            self.intern_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(TypeId::encode(shard_idx, slot as usize));
        }
        let slot = shard.nodes.len();
        let id = TypeId::encode(shard_idx, slot);
        shard.nodes.push(data);
        shard.dedup.insert(key, slot as u32);
        Ok(id)
    }
}

/// The data `insert` needs to materialize one new node.
struct NodeBuild {
    canonical: LogicalType,
    bit_width: u32,
    mangled: String,
    contains_stream: bool,
    is_null: bool,
    node_count: usize,
}

// ---- stable structural fingerprints --------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_0193;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn u64(&mut self, value: u64) {
        self.bytes(&value.to_le_bytes());
    }
    fn str(&mut self, text: &str) {
        self.u64(text.len() as u64);
        self.bytes(text.as_bytes());
    }
}

/// A stable (cross-process, cross-run) structural FNV-1a hash of a
/// logical type. Structurally equal types always hash equal; the walk
/// tags every constructor and length-prefixes strings so adjacent
/// fields cannot alias.
pub fn structural_fingerprint(ty: &LogicalType) -> u64 {
    let mut fnv = Fnv::new();
    write_type(&mut fnv, ty);
    fnv.0
}

fn write_type(fnv: &mut Fnv, ty: &LogicalType) {
    match ty {
        LogicalType::Null => fnv.u64(0),
        LogicalType::Bit(width) => {
            fnv.u64(1);
            fnv.u64(u64::from(*width));
        }
        LogicalType::Group(fields) | LogicalType::Union(fields) => {
            fnv.u64(if matches!(ty, LogicalType::Group(_)) {
                2
            } else {
                3
            });
            fnv.u64(fields.len() as u64);
            for field in fields {
                fnv.str(&field.name);
                write_type(fnv, &field.ty);
            }
        }
        LogicalType::Stream { element, params } => {
            fnv.u64(4);
            write_type(fnv, element);
            fnv.u64(u64::from(params.dimension));
            let (num, den) = params.throughput.ratio();
            fnv.u64(u64::from(num));
            fnv.u64(u64::from(den));
            fnv.u64(u64::from(params.complexity.level()));
            fnv.u64(matches!(params.direction, Direction::Reverse) as u64);
            fnv.u64(match params.synchronicity {
                Synchronicity::Sync => 0,
                Synchronicity::Flatten => 1,
                Synchronicity::Desync => 2,
                Synchronicity::FlatDesync => 3,
            });
            match &params.user {
                Some(user) => {
                    fnv.u64(1);
                    write_type(fnv, user);
                }
                None => fnv.u64(0),
            }
            fnv.u64(params.keep as u64);
        }
    }
}

// ---- process-wide expansion cache ----------------------------------------

/// Hit/miss counters of the process-wide [`lower_cached`] memo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpansionCacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lowerings actually computed (and memoized).
    pub misses: u64,
}

/// One memoized lowering: the type (for collision verification by
/// value) and its shared expansion.
type ExpansionEntry = (LogicalType, Arc<Vec<PhysicalStream>>);

#[derive(Default)]
struct ExpansionCache {
    /// Fingerprint → (type, expansion) pairs; the inner `Vec` resolves
    /// the (astronomically unlikely) fingerprint collisions by value.
    map: HashMap<u64, Vec<ExpansionEntry>>,
    stats: ExpansionCacheStats,
}

/// The value-keyed memo, sharded by fingerprint so concurrent
/// backends do not serialize on one mutex.
fn expansion_cache() -> &'static [Mutex<ExpansionCache>; SHARD_COUNT] {
    static CACHE: OnceLock<[Mutex<ExpansionCache>; SHARD_COUNT]> = OnceLock::new();
    CACHE.get_or_init(Default::default)
}

fn expansion_shard(fingerprint: u64) -> &'static Mutex<ExpansionCache> {
    &expansion_cache()[(fingerprint as usize) & (SHARD_COUNT - 1)]
}

/// Like [`lower`](crate::physical::lower) but memoized process-wide:
/// each distinct type is lowered once and the shared expansion is
/// handed out thereafter. Used by the RTL backends, which expand the
/// same port types for every module that instantiates them. Errors
/// are not memoized (failing types re-report on every attempt).
pub fn lower_cached(ty: &LogicalType) -> Result<Arc<Vec<PhysicalStream>>, SpecError> {
    let fingerprint = structural_fingerprint(ty);
    let shard = expansion_shard(fingerprint);
    let mut cache = shard.lock().expect("expansion cache poisoned");
    if let Some(candidates) = cache.map.get(&fingerprint) {
        if let Some((_, expansion)) = candidates.iter().find(|(t, _)| t == ty) {
            let expansion = Arc::clone(expansion);
            cache.stats.hits += 1;
            return Ok(expansion);
        }
    }
    drop(cache);
    let _span =
        tydi_obs::trace::fine_span_named("tydi-spec", || format!("expand:{fingerprint:016x}"));
    let expansion = Arc::new(crate::physical::lower(ty)?);
    let mut cache = shard.lock().expect("expansion cache poisoned");
    cache.stats.misses += 1;
    cache
        .map
        .entry(fingerprint)
        .or_default()
        .push((ty.clone(), Arc::clone(&expansion)));
    Ok(expansion)
}

/// One shard of the pointer-identity memo behind [`lower_cached_arc`].
type PtrMemoShard = Mutex<HashMap<usize, (Weak<LogicalType>, Arc<Vec<PhysicalStream>>)>>;

fn ptr_memo(key: usize) -> &'static PtrMemoShard {
    static MEMO: OnceLock<[PtrMemoShard; SHARD_COUNT]> = OnceLock::new();
    let shards = MEMO.get_or_init(Default::default);
    // Arc allocations are word-aligned; shift the always-zero low bits
    // out before picking a shard.
    &shards[(key >> 4) & (SHARD_COUNT - 1)]
}

/// Arc-identity fast path over [`lower_cached`].
///
/// Ports built by the elaborator share the store's canonical `Arc`
/// per distinct type, so the common case — the RTL backends expanding
/// the same port types for every instantiating module — resolves by
/// pointer without walking or comparing the tree. The memo entry
/// stores a [`Weak`] next to the expansion and only counts when
/// upgrading yields the *same* `Arc` (the pointer-memo ABA hazard is
/// unobservable); types from other producers (e.g. projects re-parsed
/// from the IR text format) fall back to the value-keyed
/// [`lower_cached`].
pub fn lower_cached_arc(ty: &Arc<LogicalType>) -> Result<Arc<Vec<PhysicalStream>>, SpecError> {
    let key = Arc::as_ptr(ty) as usize;
    let memo = ptr_memo(key);
    {
        let map = memo.lock().expect("expansion ptr memo poisoned");
        if let Some((weak, expansion)) = map.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, ty) {
                    EXPANSION_PTR_HITS.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(expansion));
                }
            }
        }
    }
    let expansion = lower_cached(ty)?;
    let mut map = memo.lock().expect("expansion ptr memo poisoned");
    if map.len() >= 65_536 / SHARD_COUNT {
        map.retain(|_, (weak, _)| weak.strong_count() > 0);
    }
    map.insert(key, (Arc::downgrade(ty), Arc::clone(&expansion)));
    Ok(expansion)
}

/// Hits served purely by `Arc` identity in [`lower_cached_arc`].
static EXPANSION_PTR_HITS: AtomicU64 = AtomicU64::new(0);

/// Counters of the process-wide expansion memo (both levels: the
/// `Arc`-identity fast path and the value-keyed fallback).
pub fn expansion_cache_stats() -> ExpansionCacheStats {
    let mut stats = ExpansionCacheStats::default();
    for shard in expansion_cache() {
        let s = shard.lock().expect("expansion cache poisoned").stats;
        stats.hits += s.hits;
        stats.misses += s.misses;
    }
    stats.hits += EXPANSION_PTR_HITS.load(Ordering::Relaxed);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower;

    fn deep(depth: u32) -> LogicalType {
        let mut ty = LogicalType::Bit(8);
        for level in 0..depth {
            ty = LogicalType::group(vec![
                ("left", ty.clone()),
                ("right", LogicalType::Bit(level + 1)),
            ]);
        }
        ty
    }

    #[test]
    fn interning_is_idempotent_and_shares() {
        let store = TypeStore::new();
        let a = store.intern(&deep(4)).unwrap();
        let b = store.intern(&deep(4)).unwrap();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&store.ty(a), &store.ty(b)));
        assert!(store.stats().intern_hits > 0);
    }

    #[test]
    fn distinct_types_get_distinct_ids() {
        let store = TypeStore::new();
        let a = store.intern(&deep(3)).unwrap();
        let b = store.intern(&deep(4)).unwrap();
        assert_ne!(a, b);
        assert_ne!(store.fingerprint(a), store.fingerprint(b));
        assert_ne!(store.mangled(a), store.mangled(b));
    }

    #[test]
    fn subtrees_are_shared() {
        let store = TypeStore::new();
        store.intern(&deep(4)).unwrap();
        let before = store.len();
        // deep(5) only adds two nodes: the new group and its new Bit.
        store.intern(&deep(5)).unwrap();
        assert_eq!(store.len(), before + 2);
    }

    #[test]
    fn cached_properties_match_deep_representation() {
        let store = TypeStore::new();
        let samples = [
            LogicalType::Null,
            LogicalType::Bit(7),
            deep(3),
            LogicalType::union(vec![("a", LogicalType::Bit(3)), ("b", deep(2))]),
            LogicalType::stream(
                deep(2),
                StreamParams::new()
                    .with_dimension(2)
                    .with_complexity(Complexity::new(7).unwrap())
                    .with_throughput(Throughput::new(3, 2).unwrap())
                    .with_user(LogicalType::Bit(3))
                    .with_keep(true),
            ),
        ];
        for ty in samples {
            let id = store.intern(&ty).unwrap();
            assert_eq!(store.bit_width(id), ty.bit_width(), "{ty}");
            assert_eq!(store.node_count(id), ty.node_count(), "{ty}");
            assert_eq!(store.contains_stream(id), ty.contains_stream(), "{ty}");
            assert_eq!(store.is_null(id), ty.is_null(), "{ty}");
            assert_eq!(
                store.mangled(id).as_ref(),
                ty.to_string().replace(' ', ""),
                "{ty}"
            );
            assert_eq!(&*store.ty(id), &ty);
        }
    }

    #[test]
    fn expansion_is_cached_and_correct() {
        let store = TypeStore::new();
        let ty = LogicalType::stream(deep(2), StreamParams::new().with_dimension(1));
        let id = store.intern(&ty).unwrap();
        let first = store.expansion(id).unwrap();
        let second = store.expansion(id).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*first, lower(&ty).unwrap());
        let stats = store.stats();
        assert_eq!(stats.expansions_computed, 1);
        assert_eq!(stats.expansion_hits, 1);
    }

    #[test]
    fn constructors_validate_shallowly() {
        let store = TypeStore::new();
        assert_eq!(store.bit(0), Err(SpecError::ZeroWidthBit));
        let b = store.bit(1).unwrap();
        assert_eq!(
            store.group(vec![("x".into(), b), ("x".into(), b)]),
            Err(SpecError::DuplicateField("x".into()))
        );
        assert_eq!(store.union(vec![]), Err(SpecError::EmptyUnion));
        let s = store.stream(b, StreamParams::new(), None).unwrap();
        assert!(matches!(
            store.stream(b, StreamParams::new(), Some(s)),
            Err(SpecError::InvalidParameter {
                parameter: "user",
                ..
            })
        ));
    }

    #[test]
    fn concurrent_interning_dedups_across_threads() {
        // Hammer one store from several threads with overlapping type
        // trees; every thread must see the same id per structure and
        // the store must end up with exactly the sequential node set.
        let store = TypeStore::new();
        let expected = {
            let reference = TypeStore::new();
            for d in 0..6 {
                reference.intern(&deep(d)).unwrap();
            }
            reference.len()
        };
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for d in 0..6 {
                        let a = store.intern(&deep(d)).unwrap();
                        let b = store.intern(&deep(d)).unwrap();
                        assert_eq!(a, b);
                        assert_eq!(
                            store.mangled(a).as_ref(),
                            deep(d).to_string().replace(' ', "")
                        );
                    }
                });
            }
        });
        assert_eq!(store.len(), expected);
        // Fingerprints stay structural regardless of interleaving.
        let reference = TypeStore::new();
        for d in 0..6 {
            let id = store.intern(&deep(d)).unwrap();
            let ref_id = reference.intern(&deep(d)).unwrap();
            assert_eq!(store.fingerprint(id), reference.fingerprint(ref_id));
        }
    }

    #[test]
    fn structural_fingerprint_is_stable_and_discriminating() {
        // Pinned value: the fingerprint must not drift across runs or
        // refactors (incremental caches depend on stability).
        assert_eq!(structural_fingerprint(&LogicalType::Null), {
            let mut f = Fnv::new();
            f.u64(0);
            f.0
        });
        let a = LogicalType::group(vec![("ab", LogicalType::Bit(1))]);
        let b = LogicalType::group(vec![("a", LogicalType::Bit(1))]);
        assert_ne!(structural_fingerprint(&a), structural_fingerprint(&b));
        let g = LogicalType::Group(vec![Field::new("x", LogicalType::Bit(2))]);
        let u = LogicalType::Union(vec![Field::new("x", LogicalType::Bit(2))]);
        assert_ne!(structural_fingerprint(&g), structural_fingerprint(&u));
        assert_eq!(
            structural_fingerprint(&deep(4)),
            structural_fingerprint(&deep(4))
        );
    }

    #[test]
    fn lower_cached_matches_lower() {
        let ty = LogicalType::stream(
            LogicalType::group(vec![
                ("len", LogicalType::Bit(16)),
                (
                    "chars",
                    LogicalType::stream(LogicalType::Bit(8), StreamParams::new().with_dimension(1)),
                ),
            ]),
            StreamParams::new(),
        );
        let cached = lower_cached(&ty).unwrap();
        assert_eq!(*cached, lower(&ty).unwrap());
        let again = lower_cached(&ty).unwrap();
        assert!(Arc::ptr_eq(&cached, &again));
        assert!(lower_cached(&LogicalType::Bit(3)).is_err());
    }

    #[test]
    fn lower_cached_arc_shares_by_identity_and_by_value() {
        let store = TypeStore::new();
        let ty = LogicalType::stream(deep(3), StreamParams::new().with_dimension(1));
        let id = store.intern(&ty).unwrap();
        let arc_a = store.ty(id);
        let arc_b = store.ty(id);
        let first = lower_cached_arc(&arc_a).unwrap();
        // Same Arc again: identity hit, same shared expansion.
        let second = lower_cached_arc(&arc_b).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        // A structurally equal but separately allocated tree falls
        // back to the value memo and still shares the expansion.
        let fresh = Arc::new(ty.clone());
        let third = lower_cached_arc(&fresh).unwrap();
        assert!(Arc::ptr_eq(&first, &third));
        assert_eq!(*first, lower(&ty).unwrap());
        // Errors are not memoized and still surface.
        assert!(lower_cached_arc(&Arc::new(LogicalType::Bit(2))).is_err());
    }

    #[test]
    fn stream_mangling_matches_display() {
        let store = TypeStore::new();
        let ty = LogicalType::stream(
            LogicalType::group(vec![("a", LogicalType::Bit(3)), ("b", LogicalType::Bit(5))]),
            StreamParams::new()
                .with_dimension(2)
                .with_complexity(Complexity::new(7).unwrap())
                .with_direction(Direction::Reverse)
                .with_synchronicity(Synchronicity::Flatten)
                .with_user(LogicalType::Bit(2))
                .with_keep(true),
        );
        let id = store.intern(&ty).unwrap();
        assert_eq!(store.mangled(id).as_ref(), ty.to_string().replace(' ', ""));
    }
}
