//! Stream-space parameters: throughput, dimension, complexity,
//! direction and synchronicity.
//!
//! A `Stream` logical type wraps an element type and describes how that
//! element travels through hardware (paper Table I): how many elements
//! per cycle (*throughput*), how many levels of nested sequences
//! (*dimension*), how much freedom the source has in laying elements
//! onto transfers (*complexity*), whether the stream flows with or
//! against its parent (*direction*), and how a child stream relates to
//! the dimensionality of its parent (*synchronicity*).

use crate::SpecError;
use std::fmt;

/// Throughput: the *minimum* number of elements transferable per cycle.
///
/// Stored as an exact ratio so that stream types have well-defined
/// equality and hashing (a requirement for the strict type equality
/// design-rule check of the paper). The number of element lanes of the
/// physical stream is `ceil(throughput)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Throughput {
    num: u32,
    den: u32,
}

impl Throughput {
    /// Creates a throughput of `num / den` elements per cycle.
    ///
    /// Returns an error when the ratio is zero or the denominator is
    /// zero: Tydi requires a strictly positive throughput.
    pub fn new(num: u32, den: u32) -> Result<Self, SpecError> {
        if den == 0 {
            return Err(SpecError::InvalidParameter {
                parameter: "throughput",
                message: "denominator must be non-zero".into(),
            });
        }
        if num == 0 {
            return Err(SpecError::InvalidParameter {
                parameter: "throughput",
                message: "throughput must be positive".into(),
            });
        }
        let g = gcd(num, den);
        Ok(Throughput {
            num: num / g,
            den: den / g,
        })
    }

    /// One element per cycle: the default throughput.
    pub fn one() -> Self {
        Throughput { num: 1, den: 1 }
    }

    /// Approximates a floating point throughput as a ratio with a
    /// denominator of at most 1000 (Tydi-lang sources write throughput
    /// as a float literal, e.g. `t=0.5`).
    pub fn from_f64(value: f64) -> Result<Self, SpecError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(SpecError::InvalidParameter {
                parameter: "throughput",
                message: format!("throughput must be positive and finite, got {value}"),
            });
        }
        if value > u32::MAX as f64 / 1000.0 {
            return Err(SpecError::InvalidParameter {
                parameter: "throughput",
                message: format!("throughput {value} is too large"),
            });
        }
        let num = (value * 1000.0).round() as u32;
        Throughput::new(num.max(1), 1000)
    }

    /// The number of data lanes required on the physical stream.
    pub fn lanes(&self) -> u32 {
        self.num.div_ceil(self.den)
    }

    /// The exact ratio as `(numerator, denominator)`.
    pub fn ratio(&self) -> (u32, u32) {
        (self.num, self.den)
    }

    /// The throughput as a float, for reporting.
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Throughput {
    fn default() -> Self {
        Throughput::one()
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Protocol complexity, `C` in the Tydi specification.
///
/// Higher complexity gives the *source* more freedom (and burdens the
/// sink with more signals). The legal range is 1 through 8. The
/// signal-presence thresholds implemented in [`crate::physical`] follow
/// the Tydi specification:
///
/// * `C >= 5`: `endi` present when there is more than one lane.
/// * `C >= 6`: `stai` present when there is more than one lane.
/// * `C >= 7`: `strb` present (per-lane strobe).
/// * `C >= 8`: `last` is transferred per lane instead of per transfer.
///
/// A source of complexity `c` may be connected to a sink of complexity
/// `c' >= c` (the sink must understand at least as much freedom); the
/// paper's design-rule check calls this "compatible protocol
/// complexities".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Complexity(u8);

impl Complexity {
    /// Lowest complexity: one element per transfer, aligned.
    pub const MIN: Complexity = Complexity(1);
    /// Highest complexity defined by the specification.
    pub const MAX: Complexity = Complexity(8);

    /// Creates a complexity level, validating the range `1..=8`.
    pub fn new(level: u8) -> Result<Self, SpecError> {
        if (1..=8).contains(&level) {
            Ok(Complexity(level))
        } else {
            Err(SpecError::InvalidParameter {
                parameter: "complexity",
                message: format!("must be between 1 and 8, got {level}"),
            })
        }
    }

    /// The numeric complexity level.
    pub fn level(&self) -> u8 {
        self.0
    }

    /// Whether a source of this complexity may drive a sink of
    /// complexity `sink`.
    pub fn compatible_with_sink(&self, sink: Complexity) -> bool {
        self.0 <= sink.0
    }
}

impl Default for Complexity {
    fn default() -> Self {
        Complexity(1)
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Direction of a stream relative to its parent (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Data flows from source to sink (the usual case).
    #[default]
    Forward,
    /// Data flows from sink to source (e.g. a request stream paired
    /// with a response stream).
    Reverse,
}

impl Direction {
    /// Flips the direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Forward => write!(f, "Forward"),
            Direction::Reverse => write!(f, "Reverse"),
        }
    }
}

/// Synchronicity of a child stream with respect to its parent's
/// dimensionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Synchronicity {
    /// The child redundantly carries the parent's `last` bits: its
    /// effective dimension is the parent's plus its own.
    #[default]
    Sync,
    /// Like `Sync` but the parent dimension bits are flattened away;
    /// only the child's own dimension remains.
    Flatten,
    /// The child is decoupled from parent transfers but still carries
    /// the combined dimensionality.
    Desync,
    /// Fully decoupled and flattened.
    FlatDesync,
}

impl Synchronicity {
    /// Whether the parent's dimension bits are carried by the child.
    pub fn inherits_parent_dimension(&self) -> bool {
        matches!(self, Synchronicity::Sync | Synchronicity::Desync)
    }

    /// Whether child transfers are element-wise coupled to the parent.
    pub fn is_coupled(&self) -> bool {
        matches!(self, Synchronicity::Sync | Synchronicity::Flatten)
    }
}

impl fmt::Display for Synchronicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Synchronicity::Sync => write!(f, "Sync"),
            Synchronicity::Flatten => write!(f, "Flatten"),
            Synchronicity::Desync => write!(f, "Desync"),
            Synchronicity::FlatDesync => write!(f, "FlatDesync"),
        }
    }
}

/// The full parameter set of a `Stream` logical type.
///
/// Defaults reproduce the Tydi-lang defaults: dimension 0, throughput 1,
/// complexity 1, forward direction, sync, no user type, keep = false.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct StreamParams {
    /// Number of sequence-nesting levels (`d` in Tydi-lang sources).
    pub dimension: u32,
    /// Minimum elements per cycle (`t`).
    pub throughput: Throughput,
    /// Protocol complexity (`c`).
    pub complexity: Complexity,
    /// Direction relative to the parent (`r`).
    pub direction: Direction,
    /// Synchronicity with the parent dimensions (`x`).
    pub synchronicity: Synchronicity,
    /// Optional user signal type carried next to the data
    /// (`u`; transfer-level sideband information).
    pub user: Option<Box<crate::LogicalType>>,
    /// Keep the stream even if its element type reduces to `Null`.
    pub keep: bool,
}

impl StreamParams {
    /// Creates the default parameter set.
    pub fn new() -> Self {
        StreamParams::default()
    }

    /// Sets the dimension.
    pub fn with_dimension(mut self, dimension: u32) -> Self {
        self.dimension = dimension;
        self
    }

    /// Sets the throughput.
    pub fn with_throughput(mut self, throughput: Throughput) -> Self {
        self.throughput = throughput;
        self
    }

    /// Sets the complexity.
    pub fn with_complexity(mut self, complexity: Complexity) -> Self {
        self.complexity = complexity;
        self
    }

    /// Sets the direction.
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Sets the synchronicity.
    pub fn with_synchronicity(mut self, synchronicity: Synchronicity) -> Self {
        self.synchronicity = synchronicity;
        self
    }

    /// Sets the user type.
    pub fn with_user(mut self, user: crate::LogicalType) -> Self {
        self.user = Some(Box::new(user));
        self
    }

    /// Sets the keep flag.
    pub fn with_keep(mut self, keep: bool) -> Self {
        self.keep = keep;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_reduces_ratio() {
        let t = Throughput::new(4, 2).unwrap();
        assert_eq!(t.ratio(), (2, 1));
        assert_eq!(t.lanes(), 2);
        assert_eq!(t.to_string(), "2");
    }

    #[test]
    fn throughput_fractional_lanes_round_up() {
        let t = Throughput::new(1, 2).unwrap();
        assert_eq!(t.lanes(), 1);
        assert_eq!(t.to_string(), "1/2");
        let t = Throughput::new(3, 2).unwrap();
        assert_eq!(t.lanes(), 2);
    }

    #[test]
    fn throughput_rejects_zero() {
        assert!(Throughput::new(0, 1).is_err());
        assert!(Throughput::new(1, 0).is_err());
        assert!(Throughput::from_f64(0.0).is_err());
        assert!(Throughput::from_f64(-1.0).is_err());
        assert!(Throughput::from_f64(f64::NAN).is_err());
    }

    #[test]
    fn throughput_from_f64_round_trips_common_values() {
        assert_eq!(
            Throughput::from_f64(2.0).unwrap(),
            Throughput::new(2, 1).unwrap()
        );
        assert_eq!(
            Throughput::from_f64(0.5).unwrap(),
            Throughput::new(1, 2).unwrap()
        );
        assert_eq!(Throughput::from_f64(1.5).unwrap().lanes(), 2);
    }

    #[test]
    fn complexity_range() {
        assert!(Complexity::new(0).is_err());
        assert!(Complexity::new(9).is_err());
        for c in 1..=8 {
            assert_eq!(Complexity::new(c).unwrap().level(), c);
        }
    }

    #[test]
    fn complexity_source_sink_compatibility() {
        let c2 = Complexity::new(2).unwrap();
        let c7 = Complexity::new(7).unwrap();
        assert!(c2.compatible_with_sink(c7));
        assert!(!c7.compatible_with_sink(c2));
        assert!(c7.compatible_with_sink(c7));
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Forward.reverse(), Direction::Reverse);
        assert_eq!(Direction::Reverse.reverse(), Direction::Forward);
    }

    #[test]
    fn synchronicity_classification() {
        assert!(Synchronicity::Sync.inherits_parent_dimension());
        assert!(Synchronicity::Desync.inherits_parent_dimension());
        assert!(!Synchronicity::Flatten.inherits_parent_dimension());
        assert!(Synchronicity::Sync.is_coupled());
        assert!(!Synchronicity::Desync.is_coupled());
    }

    #[test]
    fn params_builder() {
        let p = StreamParams::new()
            .with_dimension(2)
            .with_complexity(Complexity::new(7).unwrap())
            .with_keep(true);
        assert_eq!(p.dimension, 2);
        assert_eq!(p.complexity.level(), 7);
        assert!(p.keep);
        assert_eq!(p.throughput, Throughput::one());
    }
}
