//! Logical types: `Null`, `Bit`, `Group`, `Union` and `Stream`.
//!
//! All composite data structures in Tydi are built from these five
//! constructors (paper §II). `Group` is a product type whose bit width
//! is the sum of its children; `Union` is a sum type whose width is the
//! maximum child width plus a tag; `Stream` wraps an element type with
//! stream-space parameters and defines the hardware protocol.

use crate::stream::StreamParams;
use crate::SpecError;
use std::fmt;

/// A named field of a `Group` or variant of a `Union`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name, unique within the composite.
    pub name: String,
    /// Field type.
    pub ty: LogicalType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, ty: LogicalType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// A Tydi logical type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LogicalType {
    /// Empty data; streams of `Null` are optimized out.
    Null,
    /// Data requiring `n` hardware bits.
    Bit(u32),
    /// Product of the child types; width is the sum of child widths.
    Group(Vec<Field>),
    /// Sum of the child types; width is the largest child width plus a
    /// tag of `ceil(log2(#variants))` bits.
    Union(Vec<Field>),
    /// A stream of the element type with stream-space parameters.
    Stream {
        /// Element type transported by the stream.
        element: Box<LogicalType>,
        /// Stream-space parameters (dimension, throughput, ...).
        params: StreamParams,
    },
}

impl LogicalType {
    /// Convenience constructor for a stream type.
    pub fn stream(element: LogicalType, params: StreamParams) -> LogicalType {
        LogicalType::Stream {
            element: Box::new(element),
            params,
        }
    }

    /// Convenience constructor for a group type.
    pub fn group(fields: Vec<(&str, LogicalType)>) -> LogicalType {
        LogicalType::Group(fields.into_iter().map(|(n, t)| Field::new(n, t)).collect())
    }

    /// Convenience constructor for a union type.
    pub fn union(fields: Vec<(&str, LogicalType)>) -> LogicalType {
        LogicalType::Union(fields.into_iter().map(|(n, t)| Field::new(n, t)).collect())
    }

    /// Validates the structural well-formedness rules:
    ///
    /// * `Bit` width must be at least 1,
    /// * composite field names must be unique,
    /// * unions must have at least one variant,
    /// * all nested types must be valid.
    pub fn validate(&self) -> Result<(), SpecError> {
        match self {
            LogicalType::Null => Ok(()),
            LogicalType::Bit(0) => Err(SpecError::ZeroWidthBit),
            LogicalType::Bit(_) => Ok(()),
            LogicalType::Group(fields) => {
                check_unique(fields)?;
                fields.iter().try_for_each(|f| f.ty.validate())
            }
            LogicalType::Union(fields) => {
                if fields.is_empty() {
                    return Err(SpecError::EmptyUnion);
                }
                check_unique(fields)?;
                fields.iter().try_for_each(|f| f.ty.validate())
            }
            LogicalType::Stream { element, params } => {
                element.validate()?;
                if let Some(user) = &params.user {
                    user.validate()?;
                    if user.contains_stream() {
                        return Err(SpecError::InvalidParameter {
                            parameter: "user",
                            message: "user types may not contain streams".into(),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// The number of data bits needed to represent one *element* of
    /// this type, ignoring any nested streams (nested streams lower to
    /// separate physical streams and contribute zero bits to their
    /// parent's element).
    pub fn bit_width(&self) -> u32 {
        match self {
            LogicalType::Null => 0,
            LogicalType::Bit(n) => *n,
            LogicalType::Group(fields) => fields.iter().map(|f| f.ty.bit_width()).sum(),
            LogicalType::Union(fields) => {
                let data = fields.iter().map(|f| f.ty.bit_width()).max().unwrap_or(0);
                data + union_tag_width(fields.len())
            }
            LogicalType::Stream { .. } => 0,
        }
    }

    /// True if this type or any nested type is a `Stream`.
    pub fn contains_stream(&self) -> bool {
        match self {
            LogicalType::Stream { .. } => true,
            LogicalType::Group(fields) | LogicalType::Union(fields) => {
                fields.iter().any(|f| f.ty.contains_stream())
            }
            _ => false,
        }
    }

    /// True if the type carries no information at all (it is `Null`, or
    /// a composite of nothing but `Null` without nested streams).
    pub fn is_null(&self) -> bool {
        match self {
            LogicalType::Null => true,
            LogicalType::Bit(_) => false,
            LogicalType::Group(fields) => fields.iter().all(|f| f.ty.is_null()),
            LogicalType::Union(fields) => {
                fields.len() <= 1 && fields.iter().all(|f| f.ty.is_null())
            }
            LogicalType::Stream { element, params } => element.is_null() && !params.keep,
        }
    }

    /// Looks up a direct field/variant by name on a composite type.
    pub fn field(&self, name: &str) -> Option<&LogicalType> {
        match self {
            LogicalType::Group(fields) | LogicalType::Union(fields) => {
                fields.iter().find(|f| f.name == name).map(|f| &f.ty)
            }
            _ => None,
        }
    }

    /// Iterates over direct fields of a composite type (empty iterator
    /// for non-composites).
    pub fn fields(&self) -> &[Field] {
        match self {
            LogicalType::Group(fields) | LogicalType::Union(fields) => fields,
            _ => &[],
        }
    }

    /// Structural compatibility: two types are compatible when their
    /// canonical structures are identical. The paper's *strict* type
    /// equality (same declaration) is enforced one level up, by the
    /// Tydi-lang DRC; this structural check is the relaxed
    /// "type hierarchy" equality enabled by the `@NoStrictType`
    /// attribute.
    pub fn structurally_equal(&self, other: &LogicalType) -> bool {
        self == other
    }

    /// Counts the total number of type nodes, a rough complexity metric
    /// used by compiler statistics.
    pub fn node_count(&self) -> usize {
        1 + match self {
            LogicalType::Group(fields) | LogicalType::Union(fields) => {
                fields.iter().map(|f| f.ty.node_count()).sum()
            }
            LogicalType::Stream { element, params } => {
                element.node_count() + params.user.as_ref().map(|u| u.node_count()).unwrap_or(0)
            }
            _ => 0,
        }
    }
}

/// Tag width for a union with `n` variants: 0 for a single variant,
/// otherwise `ceil(log2(n))`.
pub fn union_tag_width(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

fn check_unique(fields: &[Field]) -> Result<(), SpecError> {
    for (i, f) in fields.iter().enumerate() {
        if fields[..i].iter().any(|g| g.name == f.name) {
            return Err(SpecError::DuplicateField(f.name.clone()));
        }
    }
    Ok(())
}

impl fmt::Display for LogicalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::text::write_logical_type(f, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{Complexity, StreamParams, Throughput};

    fn ascii_char() -> LogicalType {
        LogicalType::Bit(8)
    }

    #[test]
    fn bit_width_of_primitives() {
        assert_eq!(LogicalType::Null.bit_width(), 0);
        assert_eq!(LogicalType::Bit(8).bit_width(), 8);
        assert_eq!(LogicalType::Bit(1).bit_width(), 1);
    }

    #[test]
    fn group_width_is_sum() {
        // Paper Table I: Group(x, y) width = sum of child widths.
        let g = LogicalType::group(vec![
            ("data0", LogicalType::Bit(32)),
            ("data1", LogicalType::Bit(32)),
        ]);
        assert_eq!(g.bit_width(), 64);
    }

    #[test]
    fn union_width_is_max_plus_tag() {
        // Paper Table I: Union(x, y) width = max child width (plus tag).
        let u = LogicalType::union(vec![("a", LogicalType::Bit(3)), ("b", LogicalType::Bit(8))]);
        assert_eq!(u.bit_width(), 8 + 1);
        let u3 = LogicalType::union(vec![
            ("a", LogicalType::Bit(4)),
            ("b", LogicalType::Bit(4)),
            ("c", LogicalType::Bit(4)),
        ]);
        assert_eq!(u3.bit_width(), 4 + 2);
    }

    #[test]
    fn union_tag_widths() {
        assert_eq!(union_tag_width(0), 0);
        assert_eq!(union_tag_width(1), 0);
        assert_eq!(union_tag_width(2), 1);
        assert_eq!(union_tag_width(3), 2);
        assert_eq!(union_tag_width(4), 2);
        assert_eq!(union_tag_width(5), 3);
        assert_eq!(union_tag_width(256), 8);
    }

    #[test]
    fn stream_contributes_no_parent_bits() {
        let g = LogicalType::group(vec![
            ("len", LogicalType::Bit(16)),
            (
                "chars",
                LogicalType::stream(ascii_char(), StreamParams::new().with_dimension(1)),
            ),
        ]);
        assert_eq!(g.bit_width(), 16);
    }

    #[test]
    fn validation_rejects_zero_width_bit() {
        assert_eq!(LogicalType::Bit(0).validate(), Err(SpecError::ZeroWidthBit));
        let nested = LogicalType::group(vec![("x", LogicalType::Bit(0))]);
        assert_eq!(nested.validate(), Err(SpecError::ZeroWidthBit));
    }

    #[test]
    fn validation_rejects_duplicate_fields() {
        let g = LogicalType::group(vec![("x", LogicalType::Bit(1)), ("x", LogicalType::Bit(2))]);
        assert_eq!(g.validate(), Err(SpecError::DuplicateField("x".into())));
    }

    #[test]
    fn validation_rejects_empty_union() {
        assert_eq!(
            LogicalType::Union(vec![]).validate(),
            Err(SpecError::EmptyUnion)
        );
    }

    #[test]
    fn validation_rejects_stream_in_user_type() {
        let bad_user = LogicalType::stream(LogicalType::Bit(1), StreamParams::new());
        let s = LogicalType::stream(LogicalType::Bit(8), StreamParams::new().with_user(bad_user));
        assert!(matches!(
            s.validate(),
            Err(SpecError::InvalidParameter {
                parameter: "user",
                ..
            })
        ));
    }

    #[test]
    fn null_detection() {
        assert!(LogicalType::Null.is_null());
        assert!(LogicalType::group(vec![("a", LogicalType::Null)]).is_null());
        assert!(!LogicalType::Bit(1).is_null());
        let null_stream = LogicalType::stream(LogicalType::Null, StreamParams::new());
        assert!(null_stream.is_null());
        let kept = LogicalType::stream(LogicalType::Null, StreamParams::new().with_keep(true));
        assert!(!kept.is_null());
    }

    #[test]
    fn field_lookup() {
        let g = LogicalType::group(vec![("a", LogicalType::Bit(2)), ("b", LogicalType::Bit(3))]);
        assert_eq!(g.field("b"), Some(&LogicalType::Bit(3)));
        assert_eq!(g.field("c"), None);
        assert_eq!(LogicalType::Bit(1).field("a"), None);
    }

    #[test]
    fn structural_equality_considers_params() {
        let a = LogicalType::stream(LogicalType::Bit(8), StreamParams::new().with_dimension(1));
        let b = LogicalType::stream(LogicalType::Bit(8), StreamParams::new().with_dimension(2));
        assert!(!a.structurally_equal(&b));
        let c = LogicalType::stream(LogicalType::Bit(8), StreamParams::new().with_dimension(1));
        assert!(a.structurally_equal(&c));
    }

    #[test]
    fn structural_equality_considers_throughput_and_complexity() {
        let base = StreamParams::new();
        let a = LogicalType::stream(
            LogicalType::Bit(8),
            base.clone().with_throughput(Throughput::new(2, 1).unwrap()),
        );
        let b = LogicalType::stream(LogicalType::Bit(8), base.clone());
        assert_ne!(a, b);
        let c = LogicalType::stream(
            LogicalType::Bit(8),
            base.clone().with_complexity(Complexity::new(7).unwrap()),
        );
        assert_ne!(b, c);
    }

    #[test]
    fn node_count() {
        let g = LogicalType::group(vec![
            ("a", LogicalType::Bit(2)),
            (
                "b",
                LogicalType::stream(LogicalType::Bit(3), StreamParams::new()),
            ),
        ]);
        // group + bit + stream + bit = 4
        assert_eq!(g.node_count(), 4);
    }
}
