//! # tydi-spec
//!
//! An implementation of the *Tydi specification* ("Tydi: An open
//! specification for complex data structures over hardware streams",
//! IEEE Micro 2020), the type-system foundation of the Tydi-lang
//! toolchain.
//!
//! The Tydi specification codifies composite, variable-length data
//! structures as *logical types* and defines how a logical type is
//! lowered onto one or more *physical streams*, each with a concrete
//! set of hardware signals (`valid`/`ready` handshake, `data`, `last`,
//! `stai`, `endi`, `strb`, `user`).
//!
//! This crate is purely structural: it knows nothing about source files,
//! templates or components. Those live in the `tydi-lang` frontend and
//! the `tydi-ir` intermediate representation, both of which build on the
//! types defined here.
//!
//! ## Quick tour
//!
//! ```
//! use tydi_spec::{LogicalType, StreamParams};
//!
//! // Stream(Bit(8), dimension = 2): an English sentence, characters in
//! // words in a sentence (paper §II).
//! let sentence = LogicalType::stream(
//!     LogicalType::Bit(8),
//!     StreamParams::new().with_dimension(2),
//! );
//!
//! // The logical type lowers to exactly one physical stream with one
//! // 8-bit data lane and two `last` bits.
//! let phys = tydi_spec::lower(&sentence).unwrap();
//! assert_eq!(phys.len(), 1);
//! assert_eq!(phys[0].signals().data_bits, 8);
//! assert_eq!(phys[0].signals().last_bits, 2);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod logical;
pub mod physical;
pub mod store;
pub mod stream;
pub mod text;

pub use clock::ClockDomain;
pub use error::SpecError;
pub use logical::{Field, LogicalType};
pub use physical::{index_width, lower, PhysicalStream, SignalBundle};
pub use store::{
    expansion_cache_stats, lower_cached, lower_cached_arc, structural_fingerprint,
    ExpansionCacheStats, TypeId, TypeStore, TypeStoreStats, SHARD_COUNT,
};
pub use stream::{Complexity, Direction, StreamParams, Synchronicity, Throughput};
pub use text::parse_logical_type;
