//! Clock domains.
//!
//! The Tydi specification attaches a *clock domain* to every port. The
//! handshaking protocol only works between two ports driven by the same
//! clock, so the design-rule check (paper Table I) refuses connections
//! that cross clock domains. A clock domain is identified by name; the
//! mapping from name to physical frequency and phase is supplied only at
//! simulation time (paper §V-B).

use std::fmt;
use std::sync::Arc;

/// A named clock domain.
///
/// Clock domains compare by name: two ports may only be connected when
/// their clock domain names are identical. The default domain is named
/// `"default"` and is used for every port that does not specify one.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClockDomain(Arc<str>);

impl ClockDomain {
    /// Creates a clock domain with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        ClockDomain(Arc::from(name.as_ref()))
    }

    /// The default clock domain shared by all unannotated ports.
    pub fn default_domain() -> Self {
        ClockDomain::new("default")
    }

    /// Returns the domain name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Returns true if this is the default domain.
    pub fn is_default(&self) -> bool {
        self.name() == "default"
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::default_domain()
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "!{}", self.0)
    }
}

/// A mapping from a clock domain to a physical clock, used by the
/// simulator to convert cycle counts into wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalClock {
    /// The domain this physical clock drives.
    pub domain: ClockDomain,
    /// Frequency in Hz.
    pub frequency_hz: f64,
    /// Phase offset in seconds relative to simulation time zero.
    pub phase_s: f64,
}

impl PhysicalClock {
    /// Creates a physical clock with zero phase.
    pub fn new(domain: ClockDomain, frequency_hz: f64) -> Self {
        PhysicalClock {
            domain,
            frequency_hz,
            phase_s: 0.0,
        }
    }

    /// The period of one clock cycle in seconds.
    pub fn period_s(&self) -> f64 {
        1.0 / self.frequency_hz
    }

    /// Converts a cycle count in this domain to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        self.phase_s + cycles as f64 * self.period_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_domain_name() {
        assert_eq!(ClockDomain::default().name(), "default");
        assert!(ClockDomain::default().is_default());
        assert!(!ClockDomain::new("mem").is_default());
    }

    #[test]
    fn equality_is_by_name() {
        assert_eq!(ClockDomain::new("a"), ClockDomain::new("a"));
        assert_ne!(ClockDomain::new("a"), ClockDomain::new("b"));
    }

    #[test]
    fn display_uses_bang_prefix() {
        assert_eq!(ClockDomain::new("sys").to_string(), "!sys");
    }

    #[test]
    fn physical_clock_conversion() {
        let c = PhysicalClock::new(ClockDomain::new("sys"), 100e6);
        assert!((c.period_s() - 10e-9).abs() < 1e-15);
        assert!((c.cycles_to_seconds(100) - 1e-6).abs() < 1e-12);
    }
}
