//! Error type shared by all tydi-spec operations.

use std::fmt;

/// Errors produced while constructing, validating, lowering or parsing
/// Tydi logical types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A `Bit` type was declared with zero width.
    ZeroWidthBit,
    /// A `Group` or `Union` declared two fields with the same name.
    DuplicateField(String),
    /// A `Union` with no variants (a union must carry at least one).
    EmptyUnion,
    /// A stream parameter was out of its legal range.
    InvalidParameter {
        /// Which parameter was invalid (e.g. `"complexity"`).
        parameter: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The type is not representable on hardware (e.g. a top-level type
    /// containing no stream at all when a stream is required).
    NotSynthesizable(String),
    /// Failure while parsing the canonical text format.
    Parse {
        /// Byte offset in the input where the failure occurred.
        offset: usize,
        /// Human-readable description of the failure.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::ZeroWidthBit => write!(f, "Bit type must have a width of at least 1"),
            SpecError::DuplicateField(name) => {
                write!(f, "duplicate field name `{name}` in composite type")
            }
            SpecError::EmptyUnion => write!(f, "union types must declare at least one variant"),
            SpecError::InvalidParameter { parameter, message } => {
                write!(f, "invalid stream parameter `{parameter}`: {message}")
            }
            SpecError::NotSynthesizable(msg) => write!(f, "type is not synthesizable: {msg}"),
            SpecError::Parse { offset, message } => {
                write!(f, "type parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = SpecError::DuplicateField("data0".into());
        assert!(e.to_string().contains("data0"));
        let e = SpecError::InvalidParameter {
            parameter: "complexity",
            message: "must be between 1 and 8".into(),
        };
        assert!(e.to_string().contains("complexity"));
    }
}
