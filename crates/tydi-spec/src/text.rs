//! Canonical text format for logical types.
//!
//! The Tydi-IR text format and compiler diagnostics both need a stable,
//! parseable rendering of logical types. The writer prints only
//! non-default stream parameters; the parser accepts the writer's
//! output as well as the Tydi-lang surface spellings (`d=`, `t=`, `c=`,
//! `r=`, `x=`, `u=`, `keep`).
//!
//! ```
//! use tydi_spec::{parse_logical_type, LogicalType};
//! let t = parse_logical_type("Stream(Group(a: Bit(3), b: Bit(5)), d=2, c=7)").unwrap();
//! assert_eq!(parse_logical_type(&t.to_string()).unwrap(), t);
//! ```

use crate::logical::{Field, LogicalType};
use crate::stream::{Complexity, Direction, StreamParams, Synchronicity, Throughput};
use crate::SpecError;
use std::fmt;

/// Writes the canonical rendering of `ty` to a formatter. Exposed so
/// `LogicalType`'s `Display` impl can share the code.
pub fn write_logical_type(f: &mut fmt::Formatter<'_>, ty: &LogicalType) -> fmt::Result {
    match ty {
        LogicalType::Null => write!(f, "Null"),
        LogicalType::Bit(n) => write!(f, "Bit({n})"),
        LogicalType::Group(fields) => write_composite(f, "Group", fields),
        LogicalType::Union(fields) => write_composite(f, "Union", fields),
        LogicalType::Stream { element, params } => {
            write!(f, "Stream({element}")?;
            if params.dimension != 0 {
                write!(f, ", d={}", params.dimension)?;
            }
            if params.throughput != Throughput::one() {
                write!(f, ", t={}", params.throughput)?;
            }
            if params.complexity != Complexity::default() {
                write!(f, ", c={}", params.complexity)?;
            }
            if params.direction != Direction::Forward {
                write!(f, ", r={}", params.direction)?;
            }
            if params.synchronicity != Synchronicity::Sync {
                write!(f, ", x={}", params.synchronicity)?;
            }
            if let Some(user) = &params.user {
                write!(f, ", u={user}")?;
            }
            if params.keep {
                write!(f, ", keep")?;
            }
            write!(f, ")")
        }
    }
}

fn write_composite(f: &mut fmt::Formatter<'_>, kind: &str, fields: &[Field]) -> fmt::Result {
    write!(f, "{kind}(")?;
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{}: {}", field.name, field.ty)?;
    }
    write!(f, ")")
}

/// Parses a logical type from its canonical text format.
pub fn parse_logical_type(input: &str) -> Result<LogicalType, SpecError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    let ty = p.parse_type()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters after type"));
    }
    ty.validate()?;
    Ok(ty)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), SpecError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, SpecError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_alphanumeric() || self.input[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii slice")
            .to_string())
    }

    fn number(&mut self) -> Result<u32, SpecError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii slice")
            .parse()
            .map_err(|_| self.err("number out of range"))
    }

    fn parse_type(&mut self) -> Result<LogicalType, SpecError> {
        let head = self.ident()?;
        match head.as_str() {
            "Null" => Ok(LogicalType::Null),
            "Bit" => {
                self.expect(b'(')?;
                let width = self.number()?;
                self.expect(b')')?;
                Ok(LogicalType::Bit(width))
            }
            "Group" => Ok(LogicalType::Group(self.parse_fields()?)),
            "Union" => Ok(LogicalType::Union(self.parse_fields()?)),
            "Stream" => self.parse_stream(),
            other => Err(self.err(format!(
                "unknown type constructor `{other}` (expected Null, Bit, Group, Union or Stream)"
            ))),
        }
    }

    fn parse_fields(&mut self) -> Result<Vec<Field>, SpecError> {
        self.expect(b'(')?;
        let mut fields = Vec::new();
        if self.eat(b')') {
            return Ok(fields);
        }
        loop {
            let name = self.ident()?;
            self.expect(b':')?;
            let ty = self.parse_type()?;
            fields.push(Field { name, ty });
            if self.eat(b')') {
                return Ok(fields);
            }
            self.expect(b',')?;
            // Tolerate trailing comma before the closing parenthesis.
            if self.eat(b')') {
                return Ok(fields);
            }
        }
    }

    fn parse_stream(&mut self) -> Result<LogicalType, SpecError> {
        self.expect(b'(')?;
        let element = self.parse_type()?;
        let mut params = StreamParams::new();
        while self.eat(b',') {
            if self.eat(b')') {
                return Ok(LogicalType::stream(element, params));
            }
            let key = self.ident()?;
            match key.as_str() {
                "keep" => params.keep = true,
                "d" | "dimension" => {
                    self.expect(b'=')?;
                    params.dimension = self.number()?;
                }
                "t" | "throughput" => {
                    self.expect(b'=')?;
                    let num = self.number()?;
                    if self.eat(b'/') {
                        let den = self.number()?;
                        params.throughput = Throughput::new(num, den)?;
                    } else if self.eat(b'.') {
                        let frac_start = self.pos;
                        let frac = self.number()?;
                        let digits = (self.pos - frac_start) as u32;
                        let den = 10u32
                            .checked_pow(digits)
                            .ok_or_else(|| self.err("throughput fraction too precise"))?;
                        params.throughput =
                            Throughput::new(num.saturating_mul(den).saturating_add(frac), den)?;
                    } else {
                        params.throughput = Throughput::new(num, 1)?;
                    }
                }
                "c" | "complexity" => {
                    self.expect(b'=')?;
                    let level = self.number()?;
                    params.complexity = Complexity::new(
                        u8::try_from(level).map_err(|_| self.err("complexity out of range"))?,
                    )?;
                }
                "r" | "direction" => {
                    self.expect(b'=')?;
                    let value = self.ident()?;
                    params.direction = match value.as_str() {
                        "Forward" => Direction::Forward,
                        "Reverse" => Direction::Reverse,
                        _ => return Err(self.err("direction must be Forward or Reverse")),
                    };
                }
                "x" | "synchronicity" => {
                    self.expect(b'=')?;
                    let value = self.ident()?;
                    params.synchronicity = match value.as_str() {
                        "Sync" => Synchronicity::Sync,
                        "Flatten" => Synchronicity::Flatten,
                        "Desync" => Synchronicity::Desync,
                        "FlatDesync" => Synchronicity::FlatDesync,
                        _ => {
                            return Err(self
                                .err("synchronicity must be Sync, Flatten, Desync or FlatDesync"))
                        }
                    };
                }
                "u" | "user" => {
                    self.expect(b'=')?;
                    params.user = Some(Box::new(self.parse_type()?));
                }
                other => return Err(self.err(format!("unknown stream parameter `{other}`"))),
            }
        }
        self.expect(b')')?;
        Ok(LogicalType::stream(element, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) -> LogicalType {
        let t = parse_logical_type(src).unwrap();
        let printed = t.to_string();
        let reparsed = parse_logical_type(&printed).unwrap();
        assert_eq!(t, reparsed, "round trip failed: {src} -> {printed}");
        t
    }

    #[test]
    fn parse_primitives() {
        assert_eq!(round_trip("Null"), LogicalType::Null);
        assert_eq!(round_trip("Bit(8)"), LogicalType::Bit(8));
        assert_eq!(round_trip("  Bit( 32 ) "), LogicalType::Bit(32));
    }

    #[test]
    fn parse_group_and_union() {
        let g = round_trip("Group(data0: Bit(32), data1: Bit(32))");
        assert_eq!(g.bit_width(), 64);
        let u = round_trip("Union(a: Bit(3), b: Bit(8))");
        assert_eq!(u.bit_width(), 9);
    }

    #[test]
    fn parse_stream_defaults() {
        let t = round_trip("Stream(Bit(8))");
        match &t {
            LogicalType::Stream { params, .. } => {
                assert_eq!(params.dimension, 0);
                assert_eq!(params.throughput, Throughput::one());
            }
            _ => panic!("expected stream"),
        }
    }

    #[test]
    fn parse_stream_parameters() {
        let t = round_trip("Stream(Bit(8), d=2, t=3/2, c=7, r=Reverse, x=Flatten, u=Bit(3), keep)");
        match &t {
            LogicalType::Stream { params, .. } => {
                assert_eq!(params.dimension, 2);
                assert_eq!(params.throughput, Throughput::new(3, 2).unwrap());
                assert_eq!(params.complexity.level(), 7);
                assert_eq!(params.direction, Direction::Reverse);
                assert_eq!(params.synchronicity, Synchronicity::Flatten);
                assert_eq!(params.user.as_deref(), Some(&LogicalType::Bit(3)));
                assert!(params.keep);
            }
            _ => panic!("expected stream"),
        }
    }

    #[test]
    fn parse_decimal_throughput() {
        let t = parse_logical_type("Stream(Bit(8), t=0.5)").unwrap();
        match &t {
            LogicalType::Stream { params, .. } => {
                assert_eq!(params.throughput, Throughput::new(1, 2).unwrap());
            }
            _ => panic!("expected stream"),
        }
        let t = parse_logical_type("Stream(Bit(8), t=2.0)").unwrap();
        match &t {
            LogicalType::Stream { params, .. } => {
                assert_eq!(params.throughput, Throughput::new(2, 1).unwrap());
            }
            _ => panic!("expected stream"),
        }
    }

    #[test]
    fn parse_nested() {
        let t = round_trip(
            "Stream(Group(len: Bit(16), chars: Stream(Bit(8), d=1, x=Flatten)), d=1, c=7)",
        );
        let phys = crate::lower(&t).unwrap();
        assert_eq!(phys.len(), 2);
    }

    #[test]
    fn parse_long_form_keys() {
        let t =
            parse_logical_type("Stream(Bit(4), dimension=1, complexity=5, throughput=2)").unwrap();
        match &t {
            LogicalType::Stream { params, .. } => {
                assert_eq!(params.dimension, 1);
                assert_eq!(params.complexity.level(), 5);
                assert_eq!(params.throughput.lanes(), 2);
            }
            _ => panic!("expected stream"),
        }
    }

    #[test]
    fn reject_malformed() {
        assert!(parse_logical_type("").is_err());
        assert!(parse_logical_type("Bit").is_err());
        assert!(parse_logical_type("Bit(）").is_err());
        assert!(parse_logical_type("Bit(8) extra").is_err());
        assert!(parse_logical_type("Frob(1)").is_err());
        assert!(parse_logical_type("Stream(Bit(8), q=1)").is_err());
        assert!(parse_logical_type("Group(a Bit(1))").is_err());
        assert!(parse_logical_type("Stream(Bit(8), c=9)").is_err());
        assert!(parse_logical_type("Bit(0)").is_err());
    }

    #[test]
    fn tolerates_trailing_comma() {
        let t = parse_logical_type("Group(a: Bit(1), b: Bit(2),)").unwrap();
        assert_eq!(t.fields().len(), 2);
    }
}
