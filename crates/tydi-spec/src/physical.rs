//! Lowering logical types to physical streams.
//!
//! Every `Stream` node in a logical type becomes one *physical stream*:
//! a bundle of hardware signals with a `valid`/`ready` handshake. Data
//! carried by `Bit`/`Group`/`Union` structure inside the stream element
//! is packed into the `data` signal; nested `Stream` nodes split off
//! into their own physical streams (this is how Tydi transfers
//! variable-length fields such as strings inside records).
//!
//! The signal-presence rules follow the Tydi specification thresholds
//! documented on [`Complexity`](crate::stream::Complexity).

use crate::logical::LogicalType;
use crate::stream::{Direction, StreamParams};
use crate::SpecError;
use std::fmt;

/// The widths of all signals of one physical stream.
///
/// `valid` and `ready` are always present (1 bit each) and are not
/// listed explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalBundle {
    /// `data`: lanes x element width.
    pub data_bits: u32,
    /// `last`: dimension bits (per transfer below complexity 8, per
    /// lane at complexity 8).
    pub last_bits: u32,
    /// `stai`: start index, present at complexity >= 6 with > 1 lane.
    pub stai_bits: u32,
    /// `endi`: end index, present at complexity >= 5 (or with nonzero
    /// dimension) with > 1 lane.
    pub endi_bits: u32,
    /// `strb`: per-lane strobe, present at complexity >= 7 or with
    /// nonzero dimension.
    pub strb_bits: u32,
    /// `user`: transfer-level sideband signal.
    pub user_bits: u32,
}

impl SignalBundle {
    /// Total payload width excluding the `valid`/`ready` handshake.
    pub fn payload_bits(&self) -> u32 {
        self.data_bits
            + self.last_bits
            + self.stai_bits
            + self.endi_bits
            + self.strb_bits
            + self.user_bits
    }

    /// Total width including `valid` and `ready`.
    pub fn total_bits(&self) -> u32 {
        self.payload_bits() + 2
    }

    /// Iterates over the named payload signals with nonzero width, in
    /// canonical order. Used by the VHDL backend to emit port lists.
    pub fn named_signals(&self) -> impl Iterator<Item = (&'static str, u32)> {
        [
            ("data", self.data_bits),
            ("last", self.last_bits),
            ("stai", self.stai_bits),
            ("endi", self.endi_bits),
            ("strb", self.strb_bits),
            ("user", self.user_bits),
        ]
        .into_iter()
        .filter(|&(_, w)| w > 0)
    }
}

/// One physical stream produced by lowering a logical type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PhysicalStream {
    /// Path of field names from the root of the logical type to the
    /// `Stream` node, e.g. `["chars"]`. Empty for a root-level stream.
    pub path: Vec<String>,
    /// Bits per element (the stream element's width, nested streams
    /// excluded).
    pub element_bits: u32,
    /// Effective dimension after applying synchronicity rules.
    pub dimension: u32,
    /// Stream parameters of the originating `Stream` node.
    pub params: StreamParams,
    /// Resolved absolute direction (parent reversals applied).
    pub direction: Direction,
}

impl PhysicalStream {
    /// Number of element lanes (`ceil(throughput)`).
    pub fn lanes(&self) -> u32 {
        self.params.throughput.lanes()
    }

    /// Computes the signal widths of this physical stream.
    pub fn signals(&self) -> SignalBundle {
        let lanes = self.lanes();
        let c = self.params.complexity.level();
        let d = self.dimension;
        let lane_index_bits = index_width(lanes);
        SignalBundle {
            data_bits: lanes * self.element_bits,
            last_bits: if c >= 8 { lanes * d } else { d },
            stai_bits: if c >= 6 && lanes > 1 {
                lane_index_bits
            } else {
                0
            },
            endi_bits: if (c >= 5 || d >= 1) && lanes > 1 {
                lane_index_bits
            } else {
                0
            },
            strb_bits: if c >= 7 || d >= 1 { lanes } else { 0 },
            user_bits: self
                .params
                .user
                .as_ref()
                .map(|u| u.bit_width())
                .unwrap_or(0),
        }
    }

    /// The canonical signal-name prefix for this stream: the path
    /// joined with `_`, or the empty string for the root stream.
    pub fn name_suffix(&self) -> String {
        self.path.join("_")
    }

    /// Peak element rate in elements per cycle: one transfer per cycle
    /// with every lane carrying an element. This is the capacity the
    /// static throughput analysis propagates along a connection — the
    /// declared [`StreamParams::throughput`] is the *minimum* a
    /// conforming source must sustain, while `lanes()` bounds what any
    /// transfer can carry.
    pub fn peak_elements_per_cycle(&self) -> f64 {
        self.lanes() as f64
    }

    /// Guaranteed (minimum) element rate in elements per cycle, from
    /// the declared throughput ratio.
    pub fn min_elements_per_cycle(&self) -> f64 {
        self.params.throughput.as_f64()
    }

    /// Peak payload bandwidth in bits per cycle: the full signal
    /// bundle moving every cycle. Multiplied by a clock frequency this
    /// gives the wire-level bit rate a backpressure-free stream needs.
    pub fn peak_bandwidth_bits_per_cycle(&self) -> u64 {
        self.signals().payload_bits() as u64
    }
}

impl fmt::Display for PhysicalStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sig = self.signals();
        write!(
            f,
            "PhysicalStream(path=[{}], element={}b, lanes={}, dim={}, payload={}b)",
            self.path.join("."),
            self.element_bits,
            self.lanes(),
            self.dimension,
            sig.payload_bits()
        )
    }
}

/// Width of an index covering `n` lanes: `ceil(log2(n))`, and zero for
/// single-lane streams.
pub fn index_width(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        u32::BITS - (n - 1).leading_zeros()
    }
}

/// Lowers a logical type into its physical streams.
///
/// Returns an error when the type is invalid or when it contains no
/// stream at all (a port type must have at least one physical stream).
pub fn lower(root: &LogicalType) -> Result<Vec<PhysicalStream>, SpecError> {
    root.validate()?;
    let mut out = Vec::new();
    collect(root, &mut Vec::new(), 0, Direction::Forward, &mut out);
    if out.is_empty() {
        return Err(SpecError::NotSynthesizable(format!(
            "type `{root}` contains no physical stream (wrap it in Stream(...))"
        )));
    }
    Ok(out)
}

fn collect(
    ty: &LogicalType,
    path: &mut Vec<String>,
    parent_dim: u32,
    parent_dir: Direction,
    out: &mut Vec<PhysicalStream>,
) {
    match ty {
        LogicalType::Null | LogicalType::Bit(_) => {}
        LogicalType::Group(fields) | LogicalType::Union(fields) => {
            for f in fields {
                path.push(f.name.clone());
                collect(&f.ty, path, parent_dim, parent_dir, out);
                path.pop();
            }
        }
        LogicalType::Stream { element, params } => {
            let dim = params.dimension
                + if params.synchronicity.inherits_parent_dimension() {
                    parent_dim
                } else {
                    0
                };
            let dir = match params.direction {
                Direction::Forward => parent_dir,
                Direction::Reverse => parent_dir.reverse(),
            };
            let elem_bits = element.bit_width();
            // Streams of Null are optimized out (paper Table I) unless
            // explicitly kept.
            if elem_bits > 0 || params.keep || params.user.is_some() {
                out.push(PhysicalStream {
                    path: path.clone(),
                    element_bits: elem_bits,
                    dimension: dim,
                    params: params.clone(),
                    direction: dir,
                });
            }
            // A directly nested stream shares this stream's path; give
            // it a synthetic `el` path element so signal names stay
            // unique (fields of groups/unions extend the path anyway).
            if matches!(**element, LogicalType::Stream { .. }) {
                path.push("el".to_string());
                collect(element, path, dim, dir, out);
                path.pop();
            } else {
                collect(element, path, dim, dir, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{Complexity, StreamParams, Synchronicity, Throughput};

    fn bit_stream(width: u32, params: StreamParams) -> LogicalType {
        LogicalType::stream(LogicalType::Bit(width), params)
    }

    #[test]
    fn index_widths() {
        assert_eq!(index_width(1), 0);
        assert_eq!(index_width(2), 1);
        assert_eq!(index_width(3), 2);
        assert_eq!(index_width(4), 2);
        assert_eq!(index_width(5), 3);
        assert_eq!(index_width(8), 3);
    }

    #[test]
    fn rate_metadata_follows_lanes_and_throughput() {
        let t = bit_stream(
            8,
            StreamParams::new().with_throughput(Throughput::new(5, 2).unwrap()),
        );
        let s = &lower(&t).unwrap()[0];
        // ceil(5/2) = 3 lanes -> peak 3 elements/cycle; the guaranteed
        // minimum is the exact declared ratio.
        assert_eq!(s.peak_elements_per_cycle(), 3.0);
        assert!((s.min_elements_per_cycle() - 2.5).abs() < 1e-12);
        assert_eq!(
            s.peak_bandwidth_bits_per_cycle(),
            s.signals().payload_bits() as u64
        );
    }

    #[test]
    fn sentence_example_from_paper() {
        // Stream(Bit(8), dimension = 2): one physical stream, 8 data
        // bits, two last bits.
        let t = bit_stream(8, StreamParams::new().with_dimension(2));
        let phys = lower(&t).unwrap();
        assert_eq!(phys.len(), 1);
        let s = phys[0].signals();
        assert_eq!(s.data_bits, 8);
        assert_eq!(s.last_bits, 2);
        assert_eq!(s.stai_bits, 0);
        assert_eq!(s.endi_bits, 0);
        // dimension >= 1 implies a strobe lane marker.
        assert_eq!(s.strb_bits, 1);
    }

    #[test]
    fn scalar_stream_minimal_signals() {
        let t = bit_stream(32, StreamParams::new());
        let s = lower(&t).unwrap()[0].signals();
        assert_eq!(s.data_bits, 32);
        assert_eq!(s.last_bits, 0);
        assert_eq!(s.strb_bits, 0);
        assert_eq!(s.endi_bits, 0);
        assert_eq!(s.stai_bits, 0);
        assert_eq!(s.payload_bits(), 32);
        assert_eq!(s.total_bits(), 34);
    }

    #[test]
    fn multilane_signals() {
        let t = bit_stream(
            8,
            StreamParams::new()
                .with_throughput(Throughput::new(4, 1).unwrap())
                .with_complexity(Complexity::new(7).unwrap())
                .with_dimension(1),
        );
        let s = lower(&t).unwrap()[0].signals();
        assert_eq!(s.data_bits, 32);
        assert_eq!(s.last_bits, 1);
        assert_eq!(s.stai_bits, 2); // c >= 6, 4 lanes
        assert_eq!(s.endi_bits, 2); // c >= 5, 4 lanes
        assert_eq!(s.strb_bits, 4); // c >= 7
    }

    #[test]
    fn complexity8_per_lane_last() {
        let t = bit_stream(
            8,
            StreamParams::new()
                .with_throughput(Throughput::new(2, 1).unwrap())
                .with_complexity(Complexity::new(8).unwrap())
                .with_dimension(2),
        );
        let s = lower(&t).unwrap()[0].signals();
        assert_eq!(s.last_bits, 4); // 2 lanes x 2 dims
    }

    #[test]
    fn nested_stream_splits_off() {
        // Group { len: Bit(16), chars: Stream(Bit(8), d=1) } inside a
        // Stream: two physical streams.
        let record = LogicalType::group(vec![
            ("len", LogicalType::Bit(16)),
            (
                "chars",
                bit_stream(8, StreamParams::new().with_dimension(1)),
            ),
        ]);
        let t = LogicalType::stream(record, StreamParams::new());
        let phys = lower(&t).unwrap();
        assert_eq!(phys.len(), 2);
        assert_eq!(phys[0].path, Vec::<String>::new());
        assert_eq!(phys[0].element_bits, 16);
        assert_eq!(phys[1].path, vec!["chars".to_string()]);
        assert_eq!(phys[1].element_bits, 8);
        // Sync child inherits parent dimension 0 + its own 1.
        assert_eq!(phys[1].dimension, 1);
    }

    #[test]
    fn sync_child_inherits_parent_dimension() {
        let inner = bit_stream(8, StreamParams::new().with_dimension(1));
        let t = LogicalType::stream(
            LogicalType::group(vec![("x", LogicalType::Bit(4)), ("s", inner)]),
            StreamParams::new().with_dimension(2),
        );
        let phys = lower(&t).unwrap();
        assert_eq!(phys[0].dimension, 2);
        assert_eq!(phys[1].dimension, 3); // 2 inherited + 1 own
    }

    #[test]
    fn flatten_child_drops_parent_dimension() {
        let inner = bit_stream(
            8,
            StreamParams::new()
                .with_dimension(1)
                .with_synchronicity(Synchronicity::Flatten),
        );
        let t = LogicalType::stream(
            LogicalType::group(vec![("x", LogicalType::Bit(4)), ("s", inner)]),
            StreamParams::new().with_dimension(2),
        );
        let phys = lower(&t).unwrap();
        assert_eq!(phys[1].dimension, 1); // own only
    }

    #[test]
    fn reverse_direction_propagates() {
        let inner = bit_stream(8, StreamParams::new().with_direction(Direction::Reverse));
        let t = LogicalType::stream(
            LogicalType::group(vec![("req", LogicalType::Bit(4)), ("resp", inner)]),
            StreamParams::new(),
        );
        let phys = lower(&t).unwrap();
        assert_eq!(phys[0].direction, Direction::Forward);
        assert_eq!(phys[1].direction, Direction::Reverse);
        // Double reversal cancels out.
        let inner2 = bit_stream(8, StreamParams::new().with_direction(Direction::Reverse));
        let mid = LogicalType::stream(
            LogicalType::group(vec![("x", inner2)]),
            StreamParams::new().with_direction(Direction::Reverse),
        );
        let t2 = LogicalType::stream(
            LogicalType::group(vec![("m", mid), ("d", LogicalType::Bit(1))]),
            StreamParams::new(),
        );
        let phys2 = lower(&t2).unwrap();
        let nested = phys2.iter().find(|p| p.path == vec!["m", "x"]).unwrap();
        assert_eq!(nested.direction, Direction::Forward);
    }

    #[test]
    fn null_stream_is_optimized_out() {
        let t = LogicalType::stream(
            LogicalType::group(vec![
                ("d", LogicalType::Bit(8)),
                (
                    "n",
                    LogicalType::stream(LogicalType::Null, StreamParams::new()),
                ),
            ]),
            StreamParams::new(),
        );
        let phys = lower(&t).unwrap();
        assert_eq!(phys.len(), 1);
    }

    #[test]
    fn kept_null_stream_survives() {
        let t = LogicalType::stream(LogicalType::Null, StreamParams::new().with_keep(true));
        let phys = lower(&t).unwrap();
        assert_eq!(phys.len(), 1);
        assert_eq!(phys[0].element_bits, 0);
    }

    #[test]
    fn pure_data_type_is_not_synthesizable() {
        assert!(matches!(
            lower(&LogicalType::Bit(8)),
            Err(SpecError::NotSynthesizable(_))
        ));
    }

    #[test]
    fn user_bits_counted() {
        let t = LogicalType::stream(
            LogicalType::Bit(8),
            StreamParams::new().with_user(LogicalType::Bit(3)),
        );
        let s = lower(&t).unwrap()[0].signals();
        assert_eq!(s.user_bits, 3);
    }

    #[test]
    fn name_suffix_joins_path() {
        let record = LogicalType::group(vec![(
            "inner",
            LogicalType::group(vec![(
                "chars",
                bit_stream(8, StreamParams::new().with_dimension(1)),
            )]),
        )]);
        let t = LogicalType::stream(
            LogicalType::group(vec![
                ("len", LogicalType::Bit(4)),
                ("rec", record.fields()[0].ty.clone()),
            ]),
            StreamParams::new(),
        );
        let phys = lower(&t).unwrap();
        let nested = phys.iter().find(|p| !p.path.is_empty()).unwrap();
        assert_eq!(nested.name_suffix(), "rec_chars");
    }
}
