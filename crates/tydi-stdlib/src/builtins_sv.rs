//! SystemVerilog generation processes for the standard library.
//!
//! One-to-one twins of the VHDL generators in [`crate::builtins`],
//! registered for [`Backend::SystemVerilog`] on the per-backend
//! builtin registry. Each generator inspects the same concrete
//! streamlet (port count, data widths, `last` widths) and emits a
//! SystemVerilog module body: continuous `assign`s for the
//! combinational builtins, `always_ff` processes for the registered
//! ones. Data is unsigned (as in the VHDL twins) except the
//! constant comparators, which compare signed.

use crate::builtins::{data_width, group2_field_widths, int_param, last_width, port};
use std::fmt::Write as _;
use tydi_rtl::verilog::sv_type;
use tydi_rtl::Backend;
use tydi_vhdl::builtin::{ArchBody, BuiltinCtx};
use tydi_vhdl::BuiltinRegistry;

/// Registers every standard-library SystemVerilog generator on
/// `registry`, under the same keys as the VHDL set.
pub fn register_builtins_sv(registry: &BuiltinRegistry) {
    let b = Backend::SystemVerilog;
    registry.register_for(b, "std.add", gen_binop("+"));
    registry.register_for(b, "std.sub", gen_binop("-"));
    registry.register_for(b, "std.mul", gen_mul);
    registry.register_for(b, "std.div", gen_binop("/"));
    registry.register_for(b, "std.cmp_eq", gen_compare("=="));
    registry.register_for(b, "std.cmp_ne", gen_compare("!="));
    registry.register_for(b, "std.cmp_lt", gen_compare("<"));
    registry.register_for(b, "std.cmp_le", gen_compare("<="));
    registry.register_for(b, "std.cmp_gt", gen_compare(">"));
    registry.register_for(b, "std.cmp_ge", gen_compare(">="));
    registry.register_for(b, "std.eq_const", gen_compare_const("=="));
    registry.register_for(b, "std.ne_const", gen_compare_const("!="));
    registry.register_for(b, "std.lt_const", gen_compare_const("<"));
    registry.register_for(b, "std.le_const", gen_compare_const("<="));
    registry.register_for(b, "std.gt_const", gen_compare_const(">"));
    registry.register_for(b, "std.ge_const", gen_compare_const(">="));
    registry.register_for(b, "std.and_n", gen_logic_n("&"));
    registry.register_for(b, "std.or_n", gen_logic_n("|"));
    registry.register_for(b, "std.not", gen_not);
    registry.register_for(b, "std.filter", gen_filter);
    registry.register_for(b, "std.sum", gen_reduce(ReduceKind::Sum));
    registry.register_for(b, "std.count", gen_reduce(ReduceKind::Count));
    registry.register_for(b, "std.min", gen_reduce(ReduceKind::Min));
    registry.register_for(b, "std.max", gen_reduce(ReduceKind::Max));
    registry.register_for(b, "std.demux", gen_demux);
    registry.register_for(b, "std.mux", gen_mux);
    registry.register_for(b, "std.const", gen_const);
    registry.register_for(b, "std.group_split2", gen_group_split2);
    registry.register_for(b, "std.group_combine2", gen_group_combine2);
}

// ---- shared helpers -----------------------------------------------------

/// Renders an expression evaluated at `width` bits via a
/// SystemVerilog size cast: the cast's context width propagates to
/// the operands, so a single-operand expression is zero-extended or
/// truncated exactly like the VHDL `resize` on `unsigned`.
fn resized(expr: &str, width: u32) -> String {
    format!("{width}'({expr})")
}

/// Wraps `v` into the `width`-bit two's-complement range, matching
/// the truncation VHDL's `to_signed(v, width)` applies before a
/// comparison.
fn wrap_signed(v: i64, width: u32) -> i64 {
    if width >= 64 {
        return v;
    }
    let modulus = 1i128 << width;
    let mut wrapped = (v as i128).rem_euclid(modulus);
    if wrapped >= modulus / 2 {
        wrapped -= modulus;
    }
    wrapped as i64
}

/// Renders an integer constant at a given width.
fn const_literal(value: i64, width: u32) -> String {
    if width == 1 {
        format!("1'b{}", value & 1)
    } else {
        format!("{width}'({value})")
    }
}

/// The innermost `last` lane of an input with dimension >= 1.
fn inner_last(width: u32) -> &'static str {
    if width == 1 {
        "i_last"
    } else {
        "i_last[0]"
    }
}

/// Two-input handshake join feeding one output (the twin of the VHDL
/// `join2`). `op_line` produces the data statement.
fn join2(
    ctx: &BuiltinCtx<'_>,
    op_line: impl FnOnce(&tydi_ir::Port, &tydi_ir::Port, &tydi_ir::Port) -> Result<String, String>,
) -> Result<ArchBody, String> {
    let in0 = port(ctx, "in0")?;
    let in1 = port(ctx, "in1")?;
    let out = port(ctx, "o")?;
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  assign o_valid = in0_valid & in1_valid;");
    let _ = writeln!(
        stmts,
        "  assign in0_ready = in0_valid & in1_valid & o_ready;"
    );
    let _ = writeln!(
        stmts,
        "  assign in1_ready = in0_valid & in1_valid & o_ready;"
    );
    stmts.push_str(&op_line(in0, in1, out)?);
    // Forward `last` from the first operand when the output carries
    // dimensions (operands of a join must be dimension-aligned).
    if last_width(out)? > 0 && last_width(in0)? == last_width(out)? {
        let _ = writeln!(stmts, "  assign o_last = in0_last;");
    }
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

// ---- arithmetic -----------------------------------------------------------

fn gen_binop(op: &'static str) -> impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> {
    move |ctx| {
        join2(ctx, |in0, in1, out| {
            let w0 = data_width(in0)?;
            let w1 = data_width(in1)?;
            let wo = data_width(out)?;
            // The VHDL twin computes `resize(a {op} b, wo)` where
            // numeric_std evaluates `a {op} b` at max(w0, w1) bits
            // (the carry is dropped *before* the resize). A bare
            // `wo'(a {op} b)` would instead evaluate at wo bits and
            // keep the carry, so truncate at the operand width first
            // when the output is wider.
            let wmax = w0.max(w1);
            let expr = format!("in0_data {op} in1_data");
            let expr = if wo > wmax {
                resized(&resized(&expr, wmax), wo)
            } else {
                resized(&expr, wo)
            };
            Ok(format!("  assign o_data = {expr};\n"))
        })
    }
}

/// Multiplication keeps the full double-width product into the
/// truncation (the VHDL twin resizes the max(w0+w1)-bit product), so
/// a single `wo`-bit cast — low `wo` bits of the product — matches.
fn gen_mul(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    join2(ctx, |_in0, _in1, out| {
        let wo = data_width(out)?;
        Ok(format!(
            "  assign o_data = {};\n",
            resized("in0_data * in1_data", wo)
        ))
    })
}

// ---- comparison -----------------------------------------------------------

fn gen_compare(op: &'static str) -> impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> {
    move |ctx| {
        join2(ctx, |_in0, _in1, _out| {
            Ok(format!(
                "  assign o_data = (in0_data {op} in1_data) ? 1'b1 : 1'b0;\n"
            ))
        })
    }
}

fn gen_compare_const(op: &'static str) -> impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> {
    move |ctx| {
        let input = port(ctx, "i")?;
        let wi = data_width(input)?;
        let v = int_param(ctx, "v")?;
        // The VHDL twin compares against `to_signed(v, wi)`, which
        // truncates an out-of-range constant into the wi-bit signed
        // range; apply the same wrap here so both backends compare
        // against the same value.
        let v = wrap_signed(v, wi);
        let mut stmts = String::new();
        let _ = writeln!(stmts, "  assign o_valid = i_valid;");
        let _ = writeln!(stmts, "  assign i_ready = o_ready;");
        // Signed comparison, zero-extending a single-bit payload first
        // (the twin of the VHDL `'0' & i_data`).
        let lhs = if wi == 1 {
            "$signed({1'b0, i_data})".to_string()
        } else {
            "$signed(i_data)".to_string()
        };
        let _ = writeln!(stmts, "  assign o_data = ({lhs} {op} {v}) ? 1'b1 : 1'b0;");
        if last_width(input)? > 0 && last_width(port(ctx, "o")?)? == last_width(input)? {
            let _ = writeln!(stmts, "  assign o_last = i_last;");
        }
        Ok(ArchBody {
            decls: String::new(),
            stmts,
        })
    }
}

// ---- n-ary logic ----------------------------------------------------------

fn gen_logic_n(op: &'static str) -> impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> {
    move |ctx| {
        let inputs = ctx.inputs();
        if inputs.is_empty() {
            return Err(format!("{op}-gate needs at least one input"));
        }
        let mut stmts = String::new();
        let valids: Vec<String> = inputs.iter().map(|p| format!("{}_valid", p.name)).collect();
        let datas: Vec<String> = inputs.iter().map(|p| format!("{}_data", p.name)).collect();
        let all_valid = valids.join(" & ");
        let _ = writeln!(stmts, "  assign o_valid = {all_valid};");
        let _ = writeln!(
            stmts,
            "  assign o_data = {};",
            datas.join(&format!(" {op} "))
        );
        for p in &inputs {
            let _ = writeln!(stmts, "  assign {}_ready = {all_valid} & o_ready;", p.name);
        }
        Ok(ArchBody {
            decls: String::new(),
            stmts,
        })
    }
}

fn gen_not(_ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  assign o_valid = i_valid;");
    let _ = writeln!(stmts, "  assign i_ready = o_ready;");
    let _ = writeln!(stmts, "  assign o_data = ~i_data;");
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

// ---- stream manipulation ---------------------------------------------------

fn gen_filter(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let input = port(ctx, "i")?;
    let out = port(ctx, "o")?;
    let mut decls = String::new();
    let mut stmts = String::new();
    let _ = writeln!(decls, "  logic both;");
    let _ = writeln!(decls, "  logic forward;");
    let _ = writeln!(decls, "  logic consumed;");
    let _ = writeln!(stmts, "  assign both = i_valid & keep_valid;");
    let _ = writeln!(stmts, "  assign forward = both & keep_data;");
    let _ = writeln!(stmts, "  assign o_valid = forward;");
    let _ = writeln!(stmts, "  assign o_data = i_data;");
    if last_width(input)? > 0 && last_width(out)? == last_width(input)? {
        let _ = writeln!(stmts, "  assign o_last = i_last;");
    }
    let _ = writeln!(
        stmts,
        "  assign consumed = (forward & o_ready) | (both & ~keep_data);"
    );
    let _ = writeln!(stmts, "  assign i_ready = consumed;");
    let _ = writeln!(stmts, "  assign keep_ready = consumed;");
    Ok(ArchBody { decls, stmts })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceKind {
    Sum,
    Count,
    Min,
    Max,
}

/// A registered reduction over the innermost sequence dimension: one
/// accumulator plus a pending-result register, closing on `last`.
fn gen_reduce(kind: ReduceKind) -> impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> {
    move |ctx| {
        let input = port(ctx, "i")?;
        let out = port(ctx, "o")?;
        let wo = data_width(out)?;
        let in_last = last_width(input)?;
        if in_last == 0 {
            return Err("reduction input must have dimension >= 1".into());
        }
        let last = inner_last(in_last);
        let element = resized("i_data", wo);
        let update = match kind {
            ReduceKind::Sum => format!("acc + {element}"),
            ReduceKind::Count => format!("acc + {}", const_literal(1, wo)),
            ReduceKind::Min => format!("(acc < {element}) ? acc : {element}"),
            ReduceKind::Max => format!("(acc > {element}) ? acc : {element}"),
        };
        let init = match kind {
            ReduceKind::Sum | ReduceKind::Count | ReduceKind::Max => "'0",
            ReduceKind::Min => "'1",
        };
        let mut decls = String::new();
        let _ = writeln!(decls, "  {} acc;", sv_type(wo));
        let _ = writeln!(decls, "  logic result_valid;");
        let _ = writeln!(decls, "  {} result_data;", sv_type(wo));
        let mut stmts = String::new();
        let _ = writeln!(stmts, "  assign o_valid = result_valid;");
        let _ = writeln!(stmts, "  assign o_data = result_data;");
        let _ = writeln!(stmts, "  assign i_ready = ~result_valid | o_ready;");
        let _ = writeln!(stmts, "  always_ff @(posedge clk) begin");
        let _ = writeln!(stmts, "    if (rst) begin");
        let _ = writeln!(stmts, "      acc <= {init};");
        let _ = writeln!(stmts, "      result_valid <= 1'b0;");
        let _ = writeln!(stmts, "    end else begin");
        let _ = writeln!(stmts, "      if (result_valid && o_ready) begin");
        let _ = writeln!(stmts, "        result_valid <= 1'b0;");
        let _ = writeln!(stmts, "      end");
        let _ = writeln!(
            stmts,
            "      if (i_valid && (!result_valid || o_ready)) begin"
        );
        let _ = writeln!(stmts, "        if ({last}) begin");
        let _ = writeln!(stmts, "          result_data <= {update};");
        let _ = writeln!(stmts, "          result_valid <= 1'b1;");
        let _ = writeln!(stmts, "          acc <= {init};");
        let _ = writeln!(stmts, "        end else begin");
        let _ = writeln!(stmts, "          acc <= {update};");
        let _ = writeln!(stmts, "        end");
        let _ = writeln!(stmts, "      end");
        let _ = writeln!(stmts, "    end");
        let _ = writeln!(stmts, "  end");
        Ok(ArchBody { decls, stmts })
    }
}

/// A round-robin `sel` counter process shared by demux and mux.
fn sel_counter(stmts: &mut String, n: usize) {
    let _ = writeln!(stmts, "  always_ff @(posedge clk) begin");
    let _ = writeln!(stmts, "    if (rst) begin");
    let _ = writeln!(stmts, "      sel <= '0;");
    let _ = writeln!(stmts, "    end else if (fire) begin");
    let _ = writeln!(stmts, "      if (sel == {}) begin", n - 1);
    let _ = writeln!(stmts, "        sel <= '0;");
    let _ = writeln!(stmts, "      end else begin");
    let _ = writeln!(stmts, "        sel <= sel + 1'b1;");
    let _ = writeln!(stmts, "      end");
    let _ = writeln!(stmts, "    end");
    let _ = writeln!(stmts, "  end");
}

fn sel_decls(n: usize) -> String {
    let sel_bits = (usize::BITS - (n - 1).leading_zeros()).max(1);
    let mut decls = String::new();
    let _ = writeln!(decls, "  {} sel;", sv_type(sel_bits));
    let _ = writeln!(decls, "  logic fire;");
    decls
}

fn gen_demux(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let outputs = ctx.outputs();
    let n = outputs.len();
    if n == 0 {
        return Err("demux needs at least one output".into());
    }
    let decls = sel_decls(n);
    let mut stmts = String::new();
    for (k, output) in outputs.iter().enumerate() {
        let name = &output.name;
        let _ = writeln!(
            stmts,
            "  assign {name}_valid = (sel == {k}) ? i_valid : 1'b0;"
        );
        let _ = writeln!(stmts, "  assign {name}_data = i_data;");
        if last_width(output).unwrap_or(0) > 0 {
            let _ = writeln!(stmts, "  assign {name}_last = i_last;");
        }
    }
    let readies: Vec<String> = outputs
        .iter()
        .enumerate()
        .map(|(k, o)| format!("(sel == {k}) ? {}_ready :", o.name))
        .collect();
    let _ = writeln!(stmts, "  assign i_ready = {} 1'b0;", readies.join(" "));
    let _ = writeln!(stmts, "  assign fire = i_valid & i_ready;");
    sel_counter(&mut stmts, n);
    Ok(ArchBody { decls, stmts })
}

fn gen_mux(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let inputs = ctx.inputs();
    let n = inputs.len();
    if n == 0 {
        return Err("mux needs at least one input".into());
    }
    let decls = sel_decls(n);
    let mut stmts = String::new();
    let valid_cases: Vec<String> = inputs
        .iter()
        .enumerate()
        .map(|(k, p)| format!("(sel == {k}) ? {}_valid :", p.name))
        .collect();
    let data_cases: Vec<String> = inputs
        .iter()
        .enumerate()
        .map(|(k, p)| format!("(sel == {k}) ? {}_data :", p.name))
        .collect();
    let _ = writeln!(stmts, "  assign o_valid = {} 1'b0;", valid_cases.join(" "));
    let _ = writeln!(
        stmts,
        "  assign o_data = {} {}_data;",
        data_cases.join(" "),
        inputs[0].name
    );
    for (k, p) in inputs.iter().enumerate() {
        let _ = writeln!(
            stmts,
            "  assign {}_ready = (sel == {k}) ? o_ready : 1'b0;",
            p.name
        );
    }
    let _ = writeln!(stmts, "  assign fire = o_valid & o_ready;");
    sel_counter(&mut stmts, n);
    Ok(ArchBody { decls, stmts })
}

fn gen_const(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let out = port(ctx, "o")?;
    let wo = data_width(out)?;
    let v = int_param(ctx, "v")?;
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  assign o_valid = 1'b1;");
    let _ = writeln!(stmts, "  assign o_data = {};", const_literal(v, wo));
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

/// `std.group_split2`: slice a two-field Group element into its field
/// streams; acknowledge the input when both sinks accepted (the
/// duplicator handshake pattern).
fn gen_group_split2(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let input = port(ctx, "i")?;
    let (wa, wb) = group2_field_widths(input)?;
    let out_a = port(ctx, "a")?;
    let out_b = port(ctx, "b")?;
    if data_width(out_a)? != wa || data_width(out_b)? != wb {
        return Err("output widths must match the Group field widths".into());
    }
    let mut decls = String::new();
    let mut stmts = String::new();
    let _ = writeln!(decls, "  logic both_ready;");
    let _ = writeln!(stmts, "  assign both_ready = a_ready & b_ready;");
    let _ = writeln!(stmts, "  assign i_ready = both_ready;");
    let _ = writeln!(stmts, "  assign a_valid = i_valid & both_ready;");
    let _ = writeln!(stmts, "  assign b_valid = i_valid & both_ready;");
    let _ = writeln!(stmts, "  assign a_data = i_data[{}:0];", wa - 1);
    let _ = writeln!(stmts, "  assign b_data = i_data[{}:{wa}];", wa + wb - 1);
    if last_width(input)? > 0 {
        if last_width(out_a)? == last_width(input)? {
            let _ = writeln!(stmts, "  assign a_last = i_last;");
        }
        if last_width(out_b)? == last_width(input)? {
            let _ = writeln!(stmts, "  assign b_last = i_last;");
        }
    }
    Ok(ArchBody { decls, stmts })
}

/// `std.group_combine2`: concatenate two element streams into a Group
/// element (field `a` occupies the low bits, matching Group packing).
fn gen_group_combine2(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let in_a = port(ctx, "a")?;
    let in_b = port(ctx, "b")?;
    let out = port(ctx, "o")?;
    let (wa, wb) = group2_field_widths(out)?;
    if data_width(in_a)? != wa || data_width(in_b)? != wb {
        return Err("input widths must match the Group field widths".into());
    }
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  assign o_valid = a_valid & b_valid;");
    let _ = writeln!(stmts, "  assign a_ready = a_valid & b_valid & o_ready;");
    let _ = writeln!(stmts, "  assign b_ready = a_valid & b_valid & o_ready;");
    let _ = writeln!(stmts, "  assign o_data = {{b_data, a_data}};");
    if last_width(out)? > 0 && last_width(in_a)? == last_width(out)? {
        let _ = writeln!(stmts, "  assign o_last = a_last;");
    }
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

#[cfg(test)]
mod tests {
    use crate::source::with_stdlib;
    use tydi_lang::{compile, CompileOptions};
    use tydi_rtl::check::check_verilog;
    use tydi_rtl::Backend;
    use tydi_vhdl::{generate_project_for, VhdlOptions};

    /// Compiles user source with the stdlib and generates
    /// SystemVerilog.
    fn build_sv(user: &str) -> String {
        let sources = with_stdlib(&[("app.td", user)]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let out = compile(&refs, &CompileOptions::default()).unwrap_or_else(|e| {
            panic!("compile failed:\n{e}");
        });
        let registry = crate::full_registry();
        let files = generate_project_for(
            &out.project,
            &registry,
            &VhdlOptions::default(),
            Backend::SystemVerilog,
        )
        .expect("verilog generation");
        let mut all = String::new();
        for f in files {
            all.push_str(&f.contents);
        }
        all
    }

    #[test]
    fn adder_generates_resized_sum() {
        let sv = build_sv(
            r#"
package app;
use std;
type W32 = Stream(Bit(32));
type W33 = Stream(Bit(33));
streamlet top_s { a : W32 in, b : W32 in, s : W33 out, }
impl top_i of top_s {
    instance add(adder_i<type W32, type W32, type W33>),
    a => add.in0,
    b => add.in1,
    add.o => s,
}
"#,
        );
        // The carry is dropped at the 32-bit operand width before the
        // zero-extension to 33 bits, matching the VHDL
        // `resize(a + b, 33)` where numeric_std adds at 32 bits.
        assert!(sv.contains("assign o_data = 33'(32'(in0_data + in1_data));"));
        assert!(sv.contains("assign o_valid = in0_valid & in1_valid;"));
        let issues = check_verilog(&sv);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn multiplier_keeps_full_product_into_truncation() {
        let sv = build_sv(
            r#"
package app;
use std;
type W32 = Stream(Bit(32));
type W64 = Stream(Bit(64));
streamlet top_s { a : W32 in, b : W32 in, p : W64 out, }
impl top_i of top_s {
    instance mul(multiplier_i<type W32, type W32, type W64>),
    a => mul.in0,
    b => mul.in1,
    mul.o => p,
}
"#,
        );
        // No operand-width truncation: the 64-bit cast context keeps
        // the low 64 bits of the full product, as the VHDL
        // `resize(a * b, 64)` does.
        assert!(sv.contains("assign o_data = 64'(in0_data * in1_data);"));
        assert!(check_verilog(&sv).is_empty());
    }

    #[test]
    fn comparator_and_logic_gates() {
        let sv = build_sv(
            r#"
package app;
use std;
type W8 = Stream(Bit(8));
streamlet top_s { a : W8 in, b : W8 in, c : W8 in, d : W8 in, o : BoolStream out, }
impl top_i of top_s {
    instance lt(lt_i<type W8, type W8>),
    instance gt(gt_i<type W8, type W8>),
    instance both(and_n_i<2>),
    a => lt.in0,
    b => lt.in1,
    c => gt.in0,
    d => gt.in1,
    lt.o => both.i[0],
    gt.o => both.i[1],
    both.o => o,
}
"#,
        );
        assert!(sv.contains("assign o_data = (in0_data < in1_data) ? 1'b1 : 1'b0;"));
        assert!(sv.contains("assign o_data = i_0_data & i_1_data;"));
        assert!(check_verilog(&sv).is_empty());
    }

    #[test]
    fn const_compare_is_signed() {
        let sv = build_sv(
            r#"
package app;
use std;
type W16 = Stream(Bit(16));
streamlet top_s { i : W16 in, o : BoolStream out, }
impl top_i of top_s {
    instance cmp(ge_const_i<type W16, 42>),
    i => cmp.i,
    cmp.o => o,
}
"#,
        );
        assert!(sv.contains("assign o_data = ($signed(i_data) >= 42) ? 1'b1 : 1'b0;"));
        assert!(check_verilog(&sv).is_empty());
    }

    #[test]
    fn const_compare_wraps_out_of_range_constants_like_vhdl() {
        // `to_signed(200, 8)` wraps to -56 in the VHDL twin; the SV
        // twin must compare against the same wrapped value.
        let sv = build_sv(
            r#"
package app;
use std;
type W8 = Stream(Bit(8));
streamlet top_s { i : W8 in, o : BoolStream out, }
impl top_i of top_s {
    instance cmp(ge_const_i<type W8, 200>),
    i => cmp.i,
    cmp.o => o,
}
"#,
        );
        assert!(sv.contains("assign o_data = ($signed(i_data) >= -56) ? 1'b1 : 1'b0;"));
        assert!(check_verilog(&sv).is_empty());
    }

    #[test]
    fn wrap_signed_matches_to_signed_truncation() {
        use super::wrap_signed;
        assert_eq!(wrap_signed(42, 16), 42);
        assert_eq!(wrap_signed(200, 8), -56);
        assert_eq!(wrap_signed(-1, 8), -1);
        assert_eq!(wrap_signed(128, 8), -128);
        assert_eq!(wrap_signed(127, 8), 127);
        assert_eq!(wrap_signed(1, 1), -1);
        assert_eq!(wrap_signed(0, 1), 0);
        assert_eq!(wrap_signed(i64::MAX, 64), i64::MAX);
        assert_eq!(wrap_signed(i64::MIN, 70), i64::MIN);
    }

    #[test]
    fn reduce_has_accumulator_process() {
        let sv = build_sv(
            r#"
package app;
use std;
type Seq32 = Stream(Bit(32), d=1);
type W64 = Stream(Bit(64));
streamlet top_s { i : Seq32 in, o : W64 out, }
impl top_i of top_s {
    instance s(sum_i<type Seq32, type W64>),
    i => s.i,
    s.o => o,
}
"#,
        );
        assert!(sv.contains("logic [63:0] acc;"));
        assert!(sv.contains("always_ff @(posedge clk) begin"));
        assert!(sv.contains("if (i_last) begin"));
        assert!(sv.contains("acc + 64'(i_data)"));
        assert!(check_verilog(&sv).is_empty());
    }

    #[test]
    fn demux_mux_round_robin() {
        let sv = build_sv(
            r#"
package app;
use std;
type W8 = Stream(Bit(8));
streamlet top_s { i : W8 in, o : W8 out, }
impl top_i of top_s {
    instance d(demux_i<type W8, 4>),
    instance m(mux_i<type W8, 4>),
    i => d.i,
    for k in (0..4) {
        d.o[k] => m.i[k],
    }
    m.o => o,
}
"#,
        );
        assert!(sv.contains("assign o_0_valid = (sel == 0) ? i_valid : 1'b0;"));
        assert!(sv.contains("logic [1:0] sel;"));
        assert!(sv.contains("sel <= sel + 1'b1;"));
        assert!(check_verilog(&sv).is_empty());
    }

    #[test]
    fn filter_consumes_dropped_packets() {
        let sv = build_sv(
            r#"
package app;
use std;
type W8 = Stream(Bit(8));
streamlet top_s { i : W8 in, k : BoolStream in, o : W8 out, }
impl top_i of top_s {
    instance f(filter_i<type W8>),
    i => f.i,
    k => f.keep,
    f.o => o,
}
"#,
        );
        assert!(sv.contains("assign forward = both & keep_data;"));
        assert!(sv.contains("assign consumed = (forward & o_ready) | (both & ~keep_data);"));
        assert!(check_verilog(&sv).is_empty());
    }

    #[test]
    fn const_source_drives_literal() {
        let sv = build_sv(
            r#"
package app;
use std;
type W16 = Stream(Bit(16));
streamlet top_s { o : W16 out, }
impl top_i of top_s {
    instance c(const_source_i<type W16, 1234>),
    c.o => o,
}
"#,
        );
        assert!(sv.contains("assign o_data = 16'(1234);"));
        assert!(sv.contains("assign o_valid = 1'b1;"));
        assert!(check_verilog(&sv).is_empty());
    }

    #[test]
    fn group_split_and_combine_slice_fields() {
        let sv = build_sv(
            r#"
package app;
use std;
Group PairG {
    x: Bit(16),
    y: Bit(16),
}
type Pair = Stream(PairG);
type Half = Stream(Bit(16));
streamlet top_s { pairs : Pair in, swapped : Pair out, }
@NoStrictType
impl top_i of top_s {
    instance sp(group_split2_i<type Pair, type Half, type Half>),
    instance cb(group_combine2_i<type Half, type Half, type Pair>),
    pairs => sp.i,
    sp.a => cb.b,
    sp.b => cb.a,
    cb.o => swapped,
}
"#,
        );
        assert!(sv.contains("assign a_data = i_data[15:0];"));
        assert!(sv.contains("assign b_data = i_data[31:16];"));
        assert!(sv.contains("assign o_data = {b_data, a_data};"));
        assert!(check_verilog(&sv).is_empty());
    }
}
