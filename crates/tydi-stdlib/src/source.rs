//! The embedded Tydi-lang source of the standard library.

/// File name under which the standard library registers itself.
pub const STDLIB_FILE_NAME: &str = "std.td";

/// The standard library source (package `std`).
pub const STDLIB_SOURCE: &str = r#"package std;

// Boolean streams carry one bit per element; comparators produce them
// and filters/logic gates consume them.
type BoolStream = Stream(Bit(1));

// ---------------------------------------------------------------------
// Packet plumbing (handshake layer; inserted automatically by sugaring)
// ---------------------------------------------------------------------
streamlet duplicator_s<T: type, n: int> {
    i : T in,
    o : T out [n],
}
@builtin("std.duplicator")
impl duplicator_i<T: type, n: int> of duplicator_s<type T, n> external;

streamlet voider_s<T: type> {
    i : T in,
}
@builtin("std.voider")
impl voider_i<T: type> of voider_s<type T> external;

streamlet passthrough_s<T: type> {
    i : T in,
    o : T out,
}
@builtin("std.passthrough")
impl passthrough_i<T: type> of passthrough_s<type T> external;

// ---------------------------------------------------------------------
// Arithmetic: one template per operator, shared across logical types
// (the two operands may be differently-typed columns)
// ---------------------------------------------------------------------
streamlet binop_s<Ta: type, Tb: type, Tout: type> {
    in0 : Ta in,
    in1 : Tb in,
    o : Tout out,
}
@builtin("std.add")
impl adder_i<Ta: type, Tb: type, Tout: type> of binop_s<type Ta, type Tb, type Tout> external;
@builtin("std.sub")
impl subtractor_i<Ta: type, Tb: type, Tout: type> of binop_s<type Ta, type Tb, type Tout> external;
@builtin("std.mul")
impl multiplier_i<Ta: type, Tb: type, Tout: type> of binop_s<type Ta, type Tb, type Tout> external;
@builtin("std.div")
impl divider_i<Ta: type, Tb: type, Tout: type> of binop_s<type Ta, type Tb, type Tout> external;

// ---------------------------------------------------------------------
// Comparators: two streams in, boolean stream out
// ---------------------------------------------------------------------
streamlet compare_s<Ta: type, Tb: type> {
    in0 : Ta in,
    in1 : Tb in,
    o : BoolStream out,
}
@builtin("std.cmp_eq")
impl eq_i<Ta: type, Tb: type> of compare_s<type Ta, type Tb> external;
@builtin("std.cmp_ne")
impl ne_i<Ta: type, Tb: type> of compare_s<type Ta, type Tb> external;
@builtin("std.cmp_lt")
impl lt_i<Ta: type, Tb: type> of compare_s<type Ta, type Tb> external;
@builtin("std.cmp_le")
impl le_i<Ta: type, Tb: type> of compare_s<type Ta, type Tb> external;
@builtin("std.cmp_gt")
impl gt_i<Ta: type, Tb: type> of compare_s<type Ta, type Tb> external;
@builtin("std.cmp_ge")
impl ge_i<Ta: type, Tb: type> of compare_s<type Ta, type Tb> external;

// Compare against an elaboration-time constant (strings are
// dictionary-encoded to integers upstream).
streamlet compare_const_s<Tin: type> {
    i : Tin in,
    o : BoolStream out,
}
@builtin("std.eq_const")
impl eq_const_i<Tin: type, v: int> of compare_const_s<type Tin> external;
@builtin("std.ne_const")
impl ne_const_i<Tin: type, v: int> of compare_const_s<type Tin> external;
@builtin("std.lt_const")
impl lt_const_i<Tin: type, v: int> of compare_const_s<type Tin> external;
@builtin("std.le_const")
impl le_const_i<Tin: type, v: int> of compare_const_s<type Tin> external;
@builtin("std.gt_const")
impl gt_const_i<Tin: type, v: int> of compare_const_s<type Tin> external;
@builtin("std.ge_const")
impl ge_const_i<Tin: type, v: int> of compare_const_s<type Tin> external;

// ---------------------------------------------------------------------
// N-ary boolean logic
// ---------------------------------------------------------------------
streamlet logic_n_s<n: int> {
    i : BoolStream in [n],
    o : BoolStream out,
}
@builtin("std.and_n")
impl and_n_i<n: int> of logic_n_s<n> external;
@builtin("std.or_n")
impl or_n_i<n: int> of logic_n_s<n> external;

streamlet not_s {
    i : BoolStream in,
    o : BoolStream out,
}
@builtin("std.not")
impl not_i of not_s external;

// ---------------------------------------------------------------------
// Stream manipulation
// ---------------------------------------------------------------------
// Remove packets whose `keep` flag is 0 (the `where` clause).
streamlet filter_s<T: type> {
    i : T in,
    keep : BoolStream in,
    o : T out,
}
@builtin("std.filter")
impl filter_i<T: type> of filter_s<type T> external;

// Reductions over the innermost sequence dimension.
streamlet reduce_s<Tin: type, Tout: type> {
    i : Tin in,
    o : Tout out,
}
@builtin("std.sum")
impl sum_i<Tin: type, Tout: type> of reduce_s<type Tin, type Tout> external;
@builtin("std.count")
impl count_i<Tin: type, Tout: type> of reduce_s<type Tin, type Tout> external;
@builtin("std.min")
impl min_i<Tin: type, Tout: type> of reduce_s<type Tin, type Tout> external;
@builtin("std.max")
impl max_i<Tin: type, Tout: type> of reduce_s<type Tin, type Tout> external;

// Round-robin packet distribution and collection (the parallelize
// pattern of paper section IV-B).
streamlet demux_s<T: type, n: int> {
    i : T in,
    o : T out [n],
}
@builtin("std.demux")
impl demux_i<T: type, n: int> of demux_s<type T, n> external;

streamlet mux_s<T: type, n: int> {
    i : T in [n],
    o : T out,
}
@builtin("std.mux")
impl mux_i<T: type, n: int> of mux_s<type T, n> external;

// Transforming logical types (the third stdlib category of paper
// section IV-C, listed there as future work): split a two-field Group
// stream into its field streams, or combine two streams into a Group.
streamlet group_split2_s<Tin: type, Ta: type, Tb: type> {
    i : Tin in,
    a : Ta out,
    b : Tb out,
}
@builtin("std.group_split2")
impl group_split2_i<Tin: type, Ta: type, Tb: type> of group_split2_s<type Tin, type Ta, type Tb> external;

streamlet group_combine2_s<Ta: type, Tb: type, Tout: type> {
    a : Ta in,
    b : Tb in,
    o : Tout out,
}
@builtin("std.group_combine2")
impl group_combine2_i<Ta: type, Tb: type, Tout: type> of group_combine2_s<type Ta, type Tb, type Tout> external;

// Configurable constant generator (paper section IV-B).
streamlet const_source_s<T: type> {
    o : T out,
}
@builtin("std.const")
impl const_source_i<T: type, v: int> of const_source_s<type T> external;
// Finite variant: a constant column of n rows, closing the sequence
// on the final row (aligns with Fletcher column streams).
@builtin("std.const")
impl const_vec_i<T: type, v: int, n: int> of const_source_s<type T> external;
"#;

/// Returns the standard library source text.
pub fn stdlib_source() -> &'static str {
    STDLIB_SOURCE
}

/// Lines of code of the standard library, counted with the paper's
/// rule (non-blank, non-comment), the `LoCs` column of Table IV.
pub fn stdlib_loc() -> usize {
    tydi_vhdl::loc::count_tydi_loc(STDLIB_SOURCE)
}

/// Prepends the standard library to a set of user sources, producing
/// an owned source list ready for [`tydi_lang::compile`].
pub fn with_stdlib(user: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out = Vec::with_capacity(user.len() + 1);
    out.push((STDLIB_FILE_NAME.to_string(), STDLIB_SOURCE.to_string()));
    for (name, text) in user {
        out.push((name.to_string(), text.to_string()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_lang::{compile, CompileOptions};

    #[test]
    fn stdlib_compiles_stand_alone() {
        // The library is almost pure templates: compiling it alone
        // elaborates only the single concrete component (`not_i`).
        let out = compile(
            &[(STDLIB_FILE_NAME, STDLIB_SOURCE)],
            &CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(out.project.implementations().len(), 1);
        assert!(out.project.implementation("not_i").is_some());
        assert_eq!(out.project.streamlets().len(), 1);
    }

    #[test]
    fn with_stdlib_prepends() {
        let sources = with_stdlib(&[("a.td", "package a;")]);
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[0].0, STDLIB_FILE_NAME);
        assert_eq!(sources[1].0, "a.td");
    }
}
