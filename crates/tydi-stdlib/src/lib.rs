//! # tydi-stdlib
//!
//! The Tydi-lang standard library (paper §IV-C): a *pure-template*
//! library of frequently used streaming components, together with the
//! hard-coded RTL generation processes for each builtin.
//!
//! The library covers the paper's three categories:
//!
//! 1. **packet plumbing** — duplicator, voider, passthrough (the
//!    components sugaring inserts automatically);
//! 2. **shared-behaviour data operators** — arithmetic, comparison,
//!    n-ary logic, constant sources, reductions; an `adder_i<T>` works
//!    for any logical type whose bit pattern is an unsigned number,
//!    which is exactly the "adder for integer and decimal" sharing the
//!    paper motivates;
//! 3. **stream manipulation** — filter, demux, mux.
//!
//! String constants are dictionary-encoded to integers before they
//! reach hardware (as Arrow-style columnar systems do), so constant
//! comparators take `int` template arguments.
//!
//! Every external implementation in the library carries a
//! `@builtin("std.*")` attribute binding it to a generator registered
//! by [`register_builtins`]; the same keys are given behavioural
//! models by the simulator crate.

#![warn(missing_docs)]

pub mod builtins;
pub mod builtins_sv;
pub mod source;

pub use builtins::register_builtins;
pub use builtins_sv::register_builtins_sv;
pub use source::{stdlib_loc, stdlib_source, with_stdlib, STDLIB_FILE_NAME};

/// Builds a [`tydi_vhdl::BuiltinRegistry`] preloaded with the core
/// handshake builtins *and* every standard-library generator, for
/// every backend (VHDL and SystemVerilog bodies alike).
pub fn full_registry() -> tydi_vhdl::BuiltinRegistry {
    let _span = tydi_obs::trace::span("tydi-stdlib", "full_registry");
    let registry = tydi_vhdl::BuiltinRegistry::with_core();
    register_builtins(&registry);
    register_builtins_sv(&registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_lang::{compile, CompileOptions};

    #[test]
    fn stdlib_parses_and_elaborates_with_user_code() {
        let user = r#"
package app;
use std;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance p(passthrough_i<type Byte>),
    i => p.i,
    p.o => o,
}
"#;
        let sources = with_stdlib(&[("app.td", user)]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let out = compile(&refs, &CompileOptions::default()).unwrap();
        assert!(out
            .project
            .implementation("passthrough_i<Stream(Bit(8))>")
            .is_some());
    }

    #[test]
    fn full_registry_contains_all_keys() {
        let registry = full_registry();
        for key in [
            "std.duplicator",
            "std.voider",
            "std.passthrough",
            "std.add",
            "std.sub",
            "std.mul",
            "std.div",
            "std.cmp_eq",
            "std.cmp_ne",
            "std.cmp_lt",
            "std.cmp_le",
            "std.cmp_gt",
            "std.cmp_ge",
            "std.eq_const",
            "std.ne_const",
            "std.lt_const",
            "std.le_const",
            "std.gt_const",
            "std.ge_const",
            "std.and_n",
            "std.or_n",
            "std.not",
            "std.filter",
            "std.sum",
            "std.count",
            "std.min",
            "std.max",
            "std.demux",
            "std.mux",
            "std.const",
            "std.group_split2",
            "std.group_combine2",
        ] {
            assert!(registry.contains(key), "missing builtin {key}");
        }
    }

    #[test]
    fn stdlib_loc_is_reported() {
        // The paper counts the standard library at 151 LoC; ours is in
        // the same order of magnitude.
        let loc = stdlib_loc();
        assert!(loc > 50 && loc < 400, "stdlib LoC = {loc}");
    }
}
