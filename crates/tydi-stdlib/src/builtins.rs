//! Hard-coded RTL generation processes for the standard library
//! (paper §IV-C: "this generation process must be manually defined").
//!
//! Each generator inspects the concrete streamlet produced by template
//! instantiation — port count, data widths, `last` widths — and emits
//! a behavioral VHDL architecture body. Template arguments arrive as
//! `param_*` attributes on the external implementation.

use std::fmt::Write as _;
use tydi_ir::Port;
use tydi_spec::lower;
use tydi_vhdl::builtin::{ArchBody, BuiltinCtx};
use tydi_vhdl::BuiltinRegistry;

/// Registers every standard-library generator on `registry`.
pub fn register_builtins(registry: &BuiltinRegistry) {
    registry.register("std.add", gen_binop("+"));
    registry.register("std.sub", gen_binop("-"));
    registry.register("std.mul", gen_mul);
    registry.register("std.div", gen_binop("/"));
    registry.register("std.cmp_eq", gen_compare("="));
    registry.register("std.cmp_ne", gen_compare("/="));
    registry.register("std.cmp_lt", gen_compare("<"));
    registry.register("std.cmp_le", gen_compare("<="));
    registry.register("std.cmp_gt", gen_compare(">"));
    registry.register("std.cmp_ge", gen_compare(">="));
    registry.register("std.eq_const", gen_compare_const("="));
    registry.register("std.ne_const", gen_compare_const("/="));
    registry.register("std.lt_const", gen_compare_const("<"));
    registry.register("std.le_const", gen_compare_const("<="));
    registry.register("std.gt_const", gen_compare_const(">"));
    registry.register("std.ge_const", gen_compare_const(">="));
    registry.register("std.and_n", gen_logic_n("and"));
    registry.register("std.or_n", gen_logic_n("or"));
    registry.register("std.not", gen_not);
    registry.register("std.filter", gen_filter);
    registry.register("std.sum", gen_reduce(ReduceKind::Sum));
    registry.register("std.count", gen_reduce(ReduceKind::Count));
    registry.register("std.min", gen_reduce(ReduceKind::Min));
    registry.register("std.max", gen_reduce(ReduceKind::Max));
    registry.register("std.demux", gen_demux);
    registry.register("std.mux", gen_mux);
    registry.register("std.const", gen_const);
    registry.register("std.group_split2", gen_group_split2);
    registry.register("std.group_combine2", gen_group_combine2);
}

// ---- shared helpers -----------------------------------------------------

/// The data width of a port's root physical stream.
pub(crate) fn data_width(port: &Port) -> Result<u32, String> {
    let phys = lower(&port.ty).map_err(|e| e.to_string())?;
    Ok(phys[0].signals().data_bits)
}

/// The `last` width (dimension) of a port's root physical stream.
pub(crate) fn last_width(port: &Port) -> Result<u32, String> {
    let phys = lower(&port.ty).map_err(|e| e.to_string())?;
    Ok(phys[0].signals().last_bits)
}

pub(crate) fn port<'a>(ctx: &'a BuiltinCtx<'_>, name: &str) -> Result<&'a Port, String> {
    ctx.streamlet
        .port(name)
        .ok_or_else(|| format!("missing port `{name}`"))
}

/// Renders a data signal as a VHDL `unsigned`, handling the
/// single-bit `std_logic` case.
fn as_unsigned(signal: &str, width: u32) -> String {
    if width == 1 {
        format!("unsigned'(\"\" & {signal})")
    } else {
        format!("unsigned({signal})")
    }
}

/// Renders an assignment of an unsigned expression to a data signal.
fn assign_data(signal: &str, width: u32, expr: &str) -> String {
    if width == 1 {
        format!("  {signal} <= {expr}(0);\n")
    } else {
        format!("  {signal} <= std_logic_vector({expr});\n")
    }
}

/// Renders an integer constant at a given width.
fn const_literal(value: i64, width: u32) -> String {
    if width == 1 {
        format!("'{}'", value & 1)
    } else {
        format!("std_logic_vector(to_signed({value}, {width}))")
    }
}

pub(crate) fn int_param(ctx: &BuiltinCtx<'_>, name: &str) -> Result<i64, String> {
    ctx.param(name)
        .ok_or_else(|| format!("missing template parameter `{name}`"))?
        .parse::<i64>()
        .map_err(|_| format!("template parameter `{name}` is not an integer"))
}

/// Two-input handshake join feeding one output: shared by arithmetic
/// and comparison generators. `op_line` produces the data statement.
fn join2(
    ctx: &BuiltinCtx<'_>,
    op_line: impl FnOnce(&Port, &Port, &Port) -> Result<String, String>,
) -> Result<ArchBody, String> {
    let in0 = port(ctx, "in0")?;
    let in1 = port(ctx, "in1")?;
    let out = port(ctx, "o")?;
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  o_valid <= in0_valid and in1_valid;");
    let _ = writeln!(stmts, "  in0_ready <= in0_valid and in1_valid and o_ready;");
    let _ = writeln!(stmts, "  in1_ready <= in0_valid and in1_valid and o_ready;");
    stmts.push_str(&op_line(in0, in1, out)?);
    // Forward `last` from the first operand when the output carries
    // dimensions (operands of a join must be dimension-aligned).
    if last_width(out)? > 0 && last_width(in0)? == last_width(out)? {
        let _ = writeln!(stmts, "  o_last <= in0_last;");
    }
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

// ---- arithmetic -----------------------------------------------------------

fn gen_binop(op: &'static str) -> impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> {
    move |ctx| {
        join2(ctx, |in0, in1, out| {
            let w0 = data_width(in0)?;
            let w1 = data_width(in1)?;
            let wo = data_width(out)?;
            let expr = format!(
                "resize({} {op} {}, {wo})",
                as_unsigned("in0_data", w0),
                as_unsigned("in1_data", w1)
            );
            Ok(assign_data("o_data", wo, &expr))
        })
    }
}

/// Multiplication needs explicit resizing of the full product.
fn gen_mul(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    join2(ctx, |in0, in1, out| {
        let w0 = data_width(in0)?;
        let w1 = data_width(in1)?;
        let wo = data_width(out)?;
        let expr = format!(
            "resize({} * {}, {wo})",
            as_unsigned("in0_data", w0),
            as_unsigned("in1_data", w1)
        );
        Ok(assign_data("o_data", wo, &expr))
    })
}

// ---- comparison -----------------------------------------------------------

fn gen_compare(op: &'static str) -> impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> {
    move |ctx| {
        join2(ctx, |in0, in1, _out| {
            let w0 = data_width(in0)?;
            let w1 = data_width(in1)?;
            Ok(format!(
                "  o_data <= '1' when {} {op} {} else '0';\n",
                as_unsigned("in0_data", w0),
                as_unsigned("in1_data", w1)
            ))
        })
    }
}

fn gen_compare_const(op: &'static str) -> impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> {
    move |ctx| {
        let input = port(ctx, "i")?;
        let wi = data_width(input)?;
        let v = int_param(ctx, "v")?;
        let mut stmts = String::new();
        let _ = writeln!(stmts, "  o_valid <= i_valid;");
        let _ = writeln!(stmts, "  i_ready <= o_ready;");
        let _ = writeln!(
            stmts,
            "  o_data <= '1' when signed({}) {op} to_signed({v}, {wi}) else '0';",
            if wi == 1 {
                "'0' & i_data".to_string()
            } else {
                "i_data".to_string()
            }
        );
        if last_width(input)? > 0 && last_width(port(ctx, "o")?)? == last_width(input)? {
            let _ = writeln!(stmts, "  o_last <= i_last;");
        }
        Ok(ArchBody {
            decls: String::new(),
            stmts,
        })
    }
}

// ---- n-ary logic ----------------------------------------------------------

fn gen_logic_n(op: &'static str) -> impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> {
    move |ctx| {
        let inputs = ctx.inputs();
        if inputs.is_empty() {
            return Err(format!("{op}-gate needs at least one input"));
        }
        let mut stmts = String::new();
        let valids: Vec<String> = inputs.iter().map(|p| format!("{}_valid", p.name)).collect();
        let datas: Vec<String> = inputs.iter().map(|p| format!("{}_data", p.name)).collect();
        let all_valid = valids.join(" and ");
        let _ = writeln!(stmts, "  o_valid <= {all_valid};");
        let _ = writeln!(stmts, "  o_data <= {};", datas.join(&format!(" {op} ")));
        for p in &inputs {
            let _ = writeln!(stmts, "  {}_ready <= {all_valid} and o_ready;", p.name);
        }
        Ok(ArchBody {
            decls: String::new(),
            stmts,
        })
    }
}

fn gen_not(_ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  o_valid <= i_valid;");
    let _ = writeln!(stmts, "  i_ready <= o_ready;");
    let _ = writeln!(stmts, "  o_data <= not i_data;");
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

// ---- stream manipulation ---------------------------------------------------

fn gen_filter(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let input = port(ctx, "i")?;
    let out = port(ctx, "o")?;
    let mut decls = String::new();
    let mut stmts = String::new();
    let _ = writeln!(decls, "  signal both : std_logic;");
    let _ = writeln!(decls, "  signal forward : std_logic;");
    let _ = writeln!(decls, "  signal consumed : std_logic;");
    let _ = writeln!(stmts, "  both <= i_valid and keep_valid;");
    let _ = writeln!(stmts, "  forward <= both and keep_data;");
    let _ = writeln!(stmts, "  o_valid <= forward;");
    let _ = writeln!(stmts, "  o_data <= i_data;");
    if last_width(input)? > 0 && last_width(out)? == last_width(input)? {
        let _ = writeln!(stmts, "  o_last <= i_last;");
    }
    let _ = writeln!(
        stmts,
        "  consumed <= (forward and o_ready) or (both and not keep_data);"
    );
    let _ = writeln!(stmts, "  i_ready <= consumed;");
    let _ = writeln!(stmts, "  keep_ready <= consumed;");
    Ok(ArchBody { decls, stmts })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceKind {
    Sum,
    Count,
    Min,
    Max,
}

/// A registered reduction over the innermost sequence dimension: one
/// accumulator plus a pending-result register, closing on `last`.
fn gen_reduce(kind: ReduceKind) -> impl Fn(&BuiltinCtx<'_>) -> Result<ArchBody, String> {
    move |ctx| {
        let input = port(ctx, "i")?;
        let out = port(ctx, "o")?;
        let wi = data_width(input)?;
        let wo = data_width(out)?;
        let in_last = last_width(input)?;
        if in_last == 0 {
            return Err("reduction input must have dimension >= 1".into());
        }
        let inner_last = if in_last == 1 {
            "i_last".to_string()
        } else {
            "i_last(0)".to_string()
        };
        let element = format!("resize({}, {wo})", as_unsigned("i_data", wi));
        let update = match kind {
            ReduceKind::Sum => format!("acc + {element}"),
            ReduceKind::Count => "acc + 1".to_string(),
            ReduceKind::Min => format!("minimum(acc, {element})"),
            ReduceKind::Max => format!("maximum(acc, {element})"),
        };
        let init = match kind {
            ReduceKind::Sum | ReduceKind::Count | ReduceKind::Max => "(others => '0')".to_string(),
            ReduceKind::Min => "(others => '1')".to_string(),
        };
        let mut decls = String::new();
        let _ = writeln!(decls, "  signal acc : unsigned({} downto 0);", wo - 1);
        let _ = writeln!(decls, "  signal result_valid : std_logic;");
        let _ = writeln!(
            decls,
            "  signal result_data : std_logic_vector({} downto 0);",
            wo - 1
        );
        let mut stmts = String::new();
        let _ = writeln!(stmts, "  o_valid <= result_valid;");
        let _ = writeln!(stmts, "  o_data <= result_data;");
        let _ = writeln!(stmts, "  i_ready <= (not result_valid) or o_ready;");
        let _ = writeln!(stmts, "  reduce_proc : process(clk)");
        let _ = writeln!(stmts, "  begin");
        let _ = writeln!(stmts, "    if rising_edge(clk) then");
        let _ = writeln!(stmts, "      if rst = '1' then");
        let _ = writeln!(stmts, "        acc <= {init};");
        let _ = writeln!(stmts, "        result_valid <= '0';");
        let _ = writeln!(stmts, "      else");
        let _ = writeln!(
            stmts,
            "        if result_valid = '1' and o_ready = '1' then"
        );
        let _ = writeln!(stmts, "          result_valid <= '0';");
        let _ = writeln!(stmts, "        end if;");
        let _ = writeln!(
            stmts,
            "        if i_valid = '1' and ((not result_valid) = '1' or o_ready = '1') then"
        );
        let _ = writeln!(stmts, "          if {inner_last} = '1' then");
        let _ = writeln!(
            stmts,
            "            result_data <= std_logic_vector({update});"
        );
        let _ = writeln!(stmts, "            result_valid <= '1';");
        let _ = writeln!(stmts, "            acc <= {init};");
        let _ = writeln!(stmts, "          else");
        let _ = writeln!(stmts, "            acc <= {update};");
        let _ = writeln!(stmts, "          end if;");
        let _ = writeln!(stmts, "        end if;");
        let _ = writeln!(stmts, "      end if;");
        let _ = writeln!(stmts, "    end if;");
        let _ = writeln!(stmts, "  end process reduce_proc;");
        Ok(ArchBody { decls, stmts })
    }
}

fn gen_demux(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let outputs = ctx.outputs();
    let n = outputs.len();
    if n == 0 {
        return Err("demux needs at least one output".into());
    }
    let sel_bits = (usize::BITS - (n - 1).leading_zeros()).max(1);
    let mut decls = String::new();
    let _ = writeln!(decls, "  signal sel : unsigned({} downto 0);", sel_bits - 1);
    let _ = writeln!(decls, "  signal fire : std_logic;");
    let mut stmts = String::new();
    for (k, output) in outputs.iter().enumerate() {
        let name = &output.name;
        let _ = writeln!(
            stmts,
            "  {name}_valid <= i_valid when to_integer(sel) = {k} else '0';"
        );
        let _ = writeln!(stmts, "  {name}_data <= i_data;");
        if last_width(output).unwrap_or(0) > 0 {
            let _ = writeln!(stmts, "  {name}_last <= i_last;");
        }
    }
    let readies: Vec<String> = outputs
        .iter()
        .enumerate()
        .map(|(k, o)| format!("{}_ready when to_integer(sel) = {k}", o.name))
        .collect();
    let _ = writeln!(stmts, "  i_ready <= {} else '0';", readies.join(" else "));
    let _ = writeln!(stmts, "  fire <= i_valid and i_ready;");
    let _ = writeln!(stmts, "  advance_proc : process(clk)");
    let _ = writeln!(stmts, "  begin");
    let _ = writeln!(stmts, "    if rising_edge(clk) then");
    let _ = writeln!(stmts, "      if rst = '1' then");
    let _ = writeln!(stmts, "        sel <= (others => '0');");
    let _ = writeln!(stmts, "      elsif fire = '1' then");
    let _ = writeln!(stmts, "        if to_integer(sel) = {} then", n - 1);
    let _ = writeln!(stmts, "          sel <= (others => '0');");
    let _ = writeln!(stmts, "        else");
    let _ = writeln!(stmts, "          sel <= sel + 1;");
    let _ = writeln!(stmts, "        end if;");
    let _ = writeln!(stmts, "      end if;");
    let _ = writeln!(stmts, "    end if;");
    let _ = writeln!(stmts, "  end process advance_proc;");
    Ok(ArchBody { decls, stmts })
}

fn gen_mux(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let inputs = ctx.inputs();
    let n = inputs.len();
    if n == 0 {
        return Err("mux needs at least one input".into());
    }
    let sel_bits = (usize::BITS - (n - 1).leading_zeros()).max(1);
    let mut decls = String::new();
    let _ = writeln!(decls, "  signal sel : unsigned({} downto 0);", sel_bits - 1);
    let _ = writeln!(decls, "  signal fire : std_logic;");
    let mut stmts = String::new();
    let valid_cases: Vec<String> = inputs
        .iter()
        .enumerate()
        .map(|(k, p)| format!("{}_valid when to_integer(sel) = {k}", p.name))
        .collect();
    let data_cases: Vec<String> = inputs
        .iter()
        .enumerate()
        .map(|(k, p)| format!("{}_data when to_integer(sel) = {k}", p.name))
        .collect();
    let _ = writeln!(
        stmts,
        "  o_valid <= {} else '0';",
        valid_cases.join(" else ")
    );
    let _ = writeln!(
        stmts,
        "  o_data <= {} else {}_data;",
        data_cases.join(" else "),
        inputs[0].name
    );
    for (k, p) in inputs.iter().enumerate() {
        let _ = writeln!(
            stmts,
            "  {}_ready <= o_ready when to_integer(sel) = {k} else '0';",
            p.name
        );
    }
    let _ = writeln!(stmts, "  fire <= o_valid and o_ready;");
    let _ = writeln!(stmts, "  advance_proc : process(clk)");
    let _ = writeln!(stmts, "  begin");
    let _ = writeln!(stmts, "    if rising_edge(clk) then");
    let _ = writeln!(stmts, "      if rst = '1' then");
    let _ = writeln!(stmts, "        sel <= (others => '0');");
    let _ = writeln!(stmts, "      elsif fire = '1' then");
    let _ = writeln!(stmts, "        if to_integer(sel) = {} then", n - 1);
    let _ = writeln!(stmts, "          sel <= (others => '0');");
    let _ = writeln!(stmts, "        else");
    let _ = writeln!(stmts, "          sel <= sel + 1;");
    let _ = writeln!(stmts, "        end if;");
    let _ = writeln!(stmts, "      end if;");
    let _ = writeln!(stmts, "    end if;");
    let _ = writeln!(stmts, "  end process advance_proc;");
    Ok(ArchBody { decls, stmts })
}

fn gen_const(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let out = port(ctx, "o")?;
    let wo = data_width(out)?;
    let v = int_param(ctx, "v")?;
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  o_valid <= '1';");
    let _ = writeln!(stmts, "  o_data <= {};", const_literal(v, wo));
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

/// The widths of the first two Group fields of a port's stream
/// element.
pub(crate) fn group2_field_widths(p: &Port) -> Result<(u32, u32), String> {
    let tydi_spec::LogicalType::Stream { element, .. } = &*p.ty else {
        return Err(format!("port `{}` is not a stream", p.name));
    };
    let fields = element.fields();
    if fields.len() < 2 {
        return Err(format!(
            "port `{}` must carry a Group with at least two fields",
            p.name
        ));
    }
    Ok((fields[0].ty.bit_width(), fields[1].ty.bit_width()))
}

/// `std.group_split2`: slice a two-field Group element into its field
/// streams; acknowledge the input when both sinks accepted (the
/// duplicator handshake pattern).
fn gen_group_split2(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let input = port(ctx, "i")?;
    let (wa, wb) = group2_field_widths(input)?;
    let out_a = port(ctx, "a")?;
    let out_b = port(ctx, "b")?;
    if data_width(out_a)? != wa || data_width(out_b)? != wb {
        return Err("output widths must match the Group field widths".into());
    }
    let mut decls = String::new();
    let mut stmts = String::new();
    let _ = writeln!(decls, "  signal both_ready : std_logic;");
    let _ = writeln!(stmts, "  both_ready <= a_ready and b_ready;");
    let _ = writeln!(stmts, "  i_ready <= both_ready;");
    let _ = writeln!(stmts, "  a_valid <= i_valid and both_ready;");
    let _ = writeln!(stmts, "  b_valid <= i_valid and both_ready;");
    let _ = writeln!(stmts, "  a_data <= i_data({} downto 0);", wa - 1);
    let _ = writeln!(stmts, "  b_data <= i_data({} downto {wa});", wa + wb - 1);
    if last_width(input)? > 0 {
        if last_width(out_a)? == last_width(input)? {
            let _ = writeln!(stmts, "  a_last <= i_last;");
        }
        if last_width(out_b)? == last_width(input)? {
            let _ = writeln!(stmts, "  b_last <= i_last;");
        }
    }
    Ok(ArchBody { decls, stmts })
}

/// `std.group_combine2`: concatenate two element streams into a Group
/// element (field `a` occupies the low bits, matching Group packing).
fn gen_group_combine2(ctx: &BuiltinCtx<'_>) -> Result<ArchBody, String> {
    let in_a = port(ctx, "a")?;
    let in_b = port(ctx, "b")?;
    let out = port(ctx, "o")?;
    let (wa, wb) = group2_field_widths(out)?;
    if data_width(in_a)? != wa || data_width(in_b)? != wb {
        return Err("input widths must match the Group field widths".into());
    }
    let mut stmts = String::new();
    let _ = writeln!(stmts, "  o_valid <= a_valid and b_valid;");
    let _ = writeln!(stmts, "  a_ready <= a_valid and b_valid and o_ready;");
    let _ = writeln!(stmts, "  b_ready <= a_valid and b_valid and o_ready;");
    let _ = writeln!(stmts, "  o_data <= b_data & a_data;");
    if last_width(out)? > 0 && last_width(in_a)? == last_width(out)? {
        let _ = writeln!(stmts, "  o_last <= a_last;");
    }
    Ok(ArchBody {
        decls: String::new(),
        stmts,
    })
}

#[cfg(test)]
mod tests {

    use crate::source::{with_stdlib, STDLIB_FILE_NAME};
    use tydi_lang::{compile, CompileOptions};
    use tydi_vhdl::{check::check_vhdl, generate_project, VhdlOptions};

    /// Compiles user source with the stdlib and generates VHDL.
    fn build(user: &str) -> String {
        let sources = with_stdlib(&[("app.td", user)]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let out = compile(&refs, &CompileOptions::default()).unwrap_or_else(|e| {
            panic!("compile failed:\n{e}");
        });
        let registry = crate::full_registry();
        let files = generate_project(&out.project, &registry, &VhdlOptions::default())
            .expect("vhdl generation");
        let mut all = String::new();
        for f in files {
            all.push_str(&f.contents);
        }
        all
    }

    #[test]
    fn adder_generates_resized_sum() {
        let vhdl = build(
            r#"
package app;
use std;
type W32 = Stream(Bit(32));
type W33 = Stream(Bit(33));
streamlet top_s { a : W32 in, b : W32 in, s : W33 out, }
impl top_i of top_s {
    instance add(adder_i<type W32, type W32, type W33>),
    a => add.in0,
    b => add.in1,
    add.o => s,
}
"#,
        );
        assert!(vhdl.contains("resize(unsigned(in0_data) + unsigned(in1_data), 33)"));
        assert!(vhdl.contains("o_valid <= in0_valid and in1_valid;"));
        let issues = check_vhdl(&vhdl);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn comparator_and_logic_gates() {
        let vhdl = build(
            r#"
package app;
use std;
type W8 = Stream(Bit(8));
streamlet top_s { a : W8 in, b : W8 in, c : W8 in, d : W8 in, o : BoolStream out, }
impl top_i of top_s {
    instance lt(lt_i<type W8, type W8>),
    instance gt(gt_i<type W8, type W8>),
    instance both(and_n_i<2>),
    a => lt.in0,
    b => lt.in1,
    c => gt.in0,
    d => gt.in1,
    lt.o => both.i[0],
    gt.o => both.i[1],
    both.o => o,
}
"#,
        );
        assert!(vhdl.contains("when unsigned(in0_data) < unsigned(in1_data)"));
        assert!(vhdl.contains("o_data <= i_0_data and i_1_data;"));
        assert!(check_vhdl(&vhdl).is_empty());
    }

    #[test]
    fn const_compare_uses_parameter() {
        let vhdl = build(
            r#"
package app;
use std;
type W16 = Stream(Bit(16));
streamlet top_s { i : W16 in, o : BoolStream out, }
impl top_i of top_s {
    instance cmp(ge_const_i<type W16, 42>),
    i => cmp.i,
    cmp.o => o,
}
"#,
        );
        assert!(vhdl.contains("to_signed(42, 16)"));
        assert!(check_vhdl(&vhdl).is_empty());
    }

    #[test]
    fn reduce_has_accumulator_process() {
        let vhdl = build(
            r#"
package app;
use std;
type Seq32 = Stream(Bit(32), d=1);
type W64 = Stream(Bit(64));
streamlet top_s { i : Seq32 in, o : W64 out, }
impl top_i of top_s {
    instance s(sum_i<type Seq32, type W64>),
    i => s.i,
    s.o => o,
}
"#,
        );
        assert!(vhdl.contains("signal acc : unsigned(63 downto 0);"));
        assert!(vhdl.contains("reduce_proc : process(clk)"));
        assert!(vhdl.contains("if i_last = '1' then"));
        assert!(check_vhdl(&vhdl).is_empty());
    }

    #[test]
    fn reduce_rejects_dimensionless_input() {
        let sources = with_stdlib(&[(
            "app.td",
            r#"
package app;
use std;
type W32 = Stream(Bit(32));
streamlet top_s { i : W32 in, o : W32 out, }
impl top_i of top_s {
    instance s(sum_i<type W32, type W32>),
    i => s.i,
    s.o => o,
}
"#,
        )]);
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let out = compile(&refs, &CompileOptions::default()).unwrap();
        let registry = crate::full_registry();
        let err = generate_project(&out.project, &registry, &VhdlOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn demux_mux_round_robin() {
        let vhdl = build(
            r#"
package app;
use std;
type W8 = Stream(Bit(8));
streamlet top_s { i : W8 in, o : W8 out, }
impl top_i of top_s {
    instance d(demux_i<type W8, 4>),
    instance m(mux_i<type W8, 4>),
    i => d.i,
    for k in (0..4) {
        d.o[k] => m.i[k],
    }
    m.o => o,
}
"#,
        );
        assert!(vhdl.contains("o_0_valid <= i_valid when to_integer(sel) = 0 else '0';"));
        assert!(vhdl.contains("advance_proc : process(clk)"));
        assert!(check_vhdl(&vhdl).is_empty());
    }

    #[test]
    fn filter_consumes_dropped_packets() {
        let vhdl = build(
            r#"
package app;
use std;
type W8 = Stream(Bit(8));
streamlet top_s { i : W8 in, k : BoolStream in, o : W8 out, }
impl top_i of top_s {
    instance f(filter_i<type W8>),
    i => f.i,
    k => f.keep,
    f.o => o,
}
"#,
        );
        assert!(vhdl.contains("forward <= both and keep_data;"));
        assert!(vhdl.contains("consumed <= (forward and o_ready) or (both and not keep_data);"));
        assert!(check_vhdl(&vhdl).is_empty());
    }

    #[test]
    fn const_source_drives_literal() {
        let vhdl = build(
            r#"
package app;
use std;
type W16 = Stream(Bit(16));
streamlet top_s { o : W16 out, }
impl top_i of top_s {
    instance c(const_source_i<type W16, 1234>),
    c.o => o,
}
"#,
        );
        assert!(vhdl.contains("o_data <= std_logic_vector(to_signed(1234, 16));"));
        assert!(vhdl.contains("o_valid <= '1';"));
        assert!(check_vhdl(&vhdl).is_empty());
    }

    #[test]
    fn stdlib_source_is_registered_under_expected_name() {
        assert_eq!(STDLIB_FILE_NAME, "std.td");
    }
}
