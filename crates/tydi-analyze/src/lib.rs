//! Static dataflow analysis for elaborated Tydi designs.
//!
//! `tydi-analyze` answers, *without running the simulator*, the two
//! questions a designer otherwise needs a full simulation campaign
//! for:
//!
//! 1. **How fast can this design go?** Per-stream sustained-throughput
//!    upper bounds (elements per cycle, optionally scaled to Hz by a
//!    [`tydi_spec::clock::PhysicalClock`]) and pipeline-depth lower
//!    bounds, computed by a monotone fixpoint over the flattened
//!    dataflow graph — effectively the min-cut of service rates along
//!    every path.
//! 2. **Where will it wedge or stall?** Structural hazards as ranked
//!    diagnostics: deadlockable dependency cycles (error), fan-in
//!    contention at merge points, statically unmeetable stream-contract
//!    throughputs, and credit starvation at skewed joins (warnings).
//!
//! The analysis reuses the *simulator's own flattener*
//! ([`tydi_sim::graph::flatten`]) with the simulator's channel
//! capacity, so every channel and component in the report carries
//! exactly the name `tydic sim` would print for it — the differential
//! test suite leans on that parity to check every predicted bound
//! against measured throughput (`predicted >= measured`, and within a
//! tolerance factor when the service models are exact) and every
//! simulated deadlock against the static stall cones.

pub mod flow;
pub mod hazards;
pub mod rates;
pub mod report;
pub mod synthesize;
#[cfg(test)]
pub(crate) mod testutil;

pub use flow::{FlowGraph, RateClass, ServiceModel};
pub use rates::{RateSolution, EPSILON};
pub use report::{
    AnalysisReport, ChannelBound, Confidence, Hazard, HazardKind, PortBound, Severity, StallCone,
};
pub use synthesize::{synthesize_faults, SynthesizedFault};

use tydi_ir::{Project, ProjectIndex};
use tydi_spec::clock::PhysicalClock;

/// Options for one analysis run.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// FIFO capacity assumed per channel. Must match the simulator's
    /// (2) for the differential guarantees to hold.
    pub channel_capacity: usize,
    /// When set, throughput bounds are also reported in Hz.
    pub clock: Option<PhysicalClock>,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            // The simulator's default channel depth.
            channel_capacity: 2,
            clock: None,
        }
    }
}

/// Errors producing an analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// Flattening the design failed (unknown top, inconsistent IR, or
    /// a behaviour-less external).
    Graph(tydi_sim::graph::GraphError),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Graph(e) => write!(f, "cannot analyze: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<tydi_sim::graph::GraphError> for AnalyzeError {
    fn from(e: tydi_sim::graph::GraphError) -> Self {
        AnalyzeError::Graph(e)
    }
}

/// Analyzes `top_impl` of an elaborated project.
///
/// The [`ProjectIndex`] provides O(1) port lookups for the
/// stream-contract (rate-mismatch) checks; build one with
/// [`ProjectIndex::build`] or reuse the one the compilation pipeline
/// already made.
pub fn analyze(
    project: &Project,
    index: &ProjectIndex,
    top_impl: &str,
    options: &AnalyzeOptions,
) -> Result<AnalysisReport, AnalyzeError> {
    let _span = tydi_obs::trace::span_named("tydi-analyze", || format!("analyze:{top_impl}"));
    let sim_graph = tydi_sim::graph::flatten(project, top_impl, options.channel_capacity)?;
    let graph = FlowGraph::from_sim_graph(project, top_impl, &sim_graph);
    let solution = rates::solve(&graph);
    let hazard_list = hazards::detect(&graph, &solution, project, index);
    let cones = hazards::stall_cones(&graph);

    let confidence = if graph.components.iter().all(|c| c.model.exact) {
        Confidence::Exact
    } else {
        Confidence::UpperBound
    };

    let channels = graph
        .channels
        .iter()
        .enumerate()
        .map(|(i, ch)| ChannelBound {
            name: ch.name.clone(),
            capacity: ch.capacity,
            elements_per_cycle: solution.channel_rate[i],
            min_latency: solution.channel_latency[i],
        })
        .collect();

    let top_sid = index.streamlet_of_impl_name(project, top_impl);
    let outputs = graph
        .boundary_outputs
        .iter()
        .map(|&(ref port, ch)| {
            let rate = solution.channel_rate[ch];
            let (declared_peak, declared_min) = top_sid
                .and_then(|sid| index.port(project, sid, port))
                .and_then(|p| tydi_spec::lower_cached_arc(&p.ty).ok())
                .and_then(|streams| {
                    streams.iter().find(|s| s.path.is_empty()).map(|root| {
                        (
                            Some(root.peak_elements_per_cycle()),
                            Some(root.min_elements_per_cycle()),
                        )
                    })
                })
                .unwrap_or((None, None));
            PortBound {
                port: port.clone(),
                channel: graph.channels[ch].name.clone(),
                elements_per_cycle: rate,
                throughput_hz: options.clock.as_ref().map(|c| rate * c.frequency_hz),
                min_latency_cycles: solution.channel_latency[ch],
                declared_peak,
                declared_min,
            }
        })
        .collect();

    Ok(AnalysisReport {
        top: top_impl.to_string(),
        components: graph.components.len(),
        channels,
        outputs,
        hazards: hazard_list,
        stall_cones: cones,
        confidence,
        converged: solution.converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_ir::{
        Connection, EndpointRef, Implementation, Instance, Port, PortDirection, Streamlet,
    };
    use tydi_spec::{ClockDomain, LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    /// in -> add(latency 4) <- in2, out: a two-input join design.
    fn join_project() -> Project {
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("add_s")
                .with_port(Port::new("a", PortDirection::In, stream8()))
                .with_port(Port::new("b", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        let mut add = Implementation::external("add_i", "add_s").with_builtin("std.add");
        add.attributes.insert("param_latency".into(), "4".into());
        p.add_implementation(add).unwrap();
        p.add_streamlet(
            Streamlet::new("top_s")
                .with_port(Port::new("x", PortDirection::In, stream8()))
                .with_port(Port::new("y", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        let mut top = Implementation::normal("top_i", "top_s");
        top.add_instance(Instance::new("adder", "add_i"));
        top.add_connection(Connection::new(
            EndpointRef::own("x"),
            EndpointRef::instance("adder", "a"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::own("y"),
            EndpointRef::instance("adder", "b"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("adder", "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        p
    }

    #[test]
    fn analyze_bounds_join_by_its_latency() {
        let p = join_project();
        p.validate().unwrap();
        let index = ProjectIndex::build(&p);
        let report = analyze(&p, &index, "top_i", &AnalyzeOptions::default()).unwrap();
        assert_eq!(report.components, 1);
        let o = report.output("o").unwrap();
        assert!((o.elements_per_cycle - 0.25).abs() < EPSILON);
        assert_eq!(o.min_latency_cycles, Some(3));
        assert_eq!(report.confidence, Confidence::Exact);
        assert!(report.converged);
        assert!(report.max_severity().is_none());
        // Channel names match the simulator's flattener.
        assert!(report.channels.iter().any(|c| c.name == "boundary.x"));
        assert!(report.channels.iter().any(|c| c.name == "boundary.o"));
        // The stall cone of `o` covers every channel of this design.
        assert_eq!(report.stall_cone("o").unwrap().channels.len(), 3);
    }

    #[test]
    fn clock_scales_bounds_to_hz() {
        let p = join_project();
        let index = ProjectIndex::build(&p);
        let options = AnalyzeOptions {
            clock: Some(PhysicalClock::new(
                ClockDomain::default_domain(),
                100_000_000.0,
            )),
            ..AnalyzeOptions::default()
        };
        let report = analyze(&p, &index, "top_i", &options).unwrap();
        let o = report.output("o").unwrap();
        assert!((o.throughput_hz.unwrap() - 25_000_000.0).abs() < 1.0);
    }

    #[test]
    fn unknown_top_is_an_error() {
        let p = join_project();
        let index = ProjectIndex::build(&p);
        let err = analyze(&p, &index, "ghost", &AnalyzeOptions::default()).unwrap_err();
        assert!(matches!(err, AnalyzeError::Graph(_)));
        assert!(err.to_string().contains("ghost"));
    }
}
