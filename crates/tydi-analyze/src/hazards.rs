//! Structural hazard detection over a solved [`FlowGraph`].
//!
//! Four hazard families, in decreasing severity:
//!
//! * **Deadlockable cycles** (error) — a strongly connected component
//!   of the dataflow graph. With bounded FIFOs and handshake
//!   semantics any dependency cycle can fill up and wedge: the classic
//!   structural deadlock of streaming dataflow.
//! * **Fan-in contention** (warning) — a merge point whose combined
//!   input arrival rate exceeds its service rate; the excess
//!   backpressures the producers.
//! * **Rate mismatch** (warning) — a port whose *declared* minimum
//!   throughput (the Tydi stream contract, `StreamParams::throughput`)
//!   exceeds the statically predicted upper bound of the channel that
//!   feeds it: the contract is structurally unmeetable.
//! * **Credit starvation** (warning) — a join whose input arms have a
//!   first-arrival skew at least as large as the FIFO depth of the
//!   early arm: the early FIFO fills before the late arm delivers,
//!   stalling the shared upstream and (in the worst case) live-locking
//!   the pipeline start-up.
//!
//! Separately, [`stall_cones`] computes per boundary output the set of
//! channels that can transitively block it (reverse reachability).
//! Every channel a *simulated* deadlock reports as blocked must fall
//! inside the cone of some blocked output — the differential suite
//! asserts exactly that.

use crate::flow::{FlowComponent, FlowGraph, RateClass};
use crate::rates::{RateSolution, EPSILON};
use crate::report::{Hazard, HazardKind, Severity, StallCone};
use tydi_ir::{Project, ProjectIndex};

/// Runs every hazard detector.
pub fn detect(
    graph: &FlowGraph,
    solution: &RateSolution,
    project: &Project,
    index: &ProjectIndex,
) -> Vec<Hazard> {
    let mut hazards = Vec::new();
    hazards.extend(deadlockable_cycles(graph));
    hazards.extend(fan_in_contention(graph, solution));
    hazards.extend(rate_mismatches(graph, solution, project, index));
    hazards.extend(credit_starvation(graph, solution));
    // Errors first, then warnings, then infos; stable within a class.
    hazards.sort_by_key(|h| std::cmp::Reverse(h.severity));
    hazards
}

/// The declaring implementation of a hazard-site component, when the
/// site is real user code (synthetic duplicators/voiders have no
/// declaration to point at).
fn declaring_impl(comp: &FlowComponent) -> Option<String> {
    (!comp.synthetic && !comp.impl_name.is_empty()).then(|| comp.impl_name.clone())
}

/// Strongly connected components of the component graph (edges follow
/// channels source -> sink), iterative Tarjan. Returns one hazard per
/// non-trivial SCC, naming the channels inside the cycle.
fn deadlockable_cycles(graph: &FlowGraph) -> Vec<Hazard> {
    let n = graph.components.len();
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for channel in &graph.channels {
        for &s in &channel.sources {
            for &t in &channel.sinks {
                if !successors[s].contains(&t) {
                    successors[s].push(t);
                }
            }
        }
    }

    // Iterative Tarjan.
    let mut index_of = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for root in 0..n {
        if index_of[root] != usize::MAX {
            continue;
        }
        // (node, next successor position)
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index_of[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = successors[v].get(*pos) {
                *pos += 1;
                if index_of[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index_of[w]);
                }
            } else {
                if low[v] == index_of[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }

    let mut hazards = Vec::new();
    for scc in sccs {
        let cyclic = scc.len() > 1 || successors[scc[0]].contains(&scc[0]);
        if !cyclic {
            continue;
        }
        let in_scc = |c: usize| scc.binary_search(&c).is_ok();
        let mut channels: Vec<String> = graph
            .channels
            .iter()
            .filter(|ch| {
                ch.sources.iter().any(|&s| in_scc(s)) && ch.sinks.iter().any(|&t| in_scc(t))
            })
            .map(|ch| ch.name.clone())
            .collect();
        channels.sort();
        let mut members: Vec<(&str, usize)> = scc
            .iter()
            .map(|&c| (graph.components[c].path.as_str(), c))
            .collect();
        members.sort_unstable();
        let member_names: Vec<&str> = members.iter().map(|&(path, _)| path).collect();
        hazards.push(Hazard {
            kind: HazardKind::DeadlockableCycle,
            severity: Severity::Error,
            component: Some(members[0].0.to_string()),
            impl_name: members
                .iter()
                .find_map(|&(_, c)| declaring_impl(&graph.components[c])),
            channels,
            message: format!(
                "dependency cycle through {}: with bounded FIFOs any cycle can fill and deadlock",
                member_names.join(", ")
            ),
        });
    }
    hazards
}

/// Merge points whose combined input rate exceeds their service rate.
fn fan_in_contention(graph: &FlowGraph, solution: &RateSolution) -> Vec<Hazard> {
    let mut hazards = Vec::new();
    for comp in &graph.components {
        if comp.model.class != RateClass::Merge || comp.inputs.len() < 2 {
            continue;
        }
        let offered: f64 = comp
            .inputs
            .iter()
            .map(|&(_, ch)| solution.channel_rate[ch])
            .sum();
        let service = comp.model.service.min(1.0);
        if offered > service + EPSILON {
            hazards.push(Hazard {
                kind: HazardKind::FanInContention,
                severity: Severity::Warning,
                component: Some(comp.path.clone()),
                impl_name: declaring_impl(comp),
                channels: comp
                    .inputs
                    .iter()
                    .map(|&(_, ch)| graph.channels[ch].name.clone())
                    .collect(),
                message: format!(
                    "fan-in at `{}` is offered {:.3} transfers/cycle across {} inputs but serves \
                     at most {:.3}: producers will see backpressure",
                    comp.path,
                    offered,
                    comp.inputs.len(),
                    service
                ),
            });
        }
    }
    hazards
}

/// Ports whose declared minimum throughput exceeds the predicted
/// bound of the channel feeding them.
fn rate_mismatches(
    graph: &FlowGraph,
    solution: &RateSolution,
    project: &Project,
    index: &ProjectIndex,
) -> Vec<Hazard> {
    let mut hazards = Vec::new();
    // Component input ports.
    for comp in &graph.components {
        if comp.synthetic {
            continue;
        }
        let Some(sid) = index.streamlet_of_impl_name(project, &comp.impl_name) else {
            continue;
        };
        for &(ref port_name, ch) in &comp.inputs {
            if let Some(h) = check_port_contract(
                project,
                index,
                sid,
                port_name,
                &format!("{}.{}", comp.path, port_name),
                &graph.channels[ch].name,
                solution.channel_rate[ch],
                declaring_impl(comp),
            ) {
                hazards.push(h);
            }
        }
    }
    // Top-level output ports: the design's own outgoing contract.
    if let Some(sid) = index.streamlet_of_impl_name(project, &graph.top) {
        for &(ref port_name, ch) in &graph.boundary_outputs {
            if let Some(h) = check_port_contract(
                project,
                index,
                sid,
                port_name,
                &format!("top.{port_name}"),
                &graph.channels[ch].name,
                solution.channel_rate[ch],
                Some(graph.top.clone()),
            ) {
                hazards.push(h);
            }
        }
    }
    hazards
}

/// Checks one port's declared stream throughput against the predicted
/// channel bound.
///
/// Only throughputs declared *above* the default of 1.0 are treated as
/// contracts — an explicit multi-element-per-cycle promise — because
/// the default is attached to every stream and would flag every
/// pipeline that is merely slower than one element per cycle. The
/// transfer-rate bound is scaled by the stream's lane count: a
/// conforming RTL transfer carries up to `lanes` elements even though
/// the simulator moves one element per packet.
#[allow(clippy::too_many_arguments)]
fn check_port_contract(
    project: &Project,
    index: &ProjectIndex,
    sid: tydi_ir::StreamletId,
    port_name: &str,
    site: &str,
    channel_name: &str,
    predicted_transfers: f64,
    impl_name: Option<String>,
) -> Option<Hazard> {
    let (declared, lanes) = declared_min_rate(project, index, sid, port_name)?;
    if declared <= 1.0 + EPSILON {
        return None;
    }
    let predicted_elements = predicted_transfers * lanes as f64;
    if declared <= predicted_elements + EPSILON {
        return None;
    }
    Some(rate_mismatch_hazard(
        site,
        channel_name,
        declared,
        predicted_elements,
        impl_name,
    ))
}

fn rate_mismatch_hazard(
    port: &str,
    channel: &str,
    declared: f64,
    predicted: f64,
    impl_name: Option<String>,
) -> Hazard {
    Hazard {
        kind: HazardKind::RateMismatch,
        severity: Severity::Warning,
        component: Some(port.to_string()),
        impl_name,
        channels: vec![channel.to_string()],
        message: format!(
            "port `{port}` declares a minimum throughput of {declared:.3} elements/cycle but the \
             upstream bound is {predicted:.3}: the stream contract cannot be met"
        ),
    }
}

/// The declared minimum element rate and lane count of a port's root
/// stream, from the Tydi type metadata.
fn declared_min_rate(
    project: &Project,
    index: &ProjectIndex,
    sid: tydi_ir::StreamletId,
    port: &str,
) -> Option<(f64, u32)> {
    let port = index.port(project, sid, port)?;
    let streams = tydi_spec::lower_cached_arc(&port.ty).ok()?;
    let root = streams.iter().find(|s| s.path.is_empty())?;
    Some((root.min_elements_per_cycle(), root.lanes()))
}

/// Joins whose input arms have first-arrival skew at least the FIFO
/// depth of the early arm.
fn credit_starvation(graph: &FlowGraph, solution: &RateSolution) -> Vec<Hazard> {
    let mut hazards = Vec::new();
    for comp in &graph.components {
        let joins = matches!(comp.model.class, RateClass::Join)
            || (comp.model.class == RateClass::Interpreted && comp.inputs.len() >= 2);
        if !joins || comp.inputs.len() < 2 {
            continue;
        }
        let arrivals: Vec<(usize, u64)> = comp
            .inputs
            .iter()
            .filter_map(|&(_, ch)| solution.channel_latency[ch].map(|lat| (ch, lat)))
            .collect();
        if arrivals.len() < 2 {
            continue;
        }
        let &(early_ch, early) = arrivals.iter().min_by_key(|&&(_, lat)| lat).unwrap();
        let &(late_ch, late) = arrivals.iter().max_by_key(|&&(_, lat)| lat).unwrap();
        let skew = late - early;
        let depth = graph.channels[early_ch].capacity as u64;
        if skew >= depth {
            hazards.push(Hazard {
                kind: HazardKind::CreditStarvation,
                severity: Severity::Warning,
                component: Some(comp.path.clone()),
                impl_name: declaring_impl(comp),
                channels: vec![
                    graph.channels[early_ch].name.clone(),
                    graph.channels[late_ch].name.clone(),
                ],
                message: format!(
                    "join at `{}`: input `{}` can arrive {} cycles before `{}` but its FIFO holds \
                     only {} packets — the early arm fills and stalls its producer during start-up",
                    comp.path,
                    graph.channels[early_ch].name,
                    skew,
                    graph.channels[late_ch].name,
                    depth
                ),
            });
        }
    }
    hazards
}

/// Per boundary output, the channels that can transitively block it:
/// reverse reachability from the output channel through component
/// input/output relations. A simulated deadlock can only ever report
/// blocked channels inside the union of these cones (plus cycles,
/// which are flagged as errors separately).
pub fn stall_cones(graph: &FlowGraph) -> Vec<StallCone> {
    graph
        .boundary_outputs
        .iter()
        .map(|&(ref port, root)| {
            let mut seen = vec![false; graph.channels.len()];
            let mut stack = vec![root];
            seen[root] = true;
            while let Some(ch) = stack.pop() {
                for &comp in &graph.channels[ch].sources {
                    for &(_, in_ch) in &graph.components[comp].inputs {
                        if !seen[in_ch] {
                            seen[in_ch] = true;
                            stack.push(in_ch);
                        }
                    }
                }
            }
            let mut channels: Vec<String> = graph
                .channels
                .iter()
                .enumerate()
                .filter(|&(i, _)| seen[i])
                .map(|(_, c)| c.name.clone())
                .collect();
            channels.sort();
            StallCone {
                port: port.clone(),
                channels,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::solve;
    use crate::testutil::TestGraph;

    #[test]
    fn scc_flags_feedback_loop() {
        let g = TestGraph::new(
            &[("boundary.i", 2), ("top.fb", 2), ("boundary.o", 2)],
            &[("i", 0)],
            &[("o", 2)],
        )
        .comp(
            "top.join",
            RateClass::Join,
            1.0,
            1,
            &[("a", 0), ("b", 1)],
            &[("o", 2)],
        )
        .comp(
            "top.loop",
            RateClass::Elementwise,
            1.0,
            1,
            &[("i", 2)],
            &[("o", 1)],
        )
        .build();
        let hazards = deadlockable_cycles(&g);
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].kind, HazardKind::DeadlockableCycle);
        assert_eq!(hazards[0].severity, Severity::Error);
        assert!(hazards[0].channels.contains(&"top.fb".to_string()));
        assert!(hazards[0].channels.contains(&"boundary.o".to_string()));
    }

    #[test]
    fn acyclic_pipeline_has_no_cycle_hazard() {
        let g = TestGraph::new(
            &[("boundary.i", 2), ("top.m", 2), ("boundary.o", 2)],
            &[("i", 0)],
            &[("o", 2)],
        )
        .comp(
            "top.a",
            RateClass::Elementwise,
            1.0,
            1,
            &[("i", 0)],
            &[("o", 1)],
        )
        .comp(
            "top.b",
            RateClass::Elementwise,
            1.0,
            1,
            &[("i", 1)],
            &[("o", 2)],
        )
        .build();
        assert!(deadlockable_cycles(&g).is_empty());
    }

    #[test]
    fn mux_overload_raises_fan_in_contention() {
        let g = TestGraph::new(
            &[("boundary.a", 2), ("boundary.b", 2), ("boundary.o", 2)],
            &[("a", 0), ("b", 1)],
            &[("o", 2)],
        )
        .comp(
            "top.mux",
            RateClass::Merge,
            1.0,
            1,
            &[("a", 0), ("b", 1)],
            &[("o", 2)],
        )
        .build();
        let s = solve(&g);
        let hazards = fan_in_contention(&g, &s);
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].kind, HazardKind::FanInContention);
        assert_eq!(hazards[0].component.as_deref(), Some("top.mux"));
    }

    #[test]
    fn skewed_join_raises_credit_starvation() {
        // One arm direct, the other behind a 4-cycle stage: skew 4
        // against a depth-2 FIFO.
        let g = TestGraph::new(
            &[
                ("boundary.a", 2),
                ("boundary.b", 2),
                ("top.d", 2),
                ("boundary.o", 2),
            ],
            &[("a", 0), ("b", 1)],
            &[("o", 3)],
        )
        .comp(
            "top.slow",
            RateClass::Elementwise,
            0.25,
            4,
            &[("i", 1)],
            &[("o", 2)],
        )
        .comp(
            "top.join",
            RateClass::Join,
            1.0,
            1,
            &[("a", 0), ("b", 2)],
            &[("o", 3)],
        )
        .build();
        let s = solve(&g);
        let hazards = credit_starvation(&g, &s);
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].kind, HazardKind::CreditStarvation);
        assert_eq!(hazards[0].channels[0], "boundary.a");
        assert_eq!(hazards[0].channels[1], "top.d");
    }

    #[test]
    fn balanced_join_is_clean() {
        let g = TestGraph::new(
            &[("boundary.a", 2), ("boundary.b", 2), ("boundary.o", 2)],
            &[("a", 0), ("b", 1)],
            &[("o", 2)],
        )
        .comp(
            "top.join",
            RateClass::Join,
            1.0,
            1,
            &[("a", 0), ("b", 1)],
            &[("o", 2)],
        )
        .build();
        let s = solve(&g);
        assert!(credit_starvation(&g, &s).is_empty());
    }

    #[test]
    fn stall_cone_covers_upstream_channels_only() {
        // Two independent lanes sharing nothing: each output's cone
        // holds its own lane.
        let g = TestGraph::new(
            &[
                ("boundary.a", 2),
                ("boundary.x", 2),
                ("boundary.b", 2),
                ("boundary.y", 2),
            ],
            &[("a", 0), ("b", 2)],
            &[("x", 1), ("y", 3)],
        )
        .comp(
            "top.p",
            RateClass::Elementwise,
            1.0,
            1,
            &[("i", 0)],
            &[("o", 1)],
        )
        .comp(
            "top.q",
            RateClass::Elementwise,
            1.0,
            1,
            &[("i", 2)],
            &[("o", 3)],
        )
        .build();
        let cones = stall_cones(&g);
        assert_eq!(cones.len(), 2);
        assert_eq!(cones[0].port, "x");
        assert_eq!(cones[0].channels, vec!["boundary.a", "boundary.x"]);
        assert_eq!(cones[1].channels, vec!["boundary.b", "boundary.y"]);
    }
}
