//! Hazard → fault synthesis: turning static predictions into chaos
//! experiments.
//!
//! The analyzer *predicts* where a design can wedge; the simulator's
//! fault-injection engine can *provoke* it. This module closes the
//! loop: for each hazard that describes a deadlockable condition, it
//! synthesizes the [`FaultPlan`] that should trigger exactly that
//! wedge. The differential suite then runs the plan and asserts the
//! resulting deadlock's blocked channels land inside the predicted
//! stall cones — turning the analyzer's bounds into tested guarantees.

use crate::report::{AnalysisReport, Hazard, HazardKind};
use tydi_sim::{Fault, FaultPlan};

/// A chaos experiment derived from one hazard: the prediction it aims
/// to confirm and the fault plan expected to provoke it.
#[derive(Debug, Clone)]
pub struct SynthesizedFault {
    /// The hazard this plan targets.
    pub hazard: Hazard,
    /// The fault plan that should wedge the design if the prediction
    /// is real.
    pub plan: FaultPlan,
}

/// Synthesizes one fault plan per provocable hazard in `report`.
///
/// * [`HazardKind::CreditStarvation`] — the hazard names
///   `[early_arm, late_arm]`; withholding the late arm's credit
///   forever starves the join, so the early arm fills and the stall
///   propagates upstream exactly as predicted.
/// * [`HazardKind::DeadlockableCycle`] — the hazard lists the cycle's
///   channels; permanently stalling any one of them guarantees the
///   bounded-FIFO cycle fills and wedges.
///
/// Contention and rate-mismatch hazards describe throughput loss, not
/// a wedge, so no fault is synthesized for them.
pub fn synthesize_faults(report: &AnalysisReport) -> Vec<SynthesizedFault> {
    report
        .hazards
        .iter()
        .filter_map(|hazard| {
            let channel = match hazard.kind {
                HazardKind::CreditStarvation => hazard.channels.get(1),
                HazardKind::DeadlockableCycle => hazard.channels.first(),
                HazardKind::FanInContention | HazardKind::RateMismatch => None,
            }?;
            let plan = FaultPlan::new().with(Fault::Stall {
                channel: channel.clone(),
                from_cycle: 0,
                cycles: u64::MAX,
            });
            Some(SynthesizedFault {
                hazard: hazard.clone(),
                plan,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;

    fn hazard(kind: HazardKind, channels: &[&str]) -> Hazard {
        Hazard {
            kind,
            severity: Severity::Warning,
            component: Some("top.join".to_string()),
            impl_name: None,
            channels: channels.iter().map(|c| c.to_string()).collect(),
            message: String::new(),
        }
    }

    fn report_with(hazards: Vec<Hazard>) -> AnalysisReport {
        AnalysisReport {
            top: "top_i".to_string(),
            components: 0,
            channels: Vec::new(),
            outputs: Vec::new(),
            hazards,
            stall_cones: Vec::new(),
            confidence: crate::report::Confidence::Exact,
            converged: true,
        }
    }

    #[test]
    fn starvation_stalls_the_late_arm() {
        let report = report_with(vec![hazard(
            HazardKind::CreditStarvation,
            &["early -> join", "late -> join"],
        )]);
        let synthesized = synthesize_faults(&report);
        assert_eq!(synthesized.len(), 1);
        assert_eq!(
            synthesized[0].plan.faults,
            vec![Fault::Stall {
                channel: "late -> join".to_string(),
                from_cycle: 0,
                cycles: u64::MAX,
            }]
        );
    }

    #[test]
    fn cycle_stalls_a_member_channel() {
        let report = report_with(vec![hazard(
            HazardKind::DeadlockableCycle,
            &["a -> b", "b -> a"],
        )]);
        let synthesized = synthesize_faults(&report);
        assert_eq!(synthesized.len(), 1);
        assert_eq!(synthesized[0].plan.faults[0].target(), "a -> b");
    }

    #[test]
    fn throughput_hazards_yield_no_fault() {
        let report = report_with(vec![
            hazard(HazardKind::FanInContention, &["x", "y"]),
            hazard(HazardKind::RateMismatch, &["z"]),
        ]);
        assert!(synthesize_faults(&report).is_empty());
    }
}
