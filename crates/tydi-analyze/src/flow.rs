//! The analyzable flow graph and the per-component service model.
//!
//! The graph is built by [`tydi_sim::graph::flatten`] — the *same*
//! flattening the simulator uses, run with the same channel capacity —
//! so every channel and component here carries exactly the name the
//! simulator would report for it. The analysis never ticks the
//! simulator; it only reads the structure.
//!
//! On top of the structure, each component gets a *service model*: a
//! rate class (how its output rate relates to its input rates), a
//! service rate (an upper bound on sustained transfers per cycle per
//! output), and a minimum internal delay (a lower bound on cycles from
//! consuming an input to producing the dependent output). Builtins are
//! classified from their behaviour key; interpreted components are
//! classified by a static scan of their simulation block.

use std::collections::HashMap;
use tydi_ir::{Implementation, Project};
use tydi_lang::sim_ast::{SimAction, SimBlock, SimExpr};
use tydi_sim::graph::SimGraph;

/// How a component's output rates relate to its input rates. The
/// classes mirror the builtin behaviour registry of the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateClass {
    /// One output transfer per input transfer (`passthrough`, `not`,
    /// the `*_const` comparators).
    Elementwise,
    /// Fires when *all* inputs have data; output rate is the minimum
    /// of the input rates (binary operators, `and_n`, `or_n`,
    /// `group_combine2`).
    Join,
    /// Forwards whichever input has data; output rate is bounded by
    /// the *sum* of the input rates — the structural fan-in
    /// contention site (`mux`).
    Merge,
    /// Replicates each input transfer to every output (`duplicator`,
    /// `group_split2`); each output rate is bounded by the input rate.
    Fanout,
    /// Passes a data-dependent subset through (`filter`, `demux`);
    /// each output rate is bounded by the input rate.
    Filter,
    /// Collapses a sequence into one result (`sum`, `count`, `min`,
    /// `max`); output rate is bounded by the input rate and depends on
    /// the data shape.
    Reduce,
    /// Emits spontaneously with no inputs (`const`).
    Source,
    /// Consumes and discards (`voider`).
    Sink,
    /// Behaviour comes from an interpreted simulation block; the
    /// service model is a static scan of its handlers.
    Interpreted,
    /// A builtin this analysis does not know; treated conservatively
    /// as `min(service, sum of inputs)` per output.
    Opaque,
}

/// The static service model of one component.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    /// Rate class.
    pub class: RateClass,
    /// Upper bound on sustained transfers per cycle on any single
    /// output port.
    pub service: f64,
    /// Lower bound on internal latency in cycles from input to
    /// dependent output (at least 1: the staged-push/commit cycle).
    pub min_latency: u64,
    /// Whether `service` is believed exact (tight) rather than only an
    /// upper bound. Designs where every component is exact get a
    /// tighter differential tolerance.
    pub exact: bool,
    /// Whether every output transfer is driven by an input transfer,
    /// so output rates are additionally bounded by the input rates.
    /// False for sources and for interpreted blocks with
    /// input-independent sending handlers.
    pub input_driven: bool,
}

/// One component of the flow graph: the structural node from the
/// flattener plus its service model.
#[derive(Debug, Clone)]
pub struct FlowComponent {
    /// Hierarchical path, e.g. `top.pu_0.add` (identical to the
    /// simulator's).
    pub path: String,
    /// Elaborated implementation name (`__wire` for synthetic
    /// feed-throughs).
    pub impl_name: String,
    /// Input port name to channel index, sorted for determinism.
    pub inputs: Vec<(String, usize)>,
    /// Output port name to channel index, sorted for determinism.
    pub outputs: Vec<(String, usize)>,
    /// True for flattener-fabricated feed-through wires.
    pub synthetic: bool,
    /// The service model.
    pub model: ServiceModel,
}

/// One channel of the flow graph.
#[derive(Debug, Clone)]
pub struct FlowChannel {
    /// Channel name, identical to the simulator's (`boundary.<port>`
    /// or `<path>.<src> => <sink>`).
    pub name: String,
    /// FIFO capacity in packets.
    pub capacity: usize,
    /// Components writing this channel.
    pub sources: Vec<usize>,
    /// Components reading this channel.
    pub sinks: Vec<usize>,
}

/// The whole analyzable design.
#[derive(Debug, Clone)]
pub struct FlowGraph {
    /// Top-level implementation name.
    pub top: String,
    /// Components, in flattening order.
    pub components: Vec<FlowComponent>,
    /// Channels, in flattening order.
    pub channels: Vec<FlowChannel>,
    /// Top-level input ports with their boundary channels.
    pub boundary_inputs: Vec<(String, usize)>,
    /// Top-level output ports with their boundary channels.
    pub boundary_outputs: Vec<(String, usize)>,
}

impl FlowGraph {
    /// Builds the flow graph from a flattened design.
    pub fn from_sim_graph(project: &Project, top: &str, graph: &SimGraph) -> FlowGraph {
        let components = graph
            .components
            .iter()
            .map(|node| {
                let mut inputs: Vec<(String, usize)> =
                    node.inputs.iter().map(|(p, &c)| (p.clone(), c)).collect();
                let mut outputs: Vec<(String, usize)> =
                    node.outputs.iter().map(|(p, &c)| (p.clone(), c)).collect();
                inputs.sort();
                outputs.sort();
                let implementation = if node.synthetic {
                    None
                } else {
                    project.implementation(&node.impl_name)
                };
                let model = service_model(
                    node.builtin.as_deref(),
                    node.sim_source.as_deref(),
                    implementation,
                );
                FlowComponent {
                    path: node.path.clone(),
                    impl_name: node.impl_name.clone(),
                    inputs,
                    outputs,
                    synthetic: node.synthetic,
                    model,
                }
            })
            .collect();
        let channels = graph
            .channels
            .iter()
            .enumerate()
            .map(|(index, channel)| FlowChannel {
                name: channel.name.clone(),
                capacity: channel.capacity(),
                sources: graph.channel_sources[index].clone(),
                sinks: graph.channel_sinks[index].clone(),
            })
            .collect();
        FlowGraph {
            top: top.to_string(),
            components,
            channels,
            boundary_inputs: graph.boundary_inputs.clone(),
            boundary_outputs: graph.boundary_outputs.clone(),
        }
    }

    /// The component indices whose path matches `path`.
    pub fn component_by_path(&self, path: &str) -> Option<usize> {
        self.components.iter().position(|c| c.path == path)
    }
}

/// The optional `latency` template parameter shared by the builtin
/// data operators (mirrors the simulator's reading of it).
fn builtin_latency(implementation: Option<&Implementation>) -> u64 {
    implementation
        .and_then(|i| i.attributes.get("param_latency"))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Classifies a component and derives its service model.
fn service_model(
    builtin: Option<&str>,
    sim_source: Option<&str>,
    implementation: Option<&Implementation>,
) -> ServiceModel {
    if let Some(key) = builtin {
        let latency = builtin_latency(implementation);
        // The two-phase data operators (simulator `Binop`: pop one
        // tick, release the held result on a later tick) sustain one
        // fire per max(2, latency) cycles and surface their first
        // result max(1, latency - 1) cycles after the operands meet.
        // Every other builtin forwards in the tick it pops.
        let two_phase = matches!(
            key,
            "std.add"
                | "std.sub"
                | "std.mul"
                | "std.div"
                | "std.cmp_eq"
                | "std.cmp_ne"
                | "std.cmp_lt"
                | "std.cmp_le"
                | "std.cmp_gt"
                | "std.cmp_ge"
        );
        let (service, min_latency) = if two_phase {
            (1.0 / latency.max(2) as f64, (latency - 1).max(1))
        } else {
            (1.0 / latency as f64, latency)
        };
        let (class, exact) = match key {
            "std.passthrough" | "std.not" => (RateClass::Elementwise, true),
            k if k.starts_with("std.eq_const")
                || k.starts_with("std.ne_const")
                || k.starts_with("std.lt_const")
                || k.starts_with("std.le_const")
                || k.starts_with("std.gt_const")
                || k.starts_with("std.ge_const") =>
            {
                (RateClass::Elementwise, true)
            }
            "std.add" | "std.sub" | "std.mul" | "std.div" | "std.cmp_eq" | "std.cmp_ne"
            | "std.cmp_lt" | "std.cmp_le" | "std.cmp_gt" | "std.cmp_ge" | "std.and_n"
            | "std.or_n" | "std.group_combine2" => (RateClass::Join, true),
            "std.mux" => (RateClass::Merge, true),
            "std.duplicator" | "std.group_split2" => (RateClass::Fanout, true),
            // Filter and demux output rates are data-dependent; the
            // input-rate bound is sound but not tight.
            "std.filter" | "std.demux" => (RateClass::Filter, false),
            "std.sum" | "std.count" | "std.min" | "std.max" => (RateClass::Reduce, false),
            "std.const" => (RateClass::Source, true),
            "std.voider" => (RateClass::Sink, true),
            _ => (RateClass::Opaque, false),
        };
        return ServiceModel {
            class,
            service,
            min_latency,
            exact,
            input_driven: class != RateClass::Source,
        };
    }
    if let Some(source) = sim_source {
        return interpreted_model(source);
    }
    // Unreachable for graphs the flattener accepted, but stay total.
    ServiceModel {
        class: RateClass::Opaque,
        service: 1.0,
        min_latency: 1,
        exact: false,
        input_driven: true,
    }
}

/// Derives a service model from an interpreted simulation block by
/// statically scanning its handlers.
///
/// The scan is deliberately one-sided: it must never *under*-estimate
/// what the component can sustain (the differential dominance check
/// depends on the bound staying above the measured rate), so every
/// data-dependent construct resolves toward "faster".
///
/// * `delay(n)` with a constant `n` stretches a firing; the minimum
///   over handlers and `if` branches bounds the firing rate from
///   above by `1 / max(1, min_delay)`.
/// * `send` counts per firing multiply the rate, using the *maximum*
///   over branches; `for` loops with constant bounds multiply by the
///   iteration count, non-constant bounds make the port unbounded
///   (rate capped at 1.0, the physical per-cycle channel limit).
/// * Non-constant delays count as zero.
fn interpreted_model(source: &str) -> ServiceModel {
    let Ok(block) = tydi_lang::parse_simulation(source) else {
        // Malformed blocks are rejected later by the simulator; keep
        // the analysis total with the loosest sound model.
        return ServiceModel {
            class: RateClass::Interpreted,
            service: 1.0,
            min_latency: 1,
            exact: false,
            input_driven: false,
        };
    };
    let (service, min_delay) = scan_block(&block);
    // Output rates are bounded by input rates only if every sending
    // handler needs an input packet to fire.
    let input_driven = block.handlers.iter().all(|handler| {
        max_sends_of(&handler.actions) == SendCount::Known(0)
            || !handler.event.recv_ports().is_empty()
    });
    ServiceModel {
        class: RateClass::Interpreted,
        service,
        // A firing spans at least one commit cycle plus its delays.
        min_latency: 1 + min_delay,
        exact: false,
        input_driven,
    }
}

/// Scans a parsed simulation block: returns `(service, min_delay)`
/// where `service` bounds the per-output transfer rate and `min_delay`
/// is the smallest internal `delay(..)` total any firing can take.
fn scan_block(block: &SimBlock) -> (f64, u64) {
    let mut best_rate: f64 = 0.0;
    let mut min_delay: u64 = u64::MAX;
    for handler in &block.handlers {
        let delay = min_delay_of(&handler.actions);
        let sends = max_sends_of(&handler.actions);
        min_delay = min_delay.min(delay);
        let per_firing = match sends {
            SendCount::Known(0) => continue,
            SendCount::Known(n) => n as f64,
            SendCount::Unbounded => f64::INFINITY,
        };
        best_rate = best_rate.max(per_firing / (1 + delay) as f64);
    }
    if min_delay == u64::MAX {
        min_delay = 0;
    }
    // A channel moves at most one packet per cycle end-to-end, so the
    // physical cap closes the unbounded cases.
    (best_rate.min(1.0), min_delay)
}

/// The number of `send` actions a single firing can perform on its
/// busiest port, maximized over control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendCount {
    Known(u64),
    Unbounded,
}

impl SendCount {
    fn add(self, other: SendCount) -> SendCount {
        match (self, other) {
            (SendCount::Known(a), SendCount::Known(b)) => SendCount::Known(a + b),
            _ => SendCount::Unbounded,
        }
    }

    fn max(self, other: SendCount) -> SendCount {
        match (self, other) {
            (SendCount::Known(a), SendCount::Known(b)) => SendCount::Known(a.max(b)),
            _ => SendCount::Unbounded,
        }
    }

    fn times(self, factor: Option<u64>) -> SendCount {
        match (self, factor) {
            (SendCount::Known(0), _) => SendCount::Known(0),
            (SendCount::Known(a), Some(f)) => SendCount::Known(a * f),
            _ => SendCount::Unbounded,
        }
    }
}

fn const_expr(expr: &SimExpr) -> Option<i64> {
    match expr {
        SimExpr::Int(v) => Some(*v),
        SimExpr::Neg(inner) => const_expr(inner).map(|v| -v),
        _ => None,
    }
}

/// Minimum total `delay(..)` cycles along any control path.
fn min_delay_of(actions: &[SimAction]) -> u64 {
    let mut total = 0u64;
    for action in actions {
        match action {
            SimAction::Delay(expr) => {
                // Non-constant delays could be zero at runtime, so
                // they contribute nothing to the lower bound.
                total += const_expr(expr).map(|v| v.max(0) as u64).unwrap_or(0);
            }
            SimAction::If {
                then_actions,
                else_actions,
                ..
            } => {
                total += min_delay_of(then_actions).min(min_delay_of(else_actions));
            }
            SimAction::For {
                start, end, body, ..
            } => {
                let iterations = match (const_expr(start), const_expr(end)) {
                    (Some(a), Some(b)) if b > a => (b - a) as u64,
                    (Some(_), Some(_)) => 0,
                    // Unknown trip count: could be zero.
                    _ => 0,
                };
                total += iterations * min_delay_of(body);
            }
            _ => {}
        }
    }
    total
}

/// Maximum `send` count on the busiest single port along any control
/// path.
fn max_sends_of(actions: &[SimAction]) -> SendCount {
    let mut per_port: HashMap<&str, SendCount> = HashMap::new();
    collect_sends(actions, &mut per_port);
    per_port
        .into_values()
        .fold(SendCount::Known(0), SendCount::max)
}

fn collect_sends<'a>(actions: &'a [SimAction], per_port: &mut HashMap<&'a str, SendCount>) {
    for action in actions {
        match action {
            SimAction::Send { port, .. } => {
                let entry = per_port.entry(port).or_insert(SendCount::Known(0));
                *entry = entry.add(SendCount::Known(1));
            }
            SimAction::If {
                then_actions,
                else_actions,
                ..
            } => {
                let mut then_sends = HashMap::new();
                let mut else_sends = HashMap::new();
                collect_sends(then_actions, &mut then_sends);
                collect_sends(else_actions, &mut else_sends);
                for (port, count) in then_sends {
                    let other = else_sends.remove(port).unwrap_or(SendCount::Known(0));
                    let entry = per_port.entry(port).or_insert(SendCount::Known(0));
                    *entry = entry.add(count.max(other));
                }
                for (port, count) in else_sends {
                    let entry = per_port.entry(port).or_insert(SendCount::Known(0));
                    *entry = entry.add(count);
                }
            }
            SimAction::For {
                start, end, body, ..
            } => {
                let factor = match (const_expr(start), const_expr(end)) {
                    (Some(a), Some(b)) if b > a => Some((b - a) as u64),
                    (Some(_), Some(_)) => Some(0),
                    _ => None,
                };
                let mut body_sends = HashMap::new();
                collect_sends(body, &mut body_sends);
                for (port, count) in body_sends {
                    let entry = per_port.entry(port).or_insert(SendCount::Known(0));
                    *entry = entry.add(count.times(factor));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(source: &str) -> ServiceModel {
        interpreted_model(source)
    }

    #[test]
    fn builtin_classification_covers_registry() {
        let join = service_model(Some("std.add"), None, None);
        assert_eq!(join.class, RateClass::Join);
        assert!(join.exact);
        assert_eq!(join.service, 0.5);
        let merge = service_model(Some("std.mux"), None, None);
        assert_eq!(merge.class, RateClass::Merge);
        let unknown = service_model(Some("std.future_op"), None, None);
        assert_eq!(unknown.class, RateClass::Opaque);
        assert!(!unknown.exact);
    }

    #[test]
    fn builtin_latency_slows_service() {
        let mut implementation =
            Implementation::external("slow_add_i", "s").with_builtin("std.add");
        implementation
            .attributes
            .insert("param_latency".into(), "8".into());
        let model = service_model(Some("std.add"), None, Some(&implementation));
        assert_eq!(model.service, 1.0 / 8.0);
        assert_eq!(model.min_latency, 7);
        // The default latency-1 operators still pay the two-phase
        // (pop, then release) cycle: half rate, one cycle of latency.
        let fast = Implementation::external("add_i", "s").with_builtin("std.add");
        let fast_model = service_model(Some("std.add"), None, Some(&fast));
        assert_eq!(fast_model.service, 0.5);
        assert_eq!(fast_model.min_latency, 1);
    }

    #[test]
    fn interpreted_delay_caps_rate() {
        let model = model_of("on (i.recv) { delay(4); send(o, i.data); ack(i); }");
        assert_eq!(model.class, RateClass::Interpreted);
        assert_eq!(model.service, 1.0 / 5.0);
        assert_eq!(model.min_latency, 5);
    }

    #[test]
    fn interpreted_branch_takes_fastest_path() {
        // One branch has no delay, so the sound upper bound is the
        // full rate.
        let model = model_of(
            "on (i.recv) { if (i.data > 0) { delay(9); } else { } send(o, i.data); ack(i); }",
        );
        assert_eq!(model.service, 1.0);
        assert_eq!(model.min_latency, 1);
    }

    #[test]
    fn interpreted_multi_send_loops_count_iterations() {
        // Three sends per firing with delay 2 -> 3 transfers per 3
        // cycles, capped at the physical 1.0.
        let model = model_of("on (i.recv) { delay(2); for k in (0..3) { send(o, k); } ack(i); }");
        assert_eq!(model.service, 1.0);
        let slow = model_of("on (i.recv) { delay(5); for k in (0..3) { send(o, k); } ack(i); }");
        assert_eq!(slow.service, 0.5);
    }

    #[test]
    fn handler_without_sends_does_not_set_rate() {
        let model = model_of(
            "state st = \"idle\"; on (o.ack) { set_state(st, \"idle\"); } on (i.recv) { delay(3); send(o, i.data); ack(i); }",
        );
        assert_eq!(model.service, 0.25);
    }
}
