//! Fixpoint propagation of throughput upper bounds and
//! earliest-arrival latency lower bounds over a [`FlowGraph`].
//!
//! **Rates.** Every channel starts at the physical ceiling of 1.0
//! transfers per cycle (a bounded FIFO moves at most one packet from
//! staged to visible per commit, and a probe pops at most one packet
//! per cycle). Each component then imposes its service constraints on
//! its output channels, and iteration runs the constraints to a
//! fixpoint. All constraint functions are monotone non-decreasing in
//! the input rates and every update is a `min` against the current
//! value, so the iteration descends from the top of the lattice: every
//! intermediate state — including the state at the iteration cap —
//! over-approximates the true sustained rate. The final bound on a
//! boundary output channel is therefore a sound *upper* bound on what
//! the simulator can measure, and the minimum taken along each path is
//! the min-cut of the design seen as a flow network with unit channel
//! capacities scaled by component service rates.
//!
//! **Latencies.** A Bellman-Ford-style relaxation computes, per
//! channel, a lower bound on the cycle at which the first packet can
//! appear: boundary inputs at cycle 0, each component adding its
//! minimum internal latency, joins waiting for their *latest* input
//! and merges for their *earliest*. The skew between a join's inputs
//! feeds the credit-starvation hazard, and the boundary-output
//! latencies are reported as pipeline-depth lower bounds.

use crate::flow::{FlowGraph, RateClass};

/// The converged (or capped) solution of the propagation.
#[derive(Debug, Clone)]
pub struct RateSolution {
    /// Per-channel sustained-throughput upper bound in transfers per
    /// cycle, indexed like `FlowGraph::channels`.
    pub channel_rate: Vec<f64>,
    /// Per-channel earliest-arrival lower bound in cycles; `None` for
    /// channels no packet can ever reach.
    pub channel_latency: Vec<Option<u64>>,
    /// Whether the rate iteration reached a fixpoint before the
    /// iteration cap (the result is sound either way).
    pub converged: bool,
}

/// Floating-point slack for rate comparisons.
pub const EPSILON: f64 = 1e-9;

/// Runs both propagations.
pub fn solve(graph: &FlowGraph) -> RateSolution {
    let (channel_rate, converged) = propagate_rates(graph);
    let channel_latency = relax_latencies(graph);
    RateSolution {
        channel_rate,
        channel_latency,
        converged,
    }
}

/// The rate bound a component imposes on each of its output channels,
/// given the current input-channel rates.
pub fn output_bound(graph: &FlowGraph, component: usize, rates: &[f64]) -> f64 {
    let comp = &graph.components[component];
    let in_rates: Vec<f64> = comp.inputs.iter().map(|&(_, ch)| rates[ch]).collect();
    let service = comp.model.service;
    if !comp.model.input_driven || in_rates.is_empty() {
        return service.min(1.0);
    }
    let bound = match comp.model.class {
        // Every output transfer is carried by one transfer on every
        // input: the slowest input gates the output.
        RateClass::Elementwise
        | RateClass::Join
        | RateClass::Fanout
        | RateClass::Filter
        | RateClass::Reduce => in_rates.iter().cloned().fold(f64::INFINITY, f64::min),
        // A merge forwards one input per firing, so its output can at
        // most carry the combined arrivals.
        RateClass::Merge => in_rates.iter().sum(),
        // Interpreted blocks whose sending handlers all wait on an
        // input fire at most once per arriving packet (across all
        // inputs); unknown builtins get the same conservative model.
        RateClass::Interpreted | RateClass::Opaque => in_rates.iter().sum(),
        RateClass::Source | RateClass::Sink => f64::INFINITY,
    };
    bound.min(service).min(1.0)
}

fn propagate_rates(graph: &FlowGraph) -> (Vec<f64>, bool) {
    let mut rates = vec![1.0f64; graph.channels.len()];
    // Monotone descent: a generous cap bounds pathological cyclic
    // cases; any intermediate state is already a sound upper bound.
    let cap = 4 * (graph.components.len() + graph.channels.len()) + 16;
    let mut converged = false;
    let mut iterations = 0u64;
    for iteration in 0..cap {
        let _span = tydi_obs::trace::fine_span_named("tydi-analyze", || {
            format!("fixpoint-iter:{iteration}")
        });
        iterations += 1;
        let mut changed = false;
        // Channels driven by no component at all (unconnected
        // boundary outputs) can never carry a packet.
        for (index, channel) in graph.channels.iter().enumerate() {
            if channel.sources.is_empty() && !is_boundary_input(graph, index) && rates[index] > 0.0
            {
                rates[index] = 0.0;
                changed = true;
            }
        }
        for component in 0..graph.components.len() {
            let bound = output_bound(graph, component, &rates);
            for &(_, out_ch) in &graph.components[component].outputs {
                // A channel with several writers moves at most the sum
                // of their bounds; with one writer (the common case)
                // this is just the writer's bound.
                let writers = &graph.channels[out_ch].sources;
                let total: f64 = if writers.len() <= 1 {
                    bound
                } else {
                    writers
                        .iter()
                        .map(|&w| output_bound(graph, w, &rates))
                        .sum()
                };
                let next = rates[out_ch].min(total.min(1.0));
                if next < rates[out_ch] - EPSILON {
                    rates[out_ch] = next;
                    changed = true;
                }
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    tydi_obs::metrics::counter_set("analyze.fixpoint_iterations", iterations);
    (rates, converged)
}

fn is_boundary_input(graph: &FlowGraph, channel: usize) -> bool {
    graph.boundary_inputs.iter().any(|&(_, ch)| ch == channel)
}

fn relax_latencies(graph: &FlowGraph) -> Vec<Option<u64>> {
    let mut latency: Vec<Option<u64>> = vec![None; graph.channels.len()];
    for &(_, ch) in &graph.boundary_inputs {
        latency[ch] = Some(0);
    }
    // Values only decrease and are bounded below by zero, so the
    // relaxation terminates; the cap guards cyclic corner cases.
    let cap = 4 * (graph.components.len() + 2);
    for _ in 0..cap {
        let mut changed = false;
        for comp in &graph.components {
            let in_lats: Vec<Option<u64>> =
                comp.inputs.iter().map(|&(_, ch)| latency[ch]).collect();
            let arrival = component_arrival(comp.model.class, &in_lats, comp.model.input_driven);
            let Some(arrival) = arrival else { continue };
            let out_lat = arrival + comp.model.min_latency;
            for &(_, out_ch) in &comp.outputs {
                if latency[out_ch].is_none_or(|cur| out_lat < cur) {
                    latency[out_ch] = Some(out_lat);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    latency
}

/// The earliest cycle a component can *start* producing, given the
/// earliest arrivals on its input channels.
fn component_arrival(class: RateClass, in_lats: &[Option<u64>], input_driven: bool) -> Option<u64> {
    if !input_driven || in_lats.is_empty() {
        // Sources (and input-independent interpreted blocks) can fire
        // immediately.
        return Some(0);
    }
    match class {
        // A join fires only once every input has arrived.
        RateClass::Elementwise
        | RateClass::Join
        | RateClass::Fanout
        | RateClass::Filter
        | RateClass::Reduce => in_lats
            .iter()
            .copied()
            .collect::<Option<Vec<u64>>>()?
            .into_iter()
            .max(),
        // A merge (or an unknown) fires as soon as *any* input
        // arrives — the sound lower bound.
        RateClass::Merge | RateClass::Interpreted | RateClass::Opaque => {
            in_lats.iter().flatten().copied().min()
        }
        RateClass::Source | RateClass::Sink => Some(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TestGraph;

    #[test]
    fn chain_takes_slowest_stage() {
        // in -> fast(1.0) -> slow(0.25) -> out : output bounded by the
        // slow stage, the min-cut.
        let g = TestGraph::new(
            &[("boundary.i", 2), ("top.m", 2), ("boundary.o", 2)],
            &[("i", 0)],
            &[("o", 2)],
        )
        .comp(
            "top.fast",
            RateClass::Elementwise,
            1.0,
            1,
            &[("i", 0)],
            &[("o", 1)],
        )
        .comp(
            "top.slow",
            RateClass::Elementwise,
            0.25,
            4,
            &[("i", 1)],
            &[("o", 2)],
        )
        .build();
        let s = solve(&g);
        assert!(s.converged);
        assert!((s.channel_rate[2] - 0.25).abs() < EPSILON);
        assert!((s.channel_rate[1] - 1.0).abs() < EPSILON);
        assert_eq!(s.channel_latency[2], Some(5));
    }

    #[test]
    fn join_is_gated_by_slowest_input_and_latest_arrival() {
        // Two inputs, one behind a delay-3 stage, meeting in a join.
        let g = TestGraph::new(
            &[
                ("boundary.a", 2),
                ("boundary.b", 2),
                ("top.d", 2),
                ("boundary.o", 2),
            ],
            &[("a", 0), ("b", 1)],
            &[("o", 3)],
        )
        .comp(
            "top.slow",
            RateClass::Elementwise,
            0.5,
            3,
            &[("i", 1)],
            &[("o", 2)],
        )
        .comp(
            "top.join",
            RateClass::Join,
            1.0,
            1,
            &[("a", 0), ("b", 2)],
            &[("o", 3)],
        )
        .build();
        let s = solve(&g);
        assert!((s.channel_rate[3] - 0.5).abs() < EPSILON);
        // Join waits for the delayed arm: 0+3 then +1.
        assert_eq!(s.channel_latency[3], Some(4));
        assert_eq!(s.channel_latency[2], Some(3));
    }

    #[test]
    fn merge_sums_inputs_capped_at_service() {
        let g = TestGraph::new(
            &[("boundary.a", 2), ("boundary.b", 2), ("boundary.o", 2)],
            &[("a", 0), ("b", 1)],
            &[("o", 2)],
        )
        .comp(
            "top.mux",
            RateClass::Merge,
            1.0,
            1,
            &[("a", 0), ("b", 1)],
            &[("o", 2)],
        )
        .build();
        let s = solve(&g);
        // 1.0 + 1.0 capped at the physical 1.0.
        assert!((s.channel_rate[2] - 1.0).abs() < EPSILON);
        // First packet through the earliest arm.
        assert_eq!(s.channel_latency[2], Some(1));
    }

    #[test]
    fn source_rate_ignores_missing_inputs() {
        let g = TestGraph::new(&[("boundary.o", 2)], &[], &[("o", 0)])
            .comp("top.konst", RateClass::Source, 1.0, 1, &[], &[("o", 0)])
            .build();
        let s = solve(&g);
        assert!((s.channel_rate[0] - 1.0).abs() < EPSILON);
        assert_eq!(s.channel_latency[0], Some(1));
    }

    #[test]
    fn undriven_channel_rate_is_zero() {
        let g = TestGraph::new(&[("boundary.o", 2)], &[], &[("o", 0)]).build();
        let s = solve(&g);
        assert_eq!(s.channel_rate[0], 0.0);
        assert_eq!(s.channel_latency[0], None);
    }

    #[test]
    fn cyclic_graph_terminates() {
        // a feedback loop: join's output feeds one of its own inputs
        // through a passthrough.
        let g = TestGraph::new(
            &[("boundary.i", 2), ("top.fb", 2), ("boundary.o", 2)],
            &[("i", 0)],
            &[("o", 2)],
        )
        .comp(
            "top.join",
            RateClass::Join,
            1.0,
            1,
            &[("a", 0), ("b", 1)],
            &[("o", 2)],
        )
        .comp(
            "top.loop",
            RateClass::Elementwise,
            1.0,
            1,
            &[("i", 2)],
            &[("o", 1)],
        )
        .build();
        let s = solve(&g);
        // The feedback arm never sees a first packet, so the join can
        // never fire: the cycle is statically starved.
        assert_eq!(s.channel_latency[2], None);
        assert!(s.channel_rate[2] <= 1.0);
    }
}
