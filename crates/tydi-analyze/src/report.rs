//! The analysis result: structured diagnostics, per-channel and
//! per-output bounds, a human-readable rendering, and a
//! machine-readable JSON document.
//!
//! The JSON follows the repository's hand-rolled convention (see
//! `tydi_bench::BenchReport`): string values are emitted with Rust's
//! debug escaping, which is JSON-compatible for the identifier-like
//! names that appear here, so no JSON library is needed.

use std::fmt;
use std::fmt::Write as _;

/// Diagnostic severity, ordered so `Error > Warning > Info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a bound or an observation, not a defect.
    Info,
    /// Likely performance problem; the design still makes progress.
    Warning,
    /// Structural condition that can wedge the design entirely.
    Error,
}

impl Severity {
    /// The lowercase name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a severity name (for CLI `--deny` values).
    pub fn parse(text: &str) -> Option<Severity> {
        match text {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// The hazard families the analysis can flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// A dependency cycle that bounded FIFOs can wedge.
    DeadlockableCycle,
    /// A merge point offered more than it can serve.
    FanInContention,
    /// A declared stream throughput the structure cannot deliver.
    RateMismatch,
    /// A join whose arrival skew exceeds the early arm's FIFO depth.
    CreditStarvation,
}

impl HazardKind {
    /// The kebab-case name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            HazardKind::DeadlockableCycle => "deadlockable-cycle",
            HazardKind::FanInContention => "fan-in-contention",
            HazardKind::RateMismatch => "rate-mismatch",
            HazardKind::CreditStarvation => "credit-starvation",
        }
    }
}

/// One structural hazard.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// The hazard family.
    pub kind: HazardKind,
    /// How bad it is.
    pub severity: Severity,
    /// The component path (or `path.port`) at the hazard site.
    pub component: Option<String>,
    /// The implementation declaring the hazard-site component, when
    /// the site maps to real (non-synthetic) user code. Lets callers
    /// point a source-span diagnostic at the declaration.
    pub impl_name: Option<String>,
    /// The channels involved, in simulator naming.
    pub channels: Vec<String>,
    /// Human-readable explanation.
    pub message: String,
}

/// The predicted bound for one channel.
#[derive(Debug, Clone)]
pub struct ChannelBound {
    /// Channel name (identical to the simulator's).
    pub name: String,
    /// FIFO capacity in packets.
    pub capacity: usize,
    /// Sustained-throughput upper bound in elements per cycle.
    pub elements_per_cycle: f64,
    /// Earliest-arrival lower bound in cycles; `None` if unreachable.
    pub min_latency: Option<u64>,
}

/// The predicted bound for one boundary output port.
#[derive(Debug, Clone)]
pub struct PortBound {
    /// Top-level port name.
    pub port: String,
    /// The boundary channel carrying it.
    pub channel: String,
    /// Sustained-throughput upper bound in elements per cycle.
    pub elements_per_cycle: f64,
    /// The bound scaled by the clock, when one was given.
    pub throughput_hz: Option<f64>,
    /// Pipeline-depth lower bound in cycles; `None` if unreachable.
    pub min_latency_cycles: Option<u64>,
    /// Declared peak rate from the port's stream type (lanes).
    pub declared_peak: Option<f64>,
    /// Declared minimum rate from the port's stream type (throughput).
    pub declared_min: Option<f64>,
}

/// How tight the bounds are believed to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// Every component had an exact service model: the bound should be
    /// close to the measured rate on a backpressure-free run.
    Exact,
    /// At least one component was modelled conservatively: the bound
    /// is sound but may be loose.
    UpperBound,
}

impl Confidence {
    /// The name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Confidence::Exact => "exact",
            Confidence::UpperBound => "upper-bound",
        }
    }
}

/// The channels that can transitively block one boundary output.
#[derive(Debug, Clone)]
pub struct StallCone {
    /// Top-level output port.
    pub port: String,
    /// Every channel whose congestion can reach the port, sorted.
    pub channels: Vec<String>,
}

/// The full result of a static analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Analyzed top-level implementation.
    pub top: String,
    /// Number of leaf components after flattening.
    pub components: usize,
    /// Per-channel bounds, in flattening order.
    pub channels: Vec<ChannelBound>,
    /// Per-output bounds.
    pub outputs: Vec<PortBound>,
    /// Detected hazards, most severe first.
    pub hazards: Vec<Hazard>,
    /// Per-output stall cones.
    pub stall_cones: Vec<StallCone>,
    /// Bound tightness.
    pub confidence: Confidence,
    /// Whether the rate fixpoint converged before its iteration cap.
    pub converged: bool,
}

impl AnalysisReport {
    /// The most severe hazard present, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.hazards.iter().map(|h| h.severity).max()
    }

    /// The hazards at or above a severity.
    pub fn hazards_at_least(&self, severity: Severity) -> impl Iterator<Item = &Hazard> {
        self.hazards.iter().filter(move |h| h.severity >= severity)
    }

    /// The predicted bound for a named output port.
    pub fn output(&self, port: &str) -> Option<&PortBound> {
        self.outputs.iter().find(|o| o.port == port)
    }

    /// The stall cone of a named output port.
    pub fn stall_cone(&self, port: &str) -> Option<&StallCone> {
        self.stall_cones.iter().find(|c| c.port == port)
    }

    /// Renders the machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"top\": {:?},", self.top);
        let _ = writeln!(out, "  \"confidence\": {:?},", self.confidence.name());
        let _ = writeln!(out, "  \"converged\": {},", self.converged);
        let _ = writeln!(out, "  \"components\": {},", self.components);
        out.push_str("  \"outputs\": [\n");
        for (i, o) in self.outputs.iter().enumerate() {
            let comma = if i + 1 == self.outputs.len() { "" } else { "," };
            let _ = write!(
                out,
                "    {{\"port\": {:?}, \"channel\": {:?}, \"elements_per_cycle\": {}",
                o.port,
                o.channel,
                num(o.elements_per_cycle)
            );
            if let Some(hz) = o.throughput_hz {
                let _ = write!(out, ", \"throughput_hz\": {}", num(hz));
            }
            if let Some(lat) = o.min_latency_cycles {
                let _ = write!(out, ", \"min_latency_cycles\": {lat}");
            }
            if let Some(peak) = o.declared_peak {
                let _ = write!(out, ", \"declared_peak\": {}", num(peak));
            }
            if let Some(min) = o.declared_min {
                let _ = write!(out, ", \"declared_min\": {}", num(min));
            }
            let _ = writeln!(out, "}}{comma}");
        }
        out.push_str("  ],\n");
        out.push_str("  \"channels\": [\n");
        for (i, c) in self.channels.iter().enumerate() {
            let comma = if i + 1 == self.channels.len() {
                ""
            } else {
                ","
            };
            let _ = write!(
                out,
                "    {{\"name\": {:?}, \"capacity\": {}, \"elements_per_cycle\": {}",
                c.name,
                c.capacity,
                num(c.elements_per_cycle)
            );
            if let Some(lat) = c.min_latency {
                let _ = write!(out, ", \"min_latency\": {lat}");
            }
            let _ = writeln!(out, "}}{comma}");
        }
        out.push_str("  ],\n");
        out.push_str("  \"hazards\": [\n");
        for (i, h) in self.hazards.iter().enumerate() {
            let comma = if i + 1 == self.hazards.len() { "" } else { "," };
            let _ = write!(
                out,
                "    {{\"kind\": {:?}, \"severity\": {:?}",
                h.kind.name(),
                h.severity.name()
            );
            if let Some(site) = &h.component {
                let _ = write!(out, ", \"at\": {site:?}");
            }
            if let Some(impl_name) = &h.impl_name {
                let _ = write!(out, ", \"impl\": {impl_name:?}");
            }
            let _ = write!(out, ", \"channels\": [");
            for (j, ch) in h.channels.iter().enumerate() {
                let inner = if j + 1 == h.channels.len() { "" } else { ", " };
                let _ = write!(out, "{ch:?}{inner}");
            }
            let _ = writeln!(out, "], \"message\": {:?}}}{comma}", h.message);
        }
        out.push_str("  ],\n");
        out.push_str("  \"stall_cones\": [\n");
        for (i, cone) in self.stall_cones.iter().enumerate() {
            let comma = if i + 1 == self.stall_cones.len() {
                ""
            } else {
                ","
            };
            let _ = write!(out, "    {{\"port\": {:?}, \"channels\": [", cone.port);
            for (j, ch) in cone.channels.iter().enumerate() {
                let inner = if j + 1 == cone.channels.len() {
                    ""
                } else {
                    ", "
                };
                let _ = write!(out, "{ch:?}{inner}");
            }
            let _ = writeln!(out, "]}}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Renders a float compactly: up to 4 decimals, trailing zeros
/// trimmed, matching the bench-report convention.
fn num(value: f64) -> String {
    let mut text = format!("{value:.4}");
    while text.contains('.') && (text.ends_with('0') || text.ends_with('.')) {
        text.pop();
    }
    text
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Static analysis of `{}`: {} components, {} channels, confidence {}",
            self.top,
            self.components,
            self.channels.len(),
            self.confidence.name()
        )?;
        writeln!(f, "  outputs:")?;
        for o in &self.outputs {
            write!(
                f,
                "    {:<12} <= {} elements/cycle",
                o.port,
                num(o.elements_per_cycle)
            )?;
            if let Some(hz) = o.throughput_hz {
                write!(f, " ({} Hz)", num(hz))?;
            }
            match o.min_latency_cycles {
                Some(lat) => writeln!(f, ", first element after >= {lat} cycles")?,
                None => writeln!(f, ", unreachable")?,
            }
        }
        if self.hazards.is_empty() {
            writeln!(f, "  no structural hazards")?;
        } else {
            writeln!(f, "  hazards:")?;
            for h in &self.hazards {
                writeln!(
                    f,
                    "    [{}] {}: {}",
                    h.severity.name(),
                    h.kind.name(),
                    h.message
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisReport {
        AnalysisReport {
            top: "top_i".into(),
            components: 2,
            channels: vec![ChannelBound {
                name: "boundary.o".into(),
                capacity: 2,
                elements_per_cycle: 0.25,
                min_latency: Some(5),
            }],
            outputs: vec![PortBound {
                port: "o".into(),
                channel: "boundary.o".into(),
                elements_per_cycle: 0.25,
                throughput_hz: Some(25_000_000.0),
                min_latency_cycles: Some(5),
                declared_peak: Some(1.0),
                declared_min: None,
            }],
            hazards: vec![Hazard {
                kind: HazardKind::FanInContention,
                severity: Severity::Warning,
                component: Some("top.mux".into()),
                impl_name: Some("mux_i".into()),
                channels: vec!["boundary.a".into(), "boundary.b".into()],
                message: "offered 2.000 but serves 1.000".into(),
            }],
            stall_cones: vec![StallCone {
                port: "o".into(),
                channels: vec!["boundary.o".into()],
            }],
            confidence: Confidence::Exact,
            converged: true,
        }
    }

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("bogus"), None);
        assert_eq!(Severity::Error.name(), "error");
    }

    #[test]
    fn report_queries() {
        let r = sample();
        assert_eq!(r.max_severity(), Some(Severity::Warning));
        assert_eq!(r.hazards_at_least(Severity::Error).count(), 0);
        assert_eq!(r.hazards_at_least(Severity::Info).count(), 1);
        assert!(r.output("o").is_some());
        assert!(r.output("ghost").is_none());
        assert_eq!(r.stall_cone("o").unwrap().channels.len(), 1);
    }

    #[test]
    fn json_is_well_formed_enough_to_grep() {
        let json = sample().to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"top\": \"top_i\""));
        assert!(json.contains("\"confidence\": \"exact\""));
        assert!(json.contains("\"kind\": \"fan-in-contention\""));
        assert!(json.contains("\"elements_per_cycle\": 0.25"));
        assert!(json.contains("\"throughput_hz\": 25000000"));
        // Balanced braces and brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn display_mentions_bounds_and_hazards() {
        let text = sample().to_string();
        assert!(text.contains("0.25 elements/cycle"));
        assert!(text.contains("[warning] fan-in-contention"));
        assert!(text.contains("first element after >= 5 cycles"));
    }
}
