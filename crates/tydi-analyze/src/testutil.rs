//! Shared test helper: hand-building pathological flow graphs.

use crate::flow::{FlowChannel, FlowComponent, FlowGraph, RateClass, ServiceModel};

/// Fluent builder for a [`FlowGraph`] out of explicit channels and
/// components, for hazard tests on shapes the frontend would never
/// produce.
pub(crate) struct TestGraph {
    graph: FlowGraph,
}

impl TestGraph {
    pub(crate) fn new(
        channels: &[(&str, usize)],
        boundary_inputs: &[(&str, usize)],
        boundary_outputs: &[(&str, usize)],
    ) -> Self {
        TestGraph {
            graph: FlowGraph {
                top: "top_i".into(),
                components: Vec::new(),
                channels: channels
                    .iter()
                    .map(|&(name, capacity)| FlowChannel {
                        name: name.into(),
                        capacity,
                        sources: Vec::new(),
                        sinks: Vec::new(),
                    })
                    .collect(),
                boundary_inputs: boundary_inputs
                    .iter()
                    .map(|&(p, c)| (p.to_string(), c))
                    .collect(),
                boundary_outputs: boundary_outputs
                    .iter()
                    .map(|&(p, c)| (p.to_string(), c))
                    .collect(),
            },
        }
    }

    /// Adds a component with the given service model.
    pub(crate) fn comp(
        mut self,
        path: &str,
        class: RateClass,
        service: f64,
        min_latency: u64,
        inputs: &[(&str, usize)],
        outputs: &[(&str, usize)],
    ) -> Self {
        let index = self.graph.components.len();
        for &(_, ch) in inputs {
            self.graph.channels[ch].sinks.push(index);
        }
        for &(_, ch) in outputs {
            self.graph.channels[ch].sources.push(index);
        }
        self.graph.components.push(FlowComponent {
            path: path.into(),
            impl_name: format!("{path}_i"),
            inputs: inputs.iter().map(|&(p, c)| (p.to_string(), c)).collect(),
            outputs: outputs.iter().map(|&(p, c)| (p.to_string(), c)).collect(),
            synthetic: false,
            model: ServiceModel {
                class,
                service,
                min_latency,
                exact: true,
                input_driven: class != RateClass::Source,
            },
        });
        self
    }

    pub(crate) fn build(self) -> FlowGraph {
        self.graph
    }
}
