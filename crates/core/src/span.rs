//! Source positions for diagnostics.

use std::fmt;
use std::sync::Arc;

/// A source file registered with the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// File name shown in diagnostics.
    pub name: Arc<str>,
    /// Full text.
    pub text: Arc<str>,
}

impl SourceFile {
    /// Creates a source file.
    pub fn new(name: impl AsRef<str>, text: impl AsRef<str>) -> Self {
        SourceFile {
            name: Arc::from(name.as_ref()),
            text: Arc::from(text.as_ref()),
        }
    }

    /// Converts a byte offset to 1-based (line, column).
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let clamped = offset.min(self.text.len());
        let mut line = 1;
        let mut col = 1;
        for (i, c) in self.text.char_indices() {
            if i >= clamped {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }

    /// Returns the text of the 1-based line, without the newline.
    pub fn line_text(&self, line: usize) -> Option<&str> {
        self.text.lines().nth(line.saturating_sub(1))
    }
}

/// A byte range within one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Index into the compiler's file table.
    pub file: usize,
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(file: usize, start: usize, end: usize) -> Self {
        Span { file, start, end }
    }

    /// A span covering both operands (must be in the same file).
    pub fn merge(self, other: Span) -> Span {
        Span {
            file: self.file,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// A zero-width placeholder span for synthesized nodes.
    pub fn synthetic() -> Span {
        Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basics() {
        let f = SourceFile::new("x.td", "ab\ncd\nef");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(1), (1, 2));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(7), (3, 2));
        assert_eq!(f.line_col(999), (3, 3));
    }

    #[test]
    fn line_text_lookup() {
        let f = SourceFile::new("x.td", "ab\ncd\nef");
        assert_eq!(f.line_text(2), Some("cd"));
        assert_eq!(f.line_text(9), None);
    }

    #[test]
    fn span_merge() {
        let a = Span::new(0, 3, 7);
        let b = Span::new(0, 5, 12);
        assert_eq!(a.merge(b), Span::new(0, 3, 12));
    }
}
