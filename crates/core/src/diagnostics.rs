//! Compiler diagnostics.
//!
//! Every stage of the pipeline reports problems as [`Diagnostic`]s with
//! a severity, a message and (when available) a source span. The DRC
//! report of paper Fig. 3 is a list of these.

use crate::span::{SourceFile, Span};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note (e.g. "sugaring inserted 3 duplicators").
    Note,
    /// Suspicious but compilable.
    Warning,
    /// Compilation cannot produce valid output.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One diagnostic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source location, when known.
    pub span: Option<Span>,
    /// The pipeline stage that produced this (e.g. `"parse"`, `"drc"`).
    pub stage: &'static str,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(stage: &'static str, message: impl Into<String>, span: Option<Span>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            stage,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(stage: &'static str, message: impl Into<String>, span: Option<Span>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            stage,
        }
    }

    /// Creates a note diagnostic.
    pub fn note(stage: &'static str, message: impl Into<String>, span: Option<Span>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            message: message.into(),
            span,
            stage,
        }
    }

    /// Renders the diagnostic against the file table, with a source
    /// excerpt when a span is available.
    pub fn render(&self, files: &[SourceFile]) -> String {
        let mut out = String::new();
        match self.span.and_then(|s| files.get(s.file).map(|f| (s, f))) {
            Some((span, file)) => {
                let (line, col) = file.line_col(span.start);
                out.push_str(&format!(
                    "{}: {} [{}] at {}:{}:{}\n",
                    self.severity, self.message, self.stage, file.name, line, col
                ));
                if let Some(text) = file.line_text(line) {
                    out.push_str(&format!("  | {text}\n"));
                    out.push_str(&format!("  | {}^\n", " ".repeat(col.saturating_sub(1))));
                }
            }
            None => {
                out.push_str(&format!(
                    "{}: {} [{}]\n",
                    self.severity, self.message, self.stage
                ));
            }
        }
        out
    }
}

/// Returns true when any diagnostic is an error.
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn render_with_span_points_at_column() {
        let files = vec![SourceFile::new("a.td", "const x = ;\n")];
        let d = Diagnostic::error("parse", "expected expression", Some(Span::new(0, 10, 11)));
        let rendered = d.render(&files);
        assert!(rendered.contains("a.td:1:11"));
        assert!(rendered.contains("const x = ;"));
        assert!(rendered.contains("^"));
    }

    #[test]
    fn render_without_span() {
        let d = Diagnostic::note("sugar", "inserted 2 voiders", None);
        assert!(d.render(&[]).contains("inserted 2 voiders"));
    }

    #[test]
    fn has_errors_detects() {
        let mut v = vec![Diagnostic::note("x", "n", None)];
        assert!(!has_errors(&v));
        v.push(Diagnostic::error("x", "e", None));
        assert!(has_errors(&v));
    }
}
