//! # tydi-lang
//!
//! The Tydi-lang compiler frontend — the primary contribution of
//! *"Tydi-lang: A Language for Typed Streaming Hardware"* (SC 2023).
//!
//! Tydi-lang is a high-level hardware description language for typed
//! streaming hardware. Source code describes logical types (paper
//! Table I), streamlets, implementations, immutable variables with a
//! math expression system, generative `for`/`if`/`assert` syntax
//! (paper Table II), and C++-class-template-like *templates* over
//! streamlets and implementations (paper §IV-B).
//!
//! The frontend follows the staged pipeline of paper Fig. 3:
//!
//! 1. **parse** — source text to abstract syntax tree;
//! 2. **evaluate** — constants, types and the math system;
//! 3. **expand** — template instantiation and generative syntax,
//!    producing concrete streamlets/implementations (code structure
//!    #2/#3);
//! 4. **sugar** — automatic duplicator/voider insertion (paper Fig. 4);
//! 5. **DRC** — the design-rule checks (strict type equality and
//!    exactly-once port usage);
//! 6. **IR generation** — a validated [`tydi_ir::Project`].
//!
//! The one-call entry point is [`compile`]:
//!
//! ```
//! use tydi_lang::{compile, CompileOptions};
//!
//! let source = r#"
//! package demo;
//! type Byte = Stream(Bit(8));
//! streamlet wire_s { i : Byte in, o : Byte out, }
//! impl wire_i of wire_s { i => o, }
//! "#;
//! let output = compile(&[("demo.td", source)], &CompileOptions::default()).unwrap();
//! assert!(output.project.implementation("wire_i").is_some());
//! ```

#![warn(missing_docs)]

pub mod ast;
#[cfg(feature = "baseline")]
#[doc(hidden)]
pub mod baseline;
pub mod cache;
pub mod diagnostics;
pub mod eval;
pub mod fingerprint;
pub mod instantiate;
pub mod lexer;
pub mod obs;
pub mod parser;
pub mod pipeline;
pub mod pretty;
pub mod scope;
pub mod session;
pub mod sim_ast;
pub mod span;
pub mod sugar;
pub mod token;
pub mod value;

pub use cache::{ArtifactCache, CacheLock, CACHE_DIR_NAME};
pub use diagnostics::{Diagnostic, Severity};
pub use fingerprint::Fingerprint;
pub use obs::publish_compile_metrics;
pub use pipeline::{compile, compile_with_cache, CompileOptions, CompileOutput, StageTimings};
pub use session::{ParsedUnit, Session, Stage, StageRecord};
pub use span::{SourceFile, Span};
pub use value::Value;

/// Parses simulation code (the body of a `simulation { ... }` block)
/// into its AST. Exposed for the `tydi-sim` crate.
pub fn parse_simulation(source: &str) -> Result<sim_ast::SimBlock, Vec<Diagnostic>> {
    parser::parse_simulation_source(source)
}
