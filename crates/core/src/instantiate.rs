//! Elaboration: evaluation, template instantiation and generative
//! expansion (paper Fig. 3, code structures #1 through #3).
//!
//! The elaborator walks every concrete (non-template) implementation,
//! lazily evaluating constants and types, instantiating streamlet and
//! implementation templates on demand, expanding `for`/`if` generative
//! statements and port/instance arrays, and emitting a
//! [`tydi_ir::Project`] directly.
//!
//! ## Hash-consed types and O(1) template identity
//!
//! Every logical type is built through the session's
//! [`TypeStore`]: structurally equal types share one [`TypeId`] (and
//! one `Arc<LogicalType>` allocation), so
//!
//! * the template-instantiation memo keys on `(declaration,
//!   argument ids/values)` — **no mangled type strings are built on
//!   the hot path**; the human-readable mangled instance name is
//!   produced once per cache miss from the store's cached text;
//! * repeated references to the same instantiation cost a handful of
//!   integer hashes regardless of how deep the argument types are;
//! * IR ports of equal types share their `Arc`, which the DRC and the
//!   fingerprinting layer exploit with pointer-equality fast paths.
//!
//! Declarations are stored as [`Arc<Decl>`] and resolved by cloning
//! the handle — the seed-path behaviour of deep-cloning whole
//! declaration trees per reference is preserved only in
//! [`crate::baseline`] for benchmarking.

use crate::ast::*;
use crate::diagnostics::Diagnostic;
use crate::eval::{eval_expr, EvalError, Resolver};
use crate::scope::ScopeFrames;
use crate::span::Span;
use crate::value::{ImplValue, TypeValue, Value};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tydi_ir::{
    Connection, EndpointRef, Implementation, Instance, Port, PortDirection, Project, Streamlet,
};
use tydi_spec::{
    ClockDomain, Complexity, Direction, LogicalType, StreamParams, Synchronicity, Throughput,
    TypeId, TypeStore, TypeStoreStats,
};

/// Side information the later pipeline stages need.
#[derive(Debug, Clone, Default)]
pub struct ElabInfo {
    /// Interner backing the span table keys: implementation names and
    /// connection descriptions are stored once as [`Symbol`]s instead
    /// of owned string pairs per connection.
    ///
    /// [`Symbol`]: tydi_ir::Symbol
    span_keys: tydi_ir::Interner,
    /// Span of each connection, keyed by interned
    /// `(impl name, "src => sink")` symbols, used to attach source
    /// locations to DRC findings.
    connection_spans: HashMap<(tydi_ir::Symbol, tydi_ir::Symbol), Span>,
    /// Declaration span of each elaborated implementation, keyed by
    /// its interned IR name, used to point analyzer hazards at the
    /// impl that declared the hazardous structure.
    impl_spans: HashMap<tydi_ir::Symbol, Span>,
    /// Number of template instantiations performed (cache misses).
    pub template_instantiations: usize,
    /// Number of template cache hits.
    pub template_cache_hits: usize,
    /// Hash-consing statistics of the session type store: distinct
    /// nodes interned, dedup hits, cached-expansion reuse.
    pub type_store: TypeStoreStats,
    /// How elaboration fanned out across packages.
    pub parallel: ParallelStats,
}

/// How the elaboration stage fanned out across the import DAG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Worker threads used for the widest import level (1 = the
    /// sequential fallback).
    pub threads: usize,
    /// Number of packages elaborated at each import-DAG level, root
    /// level first. Packages within one level share no `use` edge and
    /// elaborate concurrently.
    pub level_packages: Vec<usize>,
}

impl ElabInfo {
    /// An info carrying only template statistics — the shape restored
    /// from the on-disk artifact cache, where connection spans are not
    /// persisted (they are only consulted when the DRC fails, and
    /// cached artifacts passed the DRC).
    pub fn with_template_counts(instantiations: usize, cache_hits: usize) -> Self {
        ElabInfo {
            template_instantiations: instantiations,
            template_cache_hits: cache_hits,
            ..ElabInfo::default()
        }
    }

    /// Records the source span of a connection.
    pub fn record_connection_span(&mut self, impl_name: &str, connection: &str, span: Span) {
        let key = (
            self.span_keys.intern(impl_name),
            self.span_keys.intern(connection),
        );
        self.connection_spans.insert(key, span);
    }

    /// The source span of a connection, when known. Read-only: unknown
    /// names are not interned.
    pub fn connection_span(&self, impl_name: &str, connection: &str) -> Option<Span> {
        let key = (
            self.span_keys.get(impl_name)?,
            self.span_keys.get(connection)?,
        );
        self.connection_spans.get(&key).copied()
    }

    /// Number of recorded connection spans.
    pub fn connection_span_count(&self) -> usize {
        self.connection_spans.len()
    }

    /// Records the declaration span of an elaborated implementation.
    pub fn record_impl_span(&mut self, impl_name: &str, span: Span) {
        let key = self.span_keys.intern(impl_name);
        self.impl_spans.insert(key, span);
    }

    /// The declaration span of an elaborated implementation, when
    /// known. Cache-restored infos carry no spans (see
    /// [`ElabInfo::with_template_counts`]); callers fall back to
    /// span-less reporting.
    pub fn impl_span(&self, impl_name: &str) -> Option<Span> {
        let key = self.span_keys.get(impl_name)?;
        self.impl_spans.get(&key).copied()
    }

    /// Folds a worker's info into this one: spans are re-interned
    /// against this info's key table, counters are summed.
    fn merge_from(&mut self, other: &ElabInfo) {
        for ((impl_sym, conn_sym), span) in &other.connection_spans {
            let key = (
                self.span_keys.intern(other.span_keys.resolve(*impl_sym)),
                self.span_keys.intern(other.span_keys.resolve(*conn_sym)),
            );
            self.connection_spans.insert(key, *span);
        }
        for (impl_sym, span) in &other.impl_spans {
            let key = self.span_keys.intern(other.span_keys.resolve(*impl_sym));
            self.impl_spans.insert(key, *span);
        }
        self.template_instantiations += other.template_instantiations;
        self.template_cache_hits += other.template_cache_hits;
    }
}

/// Elaborates merged packages into an IR project.
///
/// Packages are partitioned by import-DAG level: a package's level is
/// one past the deepest package it (transitively) `use`s, so packages
/// within one level share no import edge and elaborate concurrently,
/// one worker per package, over the shared sharded [`TypeStore`].
/// The partitioning depends only on the program — never on the thread
/// count — and workers are merged in (level, package) order, so output
/// and diagnostics are byte-identical between `TYDI_THREADS=1` and
/// any parallel run.
pub fn elaborate(
    packages: Vec<Package>,
    project_name: &str,
) -> (Project, ElabInfo, Vec<Diagnostic>) {
    let (merged, package_index, mut diagnostics) = merge_packages(packages);
    let levels = import_levels(&merged, &package_index);
    let merged = Arc::new(merged);
    let package_index = Arc::new(package_index);
    let types = Arc::new(TypeStore::new());

    let mut project = Project::new(project_name);
    let mut info = ElabInfo::default();
    let mut value_cache: HashMap<DeclId, Value> = HashMap::new();
    let mut streamlet_cache: HashMap<(DeclId, Vec<ArgKey>), Arc<str>> = HashMap::new();
    let mut impl_cache: HashMap<(DeclId, Vec<ArgKey>), ImplValue> = HashMap::new();
    let mut merged_impl_prov: HashMap<String, (DeclId, Vec<ArgKey>)> = HashMap::new();
    let mut level_packages = Vec::with_capacity(levels.len());
    let mut threads = 1;

    for level in levels {
        level_packages.push(level.len());
        threads = threads.max(rayon::planned_threads(level.len()));
        // Every worker sees the caches as frozen at the level boundary;
        // same-level workers may redo a template the serial pass would
        // have shared, producing equal entities the merge dedups.
        let workers: Vec<Elaborator> = level
            .into_par_iter()
            .map(|pkg_idx| {
                let _span = tydi_obs::trace::span_named("core", || {
                    format!("elab:{}", merged[pkg_idx].name)
                });
                let mut worker = Elaborator::worker(
                    Arc::clone(&merged),
                    Arc::clone(&package_index),
                    Arc::clone(&types),
                    value_cache.clone(),
                    streamlet_cache.clone(),
                    impl_cache.clone(),
                );
                worker.run_package(pkg_idx);
                worker
            })
            .collect();
        for worker in workers {
            merge_worker(
                &mut project,
                &mut info,
                &mut diagnostics,
                &mut merged_impl_prov,
                worker,
                &mut value_cache,
                &mut streamlet_cache,
                &mut impl_cache,
            );
        }
    }

    info.type_store = types.stats();
    info.parallel = ParallelStats {
        threads,
        level_packages,
    };
    (project, info, diagnostics)
}

/// Merges parsed packages by name (later files extend earlier ones),
/// reporting duplicate declarations within a package.
fn merge_packages(
    packages: Vec<Package>,
) -> (Vec<MergedPackage>, HashMap<String, usize>, Vec<Diagnostic>) {
    let mut merged: Vec<MergedPackage> = Vec::new();
    let mut package_index = HashMap::new();
    let mut diagnostics = Vec::new();
    for package in packages {
        let idx = match package_index.get(&package.name) {
            Some(&i) => i,
            None => {
                package_index.insert(package.name.clone(), merged.len());
                merged.push(MergedPackage {
                    name: package.name.clone(),
                    uses: Vec::new(),
                    decls: Vec::new(),
                    index: HashMap::new(),
                });
                merged.len() - 1
            }
        };
        let target = &mut merged[idx];
        for used in package.uses {
            if !target.uses.contains(&used) {
                target.uses.push(used);
            }
        }
        for decl in package.decls {
            if let Some(name) = decl.name() {
                if target.index.contains_key(name) {
                    diagnostics.push(Diagnostic::error(
                        "evaluate",
                        format!(
                            "duplicate declaration `{name}` in package `{}`",
                            target.name
                        ),
                        decl_span(&decl),
                    ));
                    continue;
                }
                target.index.insert(name.to_string(), target.decls.len());
            }
            target.decls.push(Arc::new(decl));
        }
    }
    (merged, package_index, diagnostics)
}

/// Assigns each package its import-DAG level: `1 + max(level of used
/// packages)`, roots at 0. Computed by bounded relaxation; unknown
/// imports are ignored (they diagnose during name resolution) and
/// `use` cycles stop relaxing at the pass cap — correctness does not
/// depend on level assignment, only cache reuse does.
fn import_levels(packages: &[MergedPackage], index: &HashMap<String, usize>) -> Vec<Vec<usize>> {
    let n = packages.len();
    let mut level = vec![0usize; n];
    for _ in 0..n {
        let mut changed = false;
        for (i, pkg) in packages.iter().enumerate() {
            for used in &pkg.uses {
                if let Some(&dep) = index.get(used) {
                    if dep != i && level[i] <= level[dep] {
                        level[i] = level[dep] + 1;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let depth = level.iter().copied().max().map_or(0, |m| m + 1);
    let mut levels = vec![Vec::new(); depth];
    for (i, &l) in level.iter().enumerate() {
        levels[l].push(i);
    }
    levels.retain(|group| !group.is_empty());
    levels
}

/// Folds one finished worker into the final project, in deterministic
/// (level, package) order. Entities two workers both elaborated merge
/// by provenance: same declaration and template arguments → one copy,
/// silently; same name from different declarations → the same
/// duplicate-definition diagnostic the serial pass produced.
#[allow(clippy::too_many_arguments)]
fn merge_worker(
    project: &mut Project,
    info: &mut ElabInfo,
    diagnostics: &mut Vec<Diagnostic>,
    merged_impl_prov: &mut HashMap<String, (DeclId, Vec<ArgKey>)>,
    worker: Elaborator,
    value_cache: &mut HashMap<DeclId, Value>,
    streamlet_cache: &mut HashMap<(DeclId, Vec<ArgKey>), Arc<str>>,
    impl_cache: &mut HashMap<(DeclId, Vec<ArgKey>), ImplValue>,
) {
    for streamlet in worker.project.streamlets() {
        // Mirrors the serial `streamlet().is_none()` guard: equal
        // names always denote the same elaborated streamlet (the name
        // is the template mangling), so the first copy wins silently.
        if project.streamlet(&streamlet.name).is_none() {
            project
                .add_streamlet(streamlet.clone())
                .expect("absence just checked");
        }
    }
    for imp in worker.project.implementations() {
        let prov = worker.impl_prov.get(imp.name.as_str());
        if let Some(existing) = merged_impl_prov.get(imp.name.as_str()) {
            if prov.is_some_and(|(key, _)| key == existing) {
                continue; // same decl + args elaborated twice in parallel
            }
        }
        match project.add_implementation(imp.clone()) {
            Ok(_) => {
                if let Some((key, _)) = prov {
                    merged_impl_prov.insert(imp.name.clone(), key.clone());
                }
            }
            Err(e) => {
                let span = prov.map(|(_, span)| *span);
                diagnostics.push(Diagnostic::error("evaluate", e.to_string(), span));
            }
        }
    }
    diagnostics.extend(worker.diagnostics);
    info.merge_from(&worker.info);
    value_cache.extend(worker.value_cache);
    streamlet_cache.extend(worker.streamlet_cache);
    impl_cache.extend(worker.impl_cache);
}

/// A declaration's identity: owning package plus index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DeclId {
    package: usize,
    decl: usize,
}

/// A template memo key: the declaration plus its evaluated argument
/// list in compact form. Type arguments key on their [`TypeId`] —
/// hashing one is an integer op, however deep the tree behind it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ArgKey {
    Int(i64),
    /// Float bit pattern (mangling distinguishes `1` from `1.0` too).
    Float(u64),
    Str(String),
    Bool(bool),
    Clock(String),
    Array(Vec<ArgKey>),
    Type(TypeId),
    Impl(Arc<str>),
}

impl ArgKey {
    fn of(value: &Value) -> ArgKey {
        match value {
            Value::Int(v) => ArgKey::Int(*v),
            Value::Float(v) => ArgKey::Float(v.to_bits()),
            Value::Str(s) => ArgKey::Str(s.clone()),
            Value::Bool(b) => ArgKey::Bool(*b),
            Value::Clock(c) => ArgKey::Clock(c.name().to_string()),
            Value::Array(items) => ArgKey::Array(items.iter().map(ArgKey::of).collect()),
            Value::Type(t) => ArgKey::Type(t.id),
            Value::Impl(i) => ArgKey::Impl(Arc::clone(&i.name)),
        }
    }

    fn of_bindings(bindings: &[(String, Value)]) -> Vec<ArgKey> {
        bindings.iter().map(|(_, v)| ArgKey::of(v)).collect()
    }
}

struct MergedPackage {
    name: String,
    uses: Vec<String>,
    /// Declarations behind shared handles: resolving a reference
    /// clones the `Arc`, never the tree.
    decls: Vec<Arc<Decl>>,
    index: HashMap<String, usize>,
}

/// One elaboration worker: owns a package's outputs (project slice,
/// diagnostics, cache additions) while sharing the merged ASTs and the
/// type store with every other worker of the run.
struct Elaborator {
    packages: Arc<Vec<MergedPackage>>,
    package_index: Arc<HashMap<String, usize>>,
    project: Project,
    info: ElabInfo,
    diagnostics: Vec<Diagnostic>,
    /// The session's hash-consed type store, shared across workers.
    types: Arc<TypeStore>,
    /// Evaluated global consts / types, keyed by declaration.
    value_cache: HashMap<DeclId, Value>,
    /// Cycle detection for lazy global evaluation.
    evaluating: HashSet<DeclId>,
    /// Elaborated streamlet templates: (decl, args) -> IR name.
    streamlet_cache: HashMap<(DeclId, Vec<ArgKey>), Arc<str>>,
    /// Elaborated implementations: (decl, args) -> value.
    impl_cache: HashMap<(DeclId, Vec<ArgKey>), ImplValue>,
    /// Provenance of every implementation added to this worker's
    /// project, for cross-worker dedup during the merge.
    impl_prov: HashMap<String, ((DeclId, Vec<ArgKey>), Span)>,
    /// Local scope frames (template args, for-vars, local consts).
    locals: ScopeFrames,
    /// The package whose scope we are currently elaborating in.
    current_package: usize,
}

/// Maximum template/instantiation recursion before assuming runaway
/// recursion (e.g. a template instantiating itself).
const MAX_DEPTH: usize = 64;

impl Elaborator {
    /// A worker over the shared merged packages, seeded with the
    /// caches as frozen at its import level's boundary.
    fn worker(
        packages: Arc<Vec<MergedPackage>>,
        package_index: Arc<HashMap<String, usize>>,
        types: Arc<TypeStore>,
        value_cache: HashMap<DeclId, Value>,
        streamlet_cache: HashMap<(DeclId, Vec<ArgKey>), Arc<str>>,
        impl_cache: HashMap<(DeclId, Vec<ArgKey>), ImplValue>,
    ) -> Self {
        Elaborator {
            packages,
            package_index,
            project: Project::new("worker"),
            info: ElabInfo::default(),
            diagnostics: Vec::new(),
            types,
            value_cache,
            evaluating: HashSet::new(),
            streamlet_cache,
            impl_cache,
            impl_prov: HashMap::new(),
            locals: ScopeFrames::new(),
            current_package: 0,
        }
    }

    /// Elaborates every concrete (non-template) impl and streamlet of
    /// one package, and checks its top-level asserts, in declaration
    /// order. Cross-package references resolve through the shared ASTs
    /// and land in this worker's project unless already cached.
    fn run_package(&mut self, pkg_idx: usize) {
        self.current_package = pkg_idx;
        for decl_idx in 0..self.packages[pkg_idx].decls.len() {
            let decl = Arc::clone(&self.packages[pkg_idx].decls[decl_idx]);
            let id = DeclId {
                package: pkg_idx,
                decl: decl_idx,
            };
            match &*decl {
                Decl::Assert {
                    expr,
                    message,
                    span,
                } => self.check_assert(expr, message.as_ref(), *span),
                Decl::Streamlet(s) if s.params.is_empty() => {
                    self.elaborate_streamlet(id, s, &[], 0);
                }
                Decl::Impl(i) if i.params.is_empty() => {
                    self.elaborate_impl(id, i, &[], 0);
                }
                _ => {}
            }
        }
    }

    // ---- diagnostics helpers ---------------------------------------------

    fn error(&mut self, message: impl Into<String>, span: Span) {
        self.diagnostics
            .push(Diagnostic::error("evaluate", message, Some(span)));
    }

    fn eval_error(&mut self, e: EvalError) {
        self.diagnostics
            .push(Diagnostic::error("evaluate", e.message, Some(e.span)));
    }

    // ---- name resolution ----------------------------------------------------

    /// Finds a declaration visible from `pkg`: its own declarations
    /// first, then everything imported with `use`. No allocation on
    /// the success path — the import list is walked in place.
    fn find_decl(&mut self, pkg: usize, name: &str, span: Span) -> Option<DeclId> {
        if let Some(&decl) = self.packages[pkg].index.get(name) {
            return Some(DeclId { package: pkg, decl });
        }
        let mut found: Option<DeclId> = None;
        let mut pending: Vec<String> = Vec::new();
        let mut ambiguous = false;
        for ui in 0..self.packages[pkg].uses.len() {
            let used = self.packages[pkg].uses[ui].as_str();
            let Some(&used_idx) = self.package_index.get(used) else {
                pending.push(format!("use of unknown package `{used}`"));
                continue;
            };
            if let Some(&decl) = self.packages[used_idx].index.get(name) {
                if let Some(previous) = found {
                    let a = &self.packages[previous.package].name;
                    let b = &self.packages[used_idx].name;
                    pending.push(format!(
                        "`{name}` is ambiguous: defined in both `{a}` and `{b}`"
                    ));
                    ambiguous = true;
                    break;
                }
                found = Some(DeclId {
                    package: used_idx,
                    decl,
                });
            }
        }
        for message in pending {
            self.error(message, span);
        }
        if ambiguous {
            return None;
        }
        found
    }

    /// Lazily evaluates a global declaration to a value.
    fn global_value(&mut self, id: DeclId, span: Span) -> Result<Value, EvalError> {
        if let Some(v) = self.value_cache.get(&id) {
            return Ok(v.clone());
        }
        if !self.evaluating.insert(id) {
            let name = self.packages[id.package].decls[id.decl]
                .name()
                .unwrap_or("<unnamed>")
                .to_string();
            return Err(EvalError::new(
                format!("cyclic definition involving `{name}`"),
                span,
            ));
        }
        let saved_package = self.current_package;
        self.current_package = id.package;
        let decl = Arc::clone(&self.packages[id.package].decls[id.decl]);
        let result = match &*decl {
            Decl::Const(c) => {
                let value = eval_expr(&c.value, self);
                match value {
                    Ok(v) => self.check_var_kind(&c.name, c.kind.as_ref(), v, c.span),
                    Err(e) => Err(e),
                }
            }
            Decl::TypeAlias { name, ty, span } => {
                let qualified = format!("{}.{}", self.packages[id.package].name, name);
                self.elaborate_type(ty, 0)
                    .map(|tv| Value::Type(tv.with_origin(qualified)))
                    .map_err(|e| EvalError::new(e.message, *span))
            }
            Decl::Group { name, fields, span } | Decl::Union { name, fields, span } => {
                let qualified = format!("{}.{}", self.packages[id.package].name, name);
                let is_group = matches!(&*decl, Decl::Group { .. });
                let mut out_fields = Vec::with_capacity(fields.len());
                let mut failed = None;
                for (field_name, field_ty) in fields {
                    match self.elaborate_type(field_ty, 0) {
                        Ok(tv) => out_fields.push((field_name.clone(), tv.id)),
                        Err(e) => {
                            failed = Some(EvalError::new(e.message, *span));
                            break;
                        }
                    }
                }
                match failed {
                    Some(e) => Err(e),
                    None => {
                        let composed = if is_group {
                            self.types.group(out_fields)
                        } else {
                            self.types.union(out_fields)
                        };
                        match composed {
                            Ok(ty_id) => {
                                Ok(Value::Type(self.type_value(ty_id).with_origin(qualified)))
                            }
                            Err(e) => Err(EvalError::new(e.to_string(), *span)),
                        }
                    }
                }
            }
            Decl::Impl(i) if i.params.is_empty() => match self.elaborate_impl(id, i, &[], 0) {
                Some(v) => Ok(Value::Impl(v)),
                None => Err(EvalError::new(
                    format!("implementation `{}` failed to elaborate", i.name),
                    span,
                )),
            },
            Decl::Impl(i) => Err(EvalError::new(
                format!("`{}` is a template and needs arguments", i.name),
                span,
            )),
            Decl::Streamlet(s) => Err(EvalError::new(
                format!("`{}` is a streamlet, not a value", s.name),
                span,
            )),
            Decl::Assert { .. } => Err(EvalError::new("asserts are not values", span)),
        };
        self.current_package = saved_package;
        self.evaluating.remove(&id);
        if let Ok(v) = &result {
            self.value_cache.insert(id, v.clone());
        }
        result
    }

    fn check_var_kind(
        &mut self,
        name: &str,
        kind: Option<&VarKind>,
        value: Value,
        span: Span,
    ) -> Result<Value, EvalError> {
        let Some(kind) = kind else {
            return Ok(value);
        };
        if var_kind_matches(kind, &value) {
            Ok(value)
        } else {
            Err(EvalError::new(
                format!(
                    "const `{name}` declared as {} but initializer is {}",
                    var_kind_name(kind),
                    value.kind_name()
                ),
                span,
            ))
        }
    }

    fn check_assert(&mut self, expr: &Expr, message: Option<&Expr>, span: Span) {
        match eval_expr(expr, self) {
            Ok(Value::Bool(true)) => {}
            Ok(Value::Bool(false)) => {
                let text = message
                    .and_then(|m| eval_expr(m, self).ok())
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "assertion failed".to_string());
                self.error(format!("assert failed: {text}"), span);
            }
            Ok(other) => {
                self.error(
                    format!("assert condition must be bool, got {}", other.kind_name()),
                    span,
                );
            }
            Err(e) => self.eval_error(e),
        }
    }

    // ---- types --------------------------------------------------------------

    /// Wraps an interned id as an anonymous [`TypeValue`].
    fn type_value(&self, id: TypeId) -> TypeValue {
        TypeValue::from_id(&self.types, id)
    }

    fn elaborate_type(&mut self, ty: &TypeExpr, depth: usize) -> Result<TypeValue, EvalError> {
        if depth > MAX_DEPTH {
            return Err(EvalError::new("type nesting too deep", ty.span()));
        }
        match ty {
            TypeExpr::Null(_) => {
                let id = self.types.null();
                Ok(self.type_value(id))
            }
            TypeExpr::Bit(width, span) => {
                let w = eval_expr(width, self)?;
                let w = w.as_int().ok_or_else(|| {
                    EvalError::new(
                        format!("Bit width must be an int, got {}", w.kind_name()),
                        *span,
                    )
                })?;
                if w <= 0 || w > u32::MAX as i64 {
                    return Err(EvalError::new(
                        format!("Bit width must be positive, got {w}"),
                        *span,
                    ));
                }
                let id = self
                    .types
                    .bit(w as u32)
                    .expect("positive width is always valid");
                Ok(self.type_value(id))
            }
            TypeExpr::Ref(name, span) => {
                let v = self.lookup(name, *span)?;
                match v {
                    Value::Type(tv) => Ok(tv),
                    other => Err(EvalError::new(
                        format!("`{name}` is a {}, not a type", other.kind_name()),
                        *span,
                    )),
                }
            }
            TypeExpr::Stream {
                element,
                args,
                span,
            } => {
                let element_tv = self.elaborate_type(element, depth + 1)?;
                let mut params = StreamParams::new();
                let mut user: Option<TypeId> = None;
                for arg in args {
                    match arg {
                        StreamArg::Dimension(e) => {
                            let v = eval_expr(e, self)?;
                            let d = v.as_int().ok_or_else(|| {
                                EvalError::new("dimension must be an int", e.span())
                            })?;
                            if !(0..=32).contains(&d) {
                                return Err(EvalError::new(
                                    format!("dimension must be in 0..=32, got {d}"),
                                    e.span(),
                                ));
                            }
                            params.dimension = d as u32;
                        }
                        StreamArg::Throughput(e) => {
                            let v = eval_expr(e, self)?;
                            let t = v.as_f64().ok_or_else(|| {
                                EvalError::new("throughput must be numeric", e.span())
                            })?;
                            params.throughput = Throughput::from_f64(t)
                                .map_err(|err| EvalError::new(err.to_string(), e.span()))?;
                        }
                        StreamArg::Complexity(e) => {
                            let v = eval_expr(e, self)?;
                            let c = v.as_int().ok_or_else(|| {
                                EvalError::new("complexity must be an int", e.span())
                            })?;
                            let c = u8::try_from(c)
                                .map_err(|_| EvalError::new("complexity out of range", e.span()))?;
                            params.complexity = Complexity::new(c)
                                .map_err(|err| EvalError::new(err.to_string(), e.span()))?;
                        }
                        StreamArg::Direction(word, dspan) => {
                            params.direction = match word.as_str() {
                                "Forward" => Direction::Forward,
                                "Reverse" => Direction::Reverse,
                                other => {
                                    return Err(EvalError::new(
                                        format!("unknown direction `{other}`"),
                                        *dspan,
                                    ))
                                }
                            };
                        }
                        StreamArg::Synchronicity(word, sspan) => {
                            params.synchronicity = match word.as_str() {
                                "Sync" => Synchronicity::Sync,
                                "Flatten" => Synchronicity::Flatten,
                                "Desync" => Synchronicity::Desync,
                                "FlatDesync" => Synchronicity::FlatDesync,
                                other => {
                                    return Err(EvalError::new(
                                        format!("unknown synchronicity `{other}`"),
                                        *sspan,
                                    ))
                                }
                            };
                        }
                        StreamArg::User(t) => {
                            let tv = self.elaborate_type(t, depth + 1)?;
                            user = Some(tv.id);
                        }
                        StreamArg::Keep(e) => {
                            let v = eval_expr(e, self)?;
                            params.keep = v
                                .as_bool()
                                .ok_or_else(|| EvalError::new("keep must be a bool", e.span()))?;
                        }
                    }
                }
                let id = self
                    .types
                    .stream(element_tv.id, params, user)
                    .map_err(|e| EvalError::new(e.to_string(), *span))?;
                Ok(self.type_value(id))
            }
        }
    }

    // ---- templates ----------------------------------------------------------

    /// Evaluates instantiation-site template arguments against the
    /// declared parameters, returning name/value bindings.
    fn bind_template_args(
        &mut self,
        owner: &str,
        params: &[TemplateParam],
        args: &[TemplateArgExpr],
        span: Span,
        depth: usize,
    ) -> Result<Vec<(String, Value)>, EvalError> {
        if params.len() != args.len() {
            return Err(EvalError::new(
                format!(
                    "`{owner}` expects {} template argument(s), got {}",
                    params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let mut bindings = Vec::with_capacity(params.len());
        for (param, arg) in params.iter().zip(args) {
            let value = match (&param.kind, arg) {
                (TemplateParamKind::Type, TemplateArgExpr::Type(t)) => {
                    Value::Type(self.elaborate_type(t, depth)?)
                }
                (TemplateParamKind::ImplOf(bound), TemplateArgExpr::Impl(r)) => {
                    let impl_value = self.evaluate_impl_ref(r, depth + 1)?;
                    if impl_value.streamlet_base.as_ref() != bound {
                        return Err(EvalError::new(
                            format!(
                                "template argument `{}` must be an impl of `{bound}`, but `{}` implements `{}`",
                                param.name, impl_value.name, impl_value.streamlet_base
                            ),
                            r.span,
                        ));
                    }
                    Value::Impl(impl_value)
                }
                (kind, TemplateArgExpr::Value(e)) => {
                    let v = eval_expr(e, self)?;
                    let ok = match kind {
                        TemplateParamKind::Int => matches!(v, Value::Int(_)),
                        TemplateParamKind::Float => v.is_numeric(),
                        TemplateParamKind::Str => matches!(v, Value::Str(_)),
                        TemplateParamKind::Bool => matches!(v, Value::Bool(_)),
                        TemplateParamKind::Clock => matches!(v, Value::Clock(_)),
                        _ => false,
                    };
                    if !ok {
                        return Err(EvalError::new(
                            format!(
                                "template argument `{}` expects {}, got {}",
                                param.name,
                                template_kind_name(kind),
                                v.kind_name()
                            ),
                            e.span(),
                        ));
                    }
                    // Widen int literals for float parameters.
                    if matches!(kind, TemplateParamKind::Float) {
                        Value::Float(v.as_f64().unwrap())
                    } else {
                        v
                    }
                }
                (kind, _) => {
                    return Err(EvalError::new(
                        format!(
                            "template argument `{}` expects {} (prefix `type`/`impl` arguments accordingly)",
                            param.name,
                            template_kind_name(kind)
                        ),
                        span,
                    ))
                }
            };
            bindings.push((param.name.clone(), value));
        }
        Ok(bindings)
    }

    /// Builds the human-readable mangled instance name. Called once
    /// per cache **miss** — cache hits never reach this. Type
    /// arguments splice in the store's cached text.
    fn mangle(&self, base: &str, bindings: &[(String, Value)]) -> String {
        if bindings.is_empty() {
            base.to_string()
        } else {
            let args: Vec<String> = bindings.iter().map(|(_, v)| v.mangle()).collect();
            format!("{base}<{}>", args.join(","))
        }
    }

    /// Resolves a streamlet reference to (IR name, base name).
    fn evaluate_streamlet_ref(
        &mut self,
        r: &NamedRef,
        depth: usize,
    ) -> Result<(Arc<str>, String), EvalError> {
        if depth > MAX_DEPTH {
            return Err(EvalError::new("instantiation recursion too deep", r.span));
        }
        let id = self
            .find_decl(self.current_package, &r.name, r.span)
            .ok_or_else(|| EvalError::new(format!("unknown streamlet `{}`", r.name), r.span))?;
        let decl = Arc::clone(&self.packages[id.package].decls[id.decl]);
        let Decl::Streamlet(s) = &*decl else {
            return Err(EvalError::new(
                format!("`{}` is not a streamlet", r.name),
                r.span,
            ));
        };
        let bindings = self.bind_template_args(&r.name, &s.params, &r.args, r.span, depth)?;
        match self.elaborate_streamlet(id, s, &bindings, depth) {
            Some(ir_name) => Ok((ir_name, s.name.clone())),
            None => Err(EvalError::new(
                format!("streamlet `{}` failed to elaborate", r.name),
                r.span,
            )),
        }
    }

    /// Resolves an implementation reference to an [`ImplValue`].
    fn evaluate_impl_ref(&mut self, r: &NamedRef, depth: usize) -> Result<ImplValue, EvalError> {
        if depth > MAX_DEPTH {
            return Err(EvalError::new("instantiation recursion too deep", r.span));
        }
        // A bare name may be a local binding (template parameter of
        // kind `impl of ...`) or a global concrete impl.
        if r.args.is_empty() {
            if let Some(v) = self.locals.get(&r.name).cloned() {
                return match v {
                    Value::Impl(iv) => Ok(iv),
                    other => Err(EvalError::new(
                        format!("`{}` is a {}, not an impl", r.name, other.kind_name()),
                        r.span,
                    )),
                };
            }
        }
        let id = self
            .find_decl(self.current_package, &r.name, r.span)
            .ok_or_else(|| {
                EvalError::new(format!("unknown implementation `{}`", r.name), r.span)
            })?;
        let decl = Arc::clone(&self.packages[id.package].decls[id.decl]);
        let Decl::Impl(i) = &*decl else {
            return Err(EvalError::new(
                format!("`{}` is not an implementation", r.name),
                r.span,
            ));
        };
        let bindings = self.bind_template_args(&r.name, &i.params, &r.args, r.span, depth)?;
        self.elaborate_impl(id, i, &bindings, depth).ok_or_else(|| {
            EvalError::new(
                format!("implementation `{}` failed to elaborate", r.name),
                r.span,
            )
        })
    }

    /// Elaborates a streamlet with bound template arguments; returns
    /// the IR streamlet name.
    fn elaborate_streamlet(
        &mut self,
        id: DeclId,
        s: &StreamletDecl,
        bindings: &[(String, Value)],
        depth: usize,
    ) -> Option<Arc<str>> {
        let key = (id, ArgKey::of_bindings(bindings));
        if let Some(existing) = self.streamlet_cache.get(&key) {
            self.info.template_cache_hits += 1;
            return Some(Arc::clone(existing));
        }
        if !bindings.is_empty() {
            self.info.template_instantiations += 1;
        }
        let ir_name: Arc<str> = Arc::from(self.mangle(&s.name, bindings).as_str());

        let saved_package = self.current_package;
        self.current_package = id.package;
        self.locals.push();
        for (name, value) in bindings {
            self.locals.define(name, value.clone());
        }

        let mut streamlet = Streamlet::new(ir_name.as_ref());
        streamlet.doc = s.doc.clone();
        let mut ok = true;
        for port in &s.ports {
            let tv = match self.elaborate_type(&port.ty, depth + 1) {
                Ok(tv) => tv,
                Err(e) => {
                    self.eval_error(e);
                    ok = false;
                    continue;
                }
            };
            if !matches!(*tv.ty, LogicalType::Stream { .. }) {
                self.error(
                    format!(
                        "port `{}` must bind a Stream type, got `{}`",
                        port.name, tv.ty
                    ),
                    port.span,
                );
                ok = false;
                continue;
            }
            let clock = match &port.clock {
                None => ClockDomain::default(),
                Some(ClockSpec::Named(name, _)) => ClockDomain::new(name),
                Some(ClockSpec::Expr(e)) => match eval_expr(e, self) {
                    Ok(Value::Clock(c)) => c,
                    Ok(other) => {
                        self.error(
                            format!(
                                "clock annotation must be a clockdomain, got {}",
                                other.kind_name()
                            ),
                            e.span(),
                        );
                        ok = false;
                        continue;
                    }
                    Err(e) => {
                        self.eval_error(e);
                        ok = false;
                        continue;
                    }
                },
            };
            let direction = match port.direction {
                PortDir::In => PortDirection::In,
                PortDir::Out => PortDirection::Out,
            };
            let count = match &port.array {
                None => None,
                Some(e) => match eval_expr(e, self) {
                    Ok(Value::Int(n)) if (1..=4096).contains(&n) => Some(n as usize),
                    Ok(Value::Int(n)) => {
                        self.error(
                            format!("port array size must be in 1..=4096, got {n}"),
                            e.span(),
                        );
                        ok = false;
                        continue;
                    }
                    Ok(other) => {
                        self.error(
                            format!("port array size must be an int, got {}", other.kind_name()),
                            e.span(),
                        );
                        ok = false;
                        continue;
                    }
                    Err(e) => {
                        self.eval_error(e);
                        ok = false;
                        continue;
                    }
                },
            };
            // Equal port types share one `Arc` via the store: no deep
            // clone per port, and downstream pointer-equality fast
            // paths (DRC, fingerprints) hit.
            let make_port = |name: String| {
                let mut p =
                    Port::from_arc(name, direction, Arc::clone(&tv.ty)).with_clock(clock.clone());
                p.type_origin = tv.origin.as_ref().map(|o| o.as_ref().to_string());
                p
            };
            match count {
                None => streamlet.ports.push(make_port(port.name.clone())),
                Some(n) => {
                    for i in 0..n {
                        streamlet
                            .ports
                            .push(make_port(format!("{}_{i}", port.name)));
                    }
                }
            }
        }

        self.locals.pop();
        self.current_package = saved_package;

        if !ok {
            return None;
        }
        if self.project.streamlet(&ir_name).is_none() {
            if let Err(e) = self.project.add_streamlet(streamlet) {
                self.error(e.to_string(), s.span);
                return None;
            }
        }
        self.streamlet_cache.insert(key, Arc::clone(&ir_name));
        Some(ir_name)
    }

    /// Elaborates an implementation with bound template arguments.
    fn elaborate_impl(
        &mut self,
        id: DeclId,
        i: &ImplDecl,
        bindings: &[(String, Value)],
        depth: usize,
    ) -> Option<ImplValue> {
        let key = (id, ArgKey::of_bindings(bindings));
        if let Some(existing) = self.impl_cache.get(&key) {
            self.info.template_cache_hits += 1;
            return Some(existing.clone());
        }
        if !bindings.is_empty() {
            self.info.template_instantiations += 1;
        }
        let ir_name: Arc<str> = Arc::from(self.mangle(&i.name, bindings).as_str());
        self.info.record_impl_span(ir_name.as_ref(), i.span);
        if depth > MAX_DEPTH {
            self.error("instantiation recursion too deep", i.span);
            return None;
        }

        let saved_package = self.current_package;
        self.current_package = id.package;
        self.locals.push();
        for (name, value) in bindings {
            self.locals.define(name, value.clone());
        }

        // Resolve the streamlet this impl realizes (its template args
        // may reference our bindings).
        let streamlet = match self.evaluate_streamlet_ref(&i.streamlet, depth + 1) {
            Ok(v) => v,
            Err(e) => {
                self.eval_error(e);
                self.locals.pop();
                self.current_package = saved_package;
                return None;
            }
        };
        let (streamlet_ir, streamlet_base) = streamlet;

        // Pre-register in the cache so self-references inside the body
        // fail fast rather than recursing forever.
        let value = ImplValue {
            name: Arc::clone(&ir_name),
            streamlet: Arc::clone(&streamlet_ir),
            streamlet_base: Arc::from(streamlet_base.as_str()),
        };
        self.impl_cache.insert(key.clone(), value.clone());

        let mut implementation = match &i.body {
            ImplBody::External { simulation } => {
                let mut imp = Implementation::external(ir_name.as_ref(), streamlet_ir.as_ref());
                if let Some(sim) = simulation {
                    imp = imp.with_sim_source(sim.source.clone());
                }
                imp
            }
            ImplBody::Normal(_) => Implementation::normal(ir_name.as_ref(), streamlet_ir.as_ref()),
        };
        implementation.doc = i.doc.clone();

        // Attributes: @builtin("key"), @NoStrictType, etc.
        for attr in &i.attributes {
            match attr.name.as_str() {
                "builtin" => {
                    let Some(arg) = &attr.arg else {
                        self.error("@builtin requires a string argument", attr.span);
                        continue;
                    };
                    match eval_expr(arg, self) {
                        Ok(Value::Str(keyname)) => {
                            implementation = implementation.with_builtin(keyname);
                        }
                        Ok(other) => self.error(
                            format!("@builtin expects a string, got {}", other.kind_name()),
                            attr.span,
                        ),
                        Err(e) => self.eval_error(e),
                    }
                }
                other => {
                    let value = match &attr.arg {
                        Some(arg) => match eval_expr(arg, self) {
                            Ok(v) => v.to_string(),
                            Err(e) => {
                                self.eval_error(e);
                                String::new()
                            }
                        },
                        None => String::new(),
                    };
                    implementation.attributes.insert(other.to_string(), value);
                }
            }
        }
        // Record template bindings as builtin parameters.
        for (name, v) in bindings {
            implementation
                .attributes
                .insert(format!("param_{name}"), v.mangle());
        }

        if let ImplBody::Normal(stmts) = &i.body {
            let mut body = BodyBuilder {
                implementation: &mut implementation,
                instance_impls: HashMap::new(),
                aliases: Vec::new(),
                fresh: 0,
            };
            self.run_stmts(stmts, &mut body, depth);
        }

        self.locals.pop();
        self.current_package = saved_package;

        match self.project.add_implementation(implementation) {
            Ok(_) => {
                self.impl_prov
                    .insert(ir_name.as_ref().to_string(), (key, i.span));
            }
            Err(e) => self.error(e.to_string(), i.span),
        }
        Some(value)
    }

    // ---- implementation bodies --------------------------------------------

    fn run_stmts(&mut self, stmts: &[Stmt], body: &mut BodyBuilder<'_>, depth: usize) {
        for stmt in stmts {
            self.run_stmt(stmt, body, depth);
        }
    }

    fn run_stmt(&mut self, stmt: &Stmt, body: &mut BodyBuilder<'_>, depth: usize) {
        match stmt {
            Stmt::Const(c) => match eval_expr(&c.value, self) {
                Ok(v) => match self.check_var_kind(&c.name, c.kind.as_ref(), v, c.span) {
                    Ok(v) => self.locals.define(&c.name, v),
                    Err(e) => self.eval_error(e),
                },
                Err(e) => self.eval_error(e),
            },
            Stmt::Assert {
                expr,
                message,
                span,
            } => self.check_assert(expr, message.as_ref(), *span),
            Stmt::If {
                cond,
                body: then_body,
                else_body,
                ..
            } => match eval_expr(cond, self) {
                Ok(Value::Bool(true)) => {
                    self.locals.push();
                    body.aliases.push(HashMap::new());
                    self.run_stmts(then_body, body, depth);
                    body.aliases.pop();
                    self.locals.pop();
                }
                Ok(Value::Bool(false)) => {
                    self.locals.push();
                    body.aliases.push(HashMap::new());
                    self.run_stmts(else_body, body, depth);
                    body.aliases.pop();
                    self.locals.pop();
                }
                Ok(other) => self.error(
                    format!("if condition must be bool, got {}", other.kind_name()),
                    cond.span(),
                ),
                Err(e) => self.eval_error(e),
            },
            Stmt::For {
                var,
                iterable,
                body: loop_body,
                ..
            } => match eval_expr(iterable, self) {
                Ok(Value::Array(items)) => {
                    for item in items {
                        self.locals.push();
                        self.locals.define(var, item);
                        body.aliases.push(HashMap::new());
                        self.run_stmts(loop_body, body, depth);
                        body.aliases.pop();
                        self.locals.pop();
                    }
                }
                Ok(other) => self.error(
                    format!(
                        "for iterable must be an array or range, got {}",
                        other.kind_name()
                    ),
                    iterable.span(),
                ),
                Err(e) => self.eval_error(e),
            },
            Stmt::Instance {
                name,
                impl_ref,
                array,
                span,
            } => {
                let impl_value = match self.evaluate_impl_ref(impl_ref, depth + 1) {
                    Ok(v) => v,
                    Err(e) => {
                        self.eval_error(e);
                        return;
                    }
                };
                let count = match array {
                    None => None,
                    Some(e) => {
                        match eval_expr(e, self) {
                            Ok(Value::Int(n)) if (1..=4096).contains(&n) => Some(n as usize),
                            Ok(other) => {
                                self.error(
                                format!("instance array size must be a small positive int, got {other}"),
                                e.span(),
                            );
                                return;
                            }
                            Err(e) => {
                                self.eval_error(e);
                                return;
                            }
                        }
                    }
                };
                // Inside a generative scope the declared name maps to
                // a unique concrete name, scoped to this iteration.
                let base = if body.aliases.is_empty() {
                    name.clone()
                } else {
                    let unique = format!("{name}__{}", body.fresh);
                    body.fresh += 1;
                    body.aliases
                        .last_mut()
                        .expect("alias frame present")
                        .insert(name.clone(), unique.clone());
                    unique
                };
                let add = |elab: &mut Self, body: &mut BodyBuilder<'_>, inst_name: String| {
                    if body.instance_impls.contains_key(&inst_name) {
                        elab.error(format!("duplicate instance `{inst_name}`"), *span);
                        return;
                    }
                    body.instance_impls
                        .insert(inst_name.clone(), impl_value.clone());
                    body.implementation
                        .add_instance(Instance::new(inst_name, impl_value.name.as_ref()));
                };
                match count {
                    None => add(self, body, base),
                    Some(n) => {
                        for idx in 0..n {
                            add(self, body, format!("{base}_{idx}"));
                        }
                    }
                }
            }
            Stmt::Connect { src, dst, span } => {
                let Some(source) = self.resolve_endpoint(src, body) else {
                    return;
                };
                let Some(sink) = self.resolve_endpoint(dst, body) else {
                    return;
                };
                let connection = Connection::new(source, sink);
                self.info.record_connection_span(
                    &body.implementation.name,
                    &connection.describe(),
                    *span,
                );
                body.implementation.add_connection(connection);
            }
        }
    }

    /// Resolves an endpoint expression to a concrete [`EndpointRef`],
    /// folding array indices into the expanded port/instance names.
    fn resolve_endpoint(
        &mut self,
        e: &EndpointExpr,
        body: &BodyBuilder<'_>,
    ) -> Option<EndpointRef> {
        let port_index = match &e.port_index {
            None => None,
            Some(expr) => match eval_expr(expr, self) {
                Ok(Value::Int(i)) if i >= 0 => Some(i as usize),
                Ok(other) => {
                    self.error(
                        format!("port index must be a non-negative int, got {other}"),
                        expr.span(),
                    );
                    return None;
                }
                Err(err) => {
                    self.eval_error(err);
                    return None;
                }
            },
        };
        let apply_index = |name: &str, idx: Option<usize>| match idx {
            None => name.to_string(),
            Some(i) => format!("{name}_{i}"),
        };
        match &e.instance {
            None => Some(EndpointRef::own(apply_index(&e.port, port_index))),
            Some((inst_name, inst_index)) => {
                let inst_index = match inst_index {
                    None => None,
                    Some(expr) => match eval_expr(expr, self) {
                        Ok(Value::Int(i)) if i >= 0 => Some(i as usize),
                        Ok(other) => {
                            self.error(
                                format!("instance index must be a non-negative int, got {other}"),
                                expr.span(),
                            );
                            return None;
                        }
                        Err(err) => {
                            self.eval_error(err);
                            return None;
                        }
                    },
                };
                let base = body.resolve_alias(inst_name);
                let resolved_inst = apply_index(&base, inst_index);
                if !body.instance_impls.contains_key(&resolved_inst) {
                    self.error(
                        format!("unknown instance `{resolved_inst}` in connection"),
                        e.span,
                    );
                    return None;
                }
                Some(EndpointRef::instance(
                    resolved_inst,
                    apply_index(&e.port, port_index),
                ))
            }
        }
    }
}

/// Mutable view of the implementation being built plus its local
/// instance table.
struct BodyBuilder<'a> {
    implementation: &'a mut Implementation,
    instance_impls: HashMap<String, ImplValue>,
    /// Alias frames for generative scopes: an `instance` declared
    /// inside a `for` iteration gets a unique concrete name, and the
    /// declared name resolves to it only within that iteration
    /// (paper §IV-A: "use the for statement to declare four instances
    /// of a comparator template").
    aliases: Vec<HashMap<String, String>>,
    /// Counter for generating unique concrete instance names.
    fresh: usize,
}

impl BodyBuilder<'_> {
    /// Resolves a declared instance base name through the active
    /// generative scopes.
    fn resolve_alias(&self, name: &str) -> String {
        for frame in self.aliases.iter().rev() {
            if let Some(actual) = frame.get(name) {
                return actual.clone();
            }
        }
        name.to_string()
    }
}

impl Resolver for Elaborator {
    fn lookup(&mut self, name: &str, span: Span) -> Result<Value, EvalError> {
        if let Some(v) = self.locals.get(name) {
            return Ok(v.clone());
        }
        match self.find_decl(self.current_package, name, span) {
            Some(id) => self.global_value(id, span),
            None => Err(EvalError::new(format!("undefined name `{name}`"), span)),
        }
    }
}

fn decl_span(decl: &Decl) -> Option<Span> {
    match decl {
        Decl::Const(c) => Some(c.span),
        Decl::TypeAlias { span, .. }
        | Decl::Group { span, .. }
        | Decl::Union { span, .. }
        | Decl::Assert { span, .. } => Some(*span),
        Decl::Streamlet(s) => Some(s.span),
        Decl::Impl(i) => Some(i.span),
    }
}

fn var_kind_matches(kind: &VarKind, value: &Value) -> bool {
    match (kind, value) {
        (VarKind::Int, Value::Int(_)) => true,
        (VarKind::Float, Value::Float(_) | Value::Int(_)) => true,
        (VarKind::Str, Value::Str(_)) => true,
        (VarKind::Bool, Value::Bool(_)) => true,
        (VarKind::Clock, Value::Clock(_)) => true,
        (VarKind::Array(inner), Value::Array(items)) => {
            items.iter().all(|v| var_kind_matches(inner, v))
        }
        _ => false,
    }
}

fn var_kind_name(kind: &VarKind) -> String {
    match kind {
        VarKind::Int => "int".into(),
        VarKind::Float => "float".into(),
        VarKind::Str => "string".into(),
        VarKind::Bool => "bool".into(),
        VarKind::Clock => "clockdomain".into(),
        VarKind::Array(inner) => format!("[{}]", var_kind_name(inner)),
    }
}

fn template_kind_name(kind: &TemplateParamKind) -> String {
    match kind {
        TemplateParamKind::Int => "int".into(),
        TemplateParamKind::Float => "float".into(),
        TemplateParamKind::Str => "string".into(),
        TemplateParamKind::Bool => "bool".into(),
        TemplateParamKind::Clock => "clockdomain".into(),
        TemplateParamKind::Type => "type".into(),
        TemplateParamKind::ImplOf(s) => format!("impl of {s}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::has_errors;
    use crate::parser::parse_package;

    fn elaborate_sources(sources: &[&str]) -> (Project, ElabInfo, Vec<Diagnostic>) {
        let mut packages = Vec::new();
        let mut diags = Vec::new();
        for (i, src) in sources.iter().enumerate() {
            let (pkg, mut d) = parse_package(i, src);
            diags.append(&mut d);
            if let Some(p) = pkg {
                packages.push(p);
            }
        }
        assert!(!has_errors(&diags), "parse errors: {diags:?}");
        elaborate(packages, "test")
    }

    fn elaborate_ok(sources: &[&str]) -> Project {
        let (project, _, diags) = elaborate_sources(sources);
        assert!(
            !has_errors(&diags),
            "elaboration errors: {:?}",
            diags.iter().map(|d| &d.message).collect::<Vec<_>>()
        );
        project
    }

    #[test]
    fn simple_wire() {
        let project = elaborate_ok(&[r#"
package demo;
type Byte = Stream(Bit(8));
streamlet wire_s { i : Byte in, o : Byte out, }
impl wire_i of wire_s { i => o, }
"#]);
        let s = project.streamlet("wire_s").unwrap();
        assert_eq!(s.ports.len(), 2);
        assert_eq!(s.ports[0].type_origin.as_deref(), Some("demo.Byte"));
        let i = project.implementation("wire_i").unwrap();
        assert_eq!(i.connections().len(), 1);
        assert_eq!(project.validate(), Ok(()));
    }

    #[test]
    fn equal_port_types_share_one_allocation() {
        // The hash-consing contract: both ports of the wire carry the
        // *same* Arc, not two equal trees.
        let project = elaborate_ok(&[r#"
package demo;
type Byte = Stream(Bit(8));
streamlet wire_s { i : Byte in, o : Byte out, }
impl wire_i of wire_s { i => o, }
"#]);
        let s = project.streamlet("wire_s").unwrap();
        assert!(Arc::ptr_eq(&s.ports[0].ty, &s.ports[1].ty));
    }

    #[test]
    fn const_evaluation_and_shadowing() {
        let project = elaborate_ok(&[r#"
package demo;
const width : int = 8 * 4;
type T = Stream(Bit(width));
streamlet s { i : T in, o : T out, }
impl i_i of s {
    const width = 99,
    i => o,
}
"#]);
        let s = project.streamlet("s").unwrap();
        match &*s.ports[0].ty {
            LogicalType::Stream { element, .. } => {
                assert_eq!(**element, LogicalType::Bit(32));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn group_union_elaboration() {
        let project = elaborate_ok(&[r#"
package demo;
Group AdderInput { data0: Bit(32), data1: Bit(32), }
type In = Stream(AdderInput);
streamlet s { a : In in, r : In out, }
impl x of s { a => r, }
"#]);
        let port = &project.streamlet("s").unwrap().ports[0];
        match &*port.ty {
            LogicalType::Stream { element, .. } => assert_eq!(element.bit_width(), 64),
            _ => panic!(),
        }
        assert_eq!(port.type_origin.as_deref(), Some("demo.In"));
    }

    #[test]
    fn template_instantiation_memoised() {
        let (project, info, diags) = elaborate_sources(&[r#"
package demo;
streamlet pass_s<T: type> { i : T in, o : T out, }
@builtin("std.passthrough")
impl pass_i<T: type> of pass_s<type T> external;
type Byte = Stream(Bit(8));
streamlet top_s { i : Byte in, o : Byte out, }
impl top_i of top_s {
    instance a(pass_i<type Byte>),
    instance b(pass_i<type Byte>),
    i => a.i,
    a.o => b.i,
    b.o => o,
}
"#]);
        assert!(!has_errors(&diags), "{diags:?}");
        // pass_i<...> elaborated once, hit once.
        assert!(info.template_cache_hits >= 1);
        let mangled = "pass_i<Stream(Bit(8))>";
        assert!(
            project.implementation(mangled).is_some(),
            "missing {mangled}"
        );
        assert_eq!(project.validate(), Ok(()));
    }

    #[test]
    fn type_store_stats_are_reported() {
        let (_, info, diags) = elaborate_sources(&[r#"
package demo;
type A = Stream(Bit(8));
type B = Stream(Bit(8));
streamlet s { i : A in, o : B out, }
@NoStrictType
impl x of s { i => o, }
"#]);
        assert!(!has_errors(&diags), "{diags:?}");
        // A and B build the same two nodes: the second alias is served
        // entirely from the dedup table.
        assert_eq!(info.type_store.distinct_types, 2);
        assert!(info.type_store.intern_hits >= 2);
    }

    #[test]
    fn for_expansion_with_arrays() {
        let project = elaborate_ok(&[r#"
package demo;
type Byte = Stream(Bit(8));
streamlet sink_s { i : Byte in, }
@builtin("std.voider")
impl sink_i of sink_s external;
streamlet fan_s { i : Byte in [4], }
impl fan_i of fan_s {
    instance sinks(sink_i) [4],
    for k in (0..4) {
        i[k] => sinks[k].i,
    }
}
"#]);
        let imp = project.implementation("fan_i").unwrap();
        assert_eq!(imp.instances().len(), 4);
        assert_eq!(imp.connections().len(), 4);
        assert_eq!(project.validate(), Ok(()));
    }

    #[test]
    fn if_and_assert_in_bodies() {
        let (_, _, diags) = elaborate_sources(&[r#"
package demo;
type Byte = Stream(Bit(8));
streamlet s { i : Byte in, o : Byte out, }
impl x of s {
    if (1 + 1 == 2) {
        i => o,
    } else {
        assert(false, "unreachable"),
    }
    assert(len([1,2,3]) == 3),
}
"#]);
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn failed_assert_reports() {
        let (_, _, diags) = elaborate_sources(&[r#"
package demo;
assert(1 == 2, "math broke");
"#]);
        assert!(has_errors(&diags));
        assert!(diags.iter().any(|d| d.message.contains("math broke")));
    }

    #[test]
    fn impl_template_argument() {
        // The paper's parallelize pattern: an impl passed as a
        // template argument, bounded by its streamlet.
        let project = elaborate_ok(&[r#"
package demo;
type Byte = Stream(Bit(8));
streamlet pu_s { i : Byte in, o : Byte out, }
@builtin("std.passthrough")
impl pu_impl of pu_s external;
streamlet wrap_s { i : Byte in, o : Byte out, }
impl wrap_i<pu: impl of pu_s> of wrap_s {
    instance unit(pu),
    i => unit.i,
    unit.o => o,
}
impl top of wrap_s {
    instance w(wrap_i<impl pu_impl>),
    i => w.i,
    w.o => o,
}
"#]);
        assert!(project.implementation("wrap_i<pu_impl>").is_some());
        assert_eq!(project.validate(), Ok(()));
    }

    #[test]
    fn impl_of_bound_enforced() {
        let (_, _, diags) = elaborate_sources(&[r#"
package demo;
type Byte = Stream(Bit(8));
streamlet a_s { i : Byte in, o : Byte out, }
streamlet b_s { i : Byte in, o : Byte out, }
@builtin("std.passthrough")
impl a_i of a_s external;
streamlet wrap_s { i : Byte in, o : Byte out, }
impl wrap_i<pu: impl of b_s> of wrap_s {
    instance unit(pu),
    i => unit.i,
    unit.o => o,
}
impl top of wrap_s {
    instance w(wrap_i<impl a_i>),
    i => w.i,
    w.o => o,
}
"#]);
        assert!(has_errors(&diags));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("must be an impl of")));
    }

    #[test]
    fn cross_package_use() {
        let project = elaborate_ok(&[
            r#"
package lib;
type Byte = Stream(Bit(8));
streamlet pass_s { i : Byte in, o : Byte out, }
@builtin("std.passthrough")
impl pass_i of pass_s external;
"#,
            r#"
package app;
use lib;
impl top of pass_s {
    instance p(pass_i),
    i => p.i,
    p.o => o,
}
"#,
        ]);
        assert!(project.implementation("top").is_some());
        assert_eq!(project.validate(), Ok(()));
    }

    #[test]
    fn cyclic_const_detected() {
        let (_, _, diags) = elaborate_sources(&[r#"
package demo;
const a : int = b + 1;
const b : int = a + 1;
type T = Stream(Bit(a));
streamlet s { i : T in, o : T out, }
impl x of s { i => o, }
"#]);
        assert!(has_errors(&diags));
        assert!(diags.iter().any(|d| d.message.contains("cyclic")));
    }

    #[test]
    fn unknown_names_reported() {
        let (_, _, diags) = elaborate_sources(&[r#"
package demo;
type T = Stream(Bit(nope));
streamlet s { i : T in, o : T out, }
impl x of s { i => o, }
"#]);
        assert!(has_errors(&diags));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("undefined name `nope`")));
    }

    #[test]
    fn non_stream_port_rejected_at_elaboration() {
        let (_, _, diags) = elaborate_sources(&[r#"
package demo;
streamlet s { i : Bit(8) in, }
impl x of s { }
"#]);
        assert!(has_errors(&diags));
        assert!(diags
            .iter()
            .any(|d| d.message.contains("must bind a Stream")));
    }

    #[test]
    fn duplicate_decl_reported() {
        let (_, _, diags) = elaborate_sources(&[r#"
package demo;
const x : int = 1;
const x : int = 2;
"#]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn template_value_kind_checked() {
        let (_, _, diags) = elaborate_sources(&[r#"
package demo;
streamlet s<n: int> { i : Stream(Bit(n)) in, o : Stream(Bit(n)) out, }
impl x of s<"eight"> { i => o, }
"#]);
        assert!(has_errors(&diags));
        assert!(diags.iter().any(|d| d.message.contains("expects int")));
    }

    #[test]
    fn instance_declared_inside_for_loop() {
        // Paper §IV-A: one `instance` statement inside a `for` loop
        // declares one comparator per array element, each wired to a
        // port of the or-gate.
        let project = elaborate_ok(&[r#"
package demo;
type Byte = Stream(Bit(8));
streamlet cmp_s<v: int> { i : Byte in, o : Byte out, }
@builtin("std.eq_const")
impl cmp_i<v: int> of cmp_s<v> external;
streamlet or_s<n: int> { i : Byte in [n], o : Byte out, }
@builtin("std.or_n")
impl or_i<n: int> of or_s<4> external;
streamlet top_s { data : Byte in [4], o : Byte out, }
impl top_i of top_s {
    const codes = [10, 20, 30, 40],
    instance or_gate(or_i<4>),
    for k in (0..4) {
        instance cmp(cmp_i<codes[k]>),
        data[k] => cmp.i,
        cmp.o => or_gate.i[k],
    }
    or_gate.o => o,
}
"#]);
        let imp = project.implementation("top_i").unwrap();
        assert_eq!(imp.instances().len(), 5);
        assert_eq!(imp.connections().len(), 9);
        assert_eq!(project.validate(), Ok(()));
        // Four distinct comparator template instances were created.
        for code in [10, 20, 30, 40] {
            assert!(project.implementation(&format!("cmp_i<{code}>")).is_some());
        }
    }

    #[test]
    fn clock_domains_on_ports() {
        let project = elaborate_ok(&[r#"
package demo;
const mem_clk : clockdomain = clockdomain("mem");
type Byte = Stream(Bit(8));
streamlet s {
    a : Byte in !mem,
    b : Byte out !(mem_clk),
}
impl x of s { a => b, }
"#]);
        let s = project.streamlet("s").unwrap();
        assert_eq!(s.ports[0].clock.name(), "mem");
        assert_eq!(s.ports[1].clock.name(), "mem");
        assert_eq!(project.validate(), Ok(()));
    }
}
