//! Recursive-descent parser for Tydi-lang.
//!
//! The grammar is reproduced from the paper's examples and the
//! companion compiler manual (arXiv:2212.11154); the reference
//! implementation uses a pest grammar, this one is hand-written.
//! Statement terminators may be `,` or `;` interchangeably (the paper
//! uses commas inside implementation bodies and semicolons at top
//! level), and trailing terminators before `}` are optional.

use crate::ast::*;
use crate::diagnostics::Diagnostic;
use crate::lexer::lex;
use crate::sim_ast::*;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses one source file into a [`Package`]. On unrecoverable errors
/// the package may be `None`; all problems are reported as
/// diagnostics.
pub fn parse_package(file: usize, source: &str) -> (Option<Package>, Vec<Diagnostic>) {
    let (tokens, mut diagnostics) = lex(file, source);
    let mut parser = Parser {
        tokens,
        pos: 0,
        diagnostics: Vec::new(),
        source,
    };
    let package = parser.package();
    diagnostics.append(&mut parser.diagnostics);
    (package, diagnostics)
}

/// Parses stand-alone simulation code (the content of a
/// `simulation { ... }` block, braces not included).
pub fn parse_simulation_source(source: &str) -> Result<SimBlock, Vec<Diagnostic>> {
    let (tokens, mut diagnostics) = lex(0, source);
    let mut parser = Parser {
        tokens,
        pos: 0,
        diagnostics: Vec::new(),
        source,
    };
    let block = parser.sim_block_items(source.to_string());
    diagnostics.append(&mut parser.diagnostics);
    if diagnostics
        .iter()
        .any(|d| d.severity == crate::Severity::Error)
    {
        Err(diagnostics)
    } else {
        Ok(block)
    }
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    diagnostics: Vec<Diagnostic>,
    source: &'a str,
}

impl Parser<'_> {
    // ---- token plumbing -------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn error_here(&mut self, message: impl Into<String>) {
        let span = self.peek_span();
        self.diagnostics
            .push(Diagnostic::error("parse", message, Some(span)));
    }

    fn expect(&mut self, kind: TokenKind) -> bool {
        if *self.peek() == kind {
            self.bump();
            true
        } else {
            self.error_here(format!("expected {}, found {}", kind, self.peek()));
            false
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn is_keyword(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == word)
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.is_keyword(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, word: &str) -> bool {
        if self.eat_keyword(word) {
            true
        } else {
            self.error_here(format!("expected `{word}`, found {}", self.peek()));
            false
        }
    }

    fn expect_ident(&mut self) -> Option<(String, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                self.bump();
                Some((name, span))
            }
            other => {
                self.error_here(format!("expected identifier, found {other}"));
                None
            }
        }
    }

    /// Statement terminator: `;` or `,`; tolerated missing before `}`.
    fn terminator(&mut self) {
        if self.eat(TokenKind::Semi) || self.eat(TokenKind::Comma) {
            return;
        }
        if matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            return;
        }
        self.error_here(format!("expected `;` or `,`, found {}", self.peek()));
        // Recovery: skip one token to avoid infinite loops.
        self.bump();
    }

    /// Skips tokens until a likely declaration boundary (error
    /// recovery).
    fn synchronize(&mut self) {
        let mut depth = 0i32;
        while !self.at_eof() {
            match self.peek() {
                TokenKind::LBrace => depth += 1,
                TokenKind::RBrace => {
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                    depth -= 1;
                }
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::Ident(word)
                    if depth == 0
                        && matches!(
                            word.as_str(),
                            "const" | "type" | "Group" | "Union" | "streamlet" | "impl"
                        ) =>
                {
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    // ---- top level ------------------------------------------------------

    fn package(&mut self) -> Option<Package> {
        let header_span = self.peek_span();
        if !self.expect_keyword("package") {
            return None;
        }
        let (name, _) = self.expect_ident()?;
        self.terminator();
        let mut uses = Vec::new();
        let mut decls = Vec::new();
        while !self.at_eof() {
            if self.eat_keyword("use") {
                if let Some((used, _)) = self.expect_ident() {
                    uses.push(used);
                }
                self.terminator();
                continue;
            }
            let before = self.pos;
            match self.decl() {
                Some(decl) => decls.push(decl),
                None => {
                    if self.pos == before {
                        self.synchronize();
                    }
                }
            }
        }
        Some(Package {
            name,
            uses,
            decls,
            span: header_span,
        })
    }

    fn attributes(&mut self) -> Vec<Attribute> {
        let mut out = Vec::new();
        while self.eat(TokenKind::At) {
            let span = self.peek_span();
            let Some((name, _)) = self.expect_ident() else {
                break;
            };
            let arg = if self.eat(TokenKind::LParen) {
                let e = self.expr();
                self.expect(TokenKind::RParen);
                e
            } else {
                None
            };
            out.push(Attribute { name, arg, span });
        }
        out
    }

    fn decl(&mut self) -> Option<Decl> {
        let attributes = self.attributes();
        let span = self.peek_span();
        if self.eat_keyword("const") {
            return self.const_decl(span).map(Decl::Const);
        }
        if self.eat_keyword("type") {
            let (name, _) = self.expect_ident()?;
            self.expect(TokenKind::Eq);
            let ty = self.type_expr()?;
            self.terminator();
            return Some(Decl::TypeAlias { name, ty, span });
        }
        if self.eat_keyword("Group") {
            let (name, fields) = self.composite_decl()?;
            return Some(Decl::Group { name, fields, span });
        }
        if self.eat_keyword("Union") {
            let (name, fields) = self.composite_decl()?;
            return Some(Decl::Union { name, fields, span });
        }
        if self.eat_keyword("streamlet") {
            return self.streamlet_decl(span, attributes).map(Decl::Streamlet);
        }
        if self.eat_keyword("impl") {
            return self.impl_decl(span, attributes).map(Decl::Impl);
        }
        if self.eat_keyword("assert") {
            let (expr, message) = self.assert_args()?;
            self.terminator();
            return Some(Decl::Assert {
                expr,
                message,
                span,
            });
        }
        self.error_here(format!(
            "expected a declaration (const/type/Group/Union/streamlet/impl/assert), found {}",
            self.peek()
        ));
        None
    }

    fn assert_args(&mut self) -> Option<(Expr, Option<Expr>)> {
        self.expect(TokenKind::LParen);
        let expr = self.expr()?;
        let message = if self.eat(TokenKind::Comma) {
            self.expr()
        } else {
            None
        };
        self.expect(TokenKind::RParen);
        Some((expr, message))
    }

    fn const_decl(&mut self, span: Span) -> Option<ConstDecl> {
        let (name, _) = self.expect_ident()?;
        let kind = if self.eat(TokenKind::Colon) {
            self.var_kind()
        } else {
            None
        };
        self.expect(TokenKind::Eq);
        let value = self.expr()?;
        self.terminator();
        Some(ConstDecl {
            name,
            kind,
            value,
            span,
        })
    }

    fn var_kind(&mut self) -> Option<VarKind> {
        if self.eat(TokenKind::LBracket) {
            let inner = self.var_kind()?;
            self.expect(TokenKind::RBracket);
            return Some(VarKind::Array(Box::new(inner)));
        }
        let (word, span) = self.expect_ident()?;
        match word.as_str() {
            "int" => Some(VarKind::Int),
            "float" => Some(VarKind::Float),
            "string" => Some(VarKind::Str),
            "bool" => Some(VarKind::Bool),
            "clockdomain" => Some(VarKind::Clock),
            other => {
                self.diagnostics.push(Diagnostic::error(
                    "parse",
                    format!("unknown variable kind `{other}`"),
                    Some(span),
                ));
                None
            }
        }
    }

    fn composite_decl(&mut self) -> Option<(String, Vec<(String, TypeExpr)>)> {
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LBrace);
        let mut fields = Vec::new();
        while !self.eat(TokenKind::RBrace) {
            if self.at_eof() {
                self.error_here("unterminated composite type body");
                return None;
            }
            let (field_name, _) = self.expect_ident()?;
            self.expect(TokenKind::Colon);
            let ty = self.type_expr()?;
            fields.push((field_name, ty));
            if !self.eat(TokenKind::Comma) && !self.eat(TokenKind::Semi) {
                self.expect(TokenKind::RBrace);
                break;
            }
        }
        Some((name, fields))
    }

    // ---- streamlets and implementations ----------------------------------

    fn template_params(&mut self) -> Vec<TemplateParam> {
        let mut params = Vec::new();
        if !self.eat(TokenKind::Lt) {
            return params;
        }
        loop {
            let span = self.peek_span();
            let Some((name, _)) = self.expect_ident() else {
                break;
            };
            if !self.expect(TokenKind::Colon) {
                break;
            }
            let Some((kind_word, kind_span)) = self.expect_ident() else {
                break;
            };
            let kind = match kind_word.as_str() {
                "int" => TemplateParamKind::Int,
                "float" => TemplateParamKind::Float,
                "string" => TemplateParamKind::Str,
                "bool" => TemplateParamKind::Bool,
                "clockdomain" => TemplateParamKind::Clock,
                "type" => TemplateParamKind::Type,
                "impl" => {
                    self.expect_keyword("of");
                    match self.expect_ident() {
                        Some((streamlet, _)) => TemplateParamKind::ImplOf(streamlet),
                        None => break,
                    }
                }
                other => {
                    self.diagnostics.push(Diagnostic::error(
                        "parse",
                        format!("unknown template parameter kind `{other}`"),
                        Some(kind_span),
                    ));
                    break;
                }
            };
            params.push(TemplateParam { name, kind, span });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Gt);
        params
    }

    fn named_ref(&mut self) -> Option<NamedRef> {
        let span = self.peek_span();
        let (name, _) = self.expect_ident()?;
        let mut args = Vec::new();
        if self.eat(TokenKind::Lt) {
            loop {
                if self.eat_keyword("type") {
                    if let Some(ty) = self.type_expr() {
                        args.push(TemplateArgExpr::Type(ty));
                    }
                } else if self.eat_keyword("impl") {
                    if let Some(r) = self.named_ref() {
                        args.push(TemplateArgExpr::Impl(r));
                    }
                } else if let Some(e) = self.expr_additive() {
                    // Template value arguments parse at additive
                    // precedence so a bare `>` always closes the
                    // argument list (parenthesize comparisons).
                    args.push(TemplateArgExpr::Value(e));
                } else {
                    break;
                }
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::Gt);
        }
        Some(NamedRef { name, args, span })
    }

    fn streamlet_decl(&mut self, span: Span, attributes: Vec<Attribute>) -> Option<StreamletDecl> {
        let (name, _) = self.expect_ident()?;
        let params = self.template_params();
        self.expect(TokenKind::LBrace);
        let mut ports = Vec::new();
        while !self.eat(TokenKind::RBrace) {
            if self.at_eof() {
                self.error_here("unterminated streamlet body");
                return None;
            }
            let port_span = self.peek_span();
            let Some((port_name, _)) = self.expect_ident() else {
                self.synchronize();
                return None;
            };
            self.expect(TokenKind::Colon);
            let Some(ty) = self.type_expr() else {
                self.synchronize();
                return None;
            };
            let direction = if self.eat_keyword("in") {
                PortDir::In
            } else if self.eat_keyword("out") {
                PortDir::Out
            } else {
                self.error_here("expected `in` or `out` after port type");
                PortDir::In
            };
            let array = if self.eat(TokenKind::LBracket) {
                let e = self.expr();
                self.expect(TokenKind::RBracket);
                e
            } else {
                None
            };
            let clock = if self.eat(TokenKind::Bang) {
                if self.eat(TokenKind::LParen) {
                    let e = self.expr();
                    self.expect(TokenKind::RParen);
                    e.map(ClockSpec::Expr)
                } else {
                    self.expect_ident().map(|(n, s)| ClockSpec::Named(n, s))
                }
            } else {
                None
            };
            ports.push(PortDecl {
                name: port_name,
                ty,
                direction,
                array,
                clock,
                span: port_span,
            });
            if !self.eat(TokenKind::Comma) && !self.eat(TokenKind::Semi) {
                self.expect(TokenKind::RBrace);
                break;
            }
        }
        Some(StreamletDecl {
            name,
            params,
            ports,
            attributes,
            doc: String::new(),
            span,
        })
    }

    fn impl_decl(&mut self, span: Span, attributes: Vec<Attribute>) -> Option<ImplDecl> {
        let (name, _) = self.expect_ident()?;
        let params = self.template_params();
        self.expect_keyword("of");
        let streamlet = self.named_ref()?;
        let body = if self.eat_keyword("external") {
            if self.eat(TokenKind::LBrace) {
                let mut simulation = None;
                while !self.eat(TokenKind::RBrace) {
                    if self.at_eof() {
                        self.error_here("unterminated external impl body");
                        break;
                    }
                    if self.eat_keyword("simulation") {
                        simulation = self.sim_block();
                    } else {
                        self.error_here(format!(
                            "expected `simulation` in external impl body, found {}",
                            self.peek()
                        ));
                        self.bump();
                    }
                }
                ImplBody::External { simulation }
            } else {
                self.terminator();
                ImplBody::External { simulation: None }
            }
        } else {
            self.expect(TokenKind::LBrace);
            let stmts = self.stmt_list();
            ImplBody::Normal(stmts)
        };
        Some(ImplDecl {
            name,
            params,
            streamlet,
            body,
            attributes,
            doc: String::new(),
            span,
        })
    }

    fn stmt_list(&mut self) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        while !self.eat(TokenKind::RBrace) {
            if self.at_eof() {
                self.error_here("unterminated body (missing `}`)");
                break;
            }
            let before = self.pos;
            if let Some(stmt) = self.stmt() {
                stmts.push(stmt);
            } else if self.pos == before {
                self.bump();
            }
        }
        stmts
    }

    fn stmt(&mut self) -> Option<Stmt> {
        let span = self.peek_span();
        if self.eat_keyword("instance") {
            let (name, _) = self.expect_ident()?;
            self.expect(TokenKind::LParen);
            let impl_ref = self.named_ref()?;
            self.expect(TokenKind::RParen);
            let array = if self.eat(TokenKind::LBracket) {
                let e = self.expr();
                self.expect(TokenKind::RBracket);
                e
            } else {
                None
            };
            self.terminator();
            return Some(Stmt::Instance {
                name,
                impl_ref,
                array,
                span,
            });
        }
        if self.eat_keyword("for") {
            let (var, _) = self.expect_ident()?;
            self.expect_keyword("in");
            let iterable = self.expr()?;
            self.expect(TokenKind::LBrace);
            let body = self.stmt_list();
            return Some(Stmt::For {
                var,
                iterable,
                body,
                span,
            });
        }
        if self.eat_keyword("if") {
            self.expect(TokenKind::LParen);
            let cond = self.expr()?;
            self.expect(TokenKind::RParen);
            self.expect(TokenKind::LBrace);
            let body = self.stmt_list();
            let else_body = if self.eat_keyword("else") {
                if self.is_keyword("if") {
                    // else-if chains nest.
                    match self.stmt() {
                        Some(nested) => vec![nested],
                        None => Vec::new(),
                    }
                } else {
                    self.expect(TokenKind::LBrace);
                    self.stmt_list()
                }
            } else {
                Vec::new()
            };
            return Some(Stmt::If {
                cond,
                body,
                else_body,
                span,
            });
        }
        if self.eat_keyword("assert") {
            let (expr, message) = self.assert_args()?;
            self.terminator();
            return Some(Stmt::Assert {
                expr,
                message,
                span,
            });
        }
        if self.eat_keyword("const") {
            return self.const_decl(span).map(Stmt::Const);
        }
        // Otherwise: a connection `endpoint => endpoint`.
        let src = self.endpoint()?;
        self.expect(TokenKind::FatArrow);
        let dst = self.endpoint()?;
        self.terminator();
        Some(Stmt::Connect { src, dst, span })
    }

    fn endpoint(&mut self) -> Option<EndpointExpr> {
        let span = self.peek_span();
        let (first, _) = self.expect_ident()?;
        let first_index = if self.eat(TokenKind::LBracket) {
            let e = self.expr();
            self.expect(TokenKind::RBracket);
            e
        } else {
            None
        };
        if self.eat(TokenKind::Dot) {
            let (port, _) = self.expect_ident()?;
            let port_index = if self.eat(TokenKind::LBracket) {
                let e = self.expr();
                self.expect(TokenKind::RBracket);
                e
            } else {
                None
            };
            Some(EndpointExpr {
                instance: Some((first, first_index)),
                port,
                port_index,
                span,
            })
        } else {
            Some(EndpointExpr {
                instance: None,
                port: first,
                port_index: first_index,
                span,
            })
        }
    }

    // ---- types ------------------------------------------------------------

    fn type_expr(&mut self) -> Option<TypeExpr> {
        let span = self.peek_span();
        let (head, head_span) = self.expect_ident()?;
        match head.as_str() {
            "Null" => Some(TypeExpr::Null(head_span)),
            "Bit" => {
                self.expect(TokenKind::LParen);
                let width = self.expr()?;
                self.expect(TokenKind::RParen);
                Some(TypeExpr::Bit(Box::new(width), span))
            }
            "Stream" => {
                self.expect(TokenKind::LParen);
                let element = self.type_expr()?;
                let mut args = Vec::new();
                while self.eat(TokenKind::Comma) {
                    let Some((key, key_span)) = self.expect_ident() else {
                        break;
                    };
                    match key.as_str() {
                        "d" | "dimension" => {
                            self.expect(TokenKind::Eq);
                            if let Some(e) = self.expr() {
                                args.push(StreamArg::Dimension(e));
                            }
                        }
                        "t" | "throughput" => {
                            self.expect(TokenKind::Eq);
                            if let Some(e) = self.expr() {
                                args.push(StreamArg::Throughput(e));
                            }
                        }
                        "c" | "complexity" => {
                            self.expect(TokenKind::Eq);
                            if let Some(e) = self.expr() {
                                args.push(StreamArg::Complexity(e));
                            }
                        }
                        "r" | "direction" => {
                            self.expect(TokenKind::Eq);
                            if let Some((value, vspan)) = self.expect_ident() {
                                args.push(StreamArg::Direction(value, vspan));
                            }
                        }
                        "x" | "synchronicity" => {
                            self.expect(TokenKind::Eq);
                            if let Some((value, vspan)) = self.expect_ident() {
                                args.push(StreamArg::Synchronicity(value, vspan));
                            }
                        }
                        "u" | "user" => {
                            self.expect(TokenKind::Eq);
                            if let Some(t) = self.type_expr() {
                                args.push(StreamArg::User(t));
                            }
                        }
                        "keep" => {
                            if self.eat(TokenKind::Eq) {
                                if let Some(e) = self.expr() {
                                    args.push(StreamArg::Keep(e));
                                }
                            } else {
                                args.push(StreamArg::Keep(Expr::Bool(true, key_span)));
                            }
                        }
                        other => {
                            self.diagnostics.push(Diagnostic::error(
                                "parse",
                                format!("unknown stream parameter `{other}`"),
                                Some(key_span),
                            ));
                        }
                    }
                }
                self.expect(TokenKind::RParen);
                Some(TypeExpr::Stream {
                    element: Box::new(element),
                    args,
                    span,
                })
            }
            _ => Some(TypeExpr::Ref(head, head_span)),
        }
    }

    // ---- expressions --------------------------------------------------------

    fn expr(&mut self) -> Option<Expr> {
        self.expr_or()
    }

    fn expr_or(&mut self) -> Option<Expr> {
        let mut lhs = self.expr_and()?;
        while self.eat(TokenKind::OrOr) {
            let rhs = self.expr_and()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Some(lhs)
    }

    fn expr_and(&mut self) -> Option<Expr> {
        let mut lhs = self.expr_equality()?;
        while self.eat(TokenKind::AndAnd) {
            let rhs = self.expr_equality()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Some(lhs)
    }

    fn expr_equality(&mut self) -> Option<Expr> {
        let mut lhs = self.expr_comparison()?;
        loop {
            let op = if self.eat(TokenKind::EqEq) {
                BinOp::Eq
            } else if self.eat(TokenKind::NotEq) {
                BinOp::Ne
            } else {
                return Some(lhs);
            };
            let rhs = self.expr_comparison()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn expr_comparison(&mut self) -> Option<Expr> {
        let mut lhs = self.expr_additive()?;
        loop {
            let op = if self.eat(TokenKind::Le) {
                BinOp::Le
            } else if self.eat(TokenKind::Ge) {
                BinOp::Ge
            } else if self.eat(TokenKind::Lt) {
                BinOp::Lt
            } else if self.eat(TokenKind::Gt) {
                BinOp::Gt
            } else {
                return Some(lhs);
            };
            let rhs = self.expr_additive()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn expr_additive(&mut self) -> Option<Expr> {
        let mut lhs = self.expr_multiplicative()?;
        loop {
            let op = if self.eat(TokenKind::Plus) {
                BinOp::Add
            } else if self.eat(TokenKind::Minus) {
                BinOp::Sub
            } else {
                return Some(lhs);
            };
            let rhs = self.expr_multiplicative()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn expr_multiplicative(&mut self) -> Option<Expr> {
        let mut lhs = self.expr_power()?;
        loop {
            let op = if self.eat(TokenKind::Star) {
                BinOp::Mul
            } else if self.eat(TokenKind::Slash) {
                BinOp::Div
            } else if self.eat(TokenKind::Percent) {
                BinOp::Rem
            } else {
                return Some(lhs);
            };
            let rhs = self.expr_power()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn expr_power(&mut self) -> Option<Expr> {
        let lhs = self.expr_unary()?;
        if self.eat(TokenKind::Caret) {
            // Right-associative.
            let rhs = self.expr_power()?;
            let span = lhs.span().merge(rhs.span());
            Some(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            })
        } else {
            Some(lhs)
        }
    }

    fn expr_unary(&mut self) -> Option<Expr> {
        let span = self.peek_span();
        if self.eat(TokenKind::Minus) {
            let operand = self.expr_unary()?;
            let span = span.merge(operand.span());
            return Some(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
                span,
            });
        }
        if self.eat(TokenKind::Bang) {
            let operand = self.expr_unary()?;
            let span = span.merge(operand.span());
            return Some(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
                span,
            });
        }
        self.expr_postfix()
    }

    fn expr_postfix(&mut self) -> Option<Expr> {
        let mut base = self.expr_primary()?;
        while self.eat(TokenKind::LBracket) {
            let index = self.expr()?;
            self.expect(TokenKind::RBracket);
            let span = base.span().merge(index.span());
            base = Expr::Index {
                base: Box::new(base),
                index: Box::new(index),
                span,
            };
        }
        Some(base)
    }

    fn expr_primary(&mut self) -> Option<Expr> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Some(Expr::Int(v, span))
            }
            TokenKind::Float(v) => {
                self.bump();
                Some(Expr::Float(v, span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Some(Expr::Str(s, span))
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat(TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                        if *self.peek() == TokenKind::RBracket {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBracket);
                }
                Some(Expr::Array(items, span))
            }
            TokenKind::LParen => {
                self.bump();
                let first = self.expr()?;
                if self.eat(TokenKind::DotDot) {
                    let end = self.expr()?;
                    let step = if self.eat_keyword("step") {
                        self.expr().map(Box::new)
                    } else {
                        None
                    };
                    self.expect(TokenKind::RParen);
                    let full = span.merge(self.peek_span());
                    Some(Expr::Range {
                        start: Box::new(first),
                        end: Box::new(end),
                        step,
                        span: full,
                    })
                } else {
                    self.expect(TokenKind::RParen);
                    Some(first)
                }
            }
            TokenKind::Ident(word) => {
                match word.as_str() {
                    "true" => {
                        self.bump();
                        return Some(Expr::Bool(true, span));
                    }
                    "false" => {
                        self.bump();
                        return Some(Expr::Bool(false, span));
                    }
                    _ => {}
                }
                self.bump();
                if *self.peek() == TokenKind::LParen {
                    // Builtin function call, or clockdomain("name").
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(TokenKind::RParen);
                    }
                    if word == "clockdomain" {
                        if let [Expr::Str(name, _)] = args.as_slice() {
                            return Some(Expr::Clock(name.clone(), span));
                        }
                        self.diagnostics.push(Diagnostic::error(
                            "parse",
                            "clockdomain(...) takes a single string literal",
                            Some(span),
                        ));
                        return None;
                    }
                    Some(Expr::Call {
                        name: word,
                        args,
                        span,
                    })
                } else {
                    Some(Expr::Ident(word, span))
                }
            }
            other => {
                self.error_here(format!("expected expression, found {other}"));
                None
            }
        }
    }

    // ---- simulation blocks ----------------------------------------------

    /// Parses `{ ... }` after the `simulation` keyword, capturing the
    /// raw source text of the body.
    fn sim_block(&mut self) -> Option<SimBlock> {
        let open_span = self.peek_span();
        if !self.expect(TokenKind::LBrace) {
            return None;
        }
        let body_start = open_span.end;
        // Find the matching close brace by token scanning to capture
        // the raw text; parsing proceeds over the same tokens.
        let mut block = self.sim_items_until_rbrace();
        let close_span = self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span;
        let body_end = close_span.start.max(body_start).min(self.source.len());
        block.source = self.source[body_start..body_end].trim().to_string();
        Some(block)
    }

    /// Parses simulation items until end of input (for stand-alone
    /// simulation sources).
    fn sim_block_items(&mut self, source: String) -> SimBlock {
        let mut block = SimBlock {
            source,
            ..Default::default()
        };
        while !self.at_eof() {
            self.sim_item(&mut block);
        }
        block
    }

    fn sim_items_until_rbrace(&mut self) -> SimBlock {
        let mut block = SimBlock::default();
        while !self.eat(TokenKind::RBrace) {
            if self.at_eof() {
                self.error_here("unterminated simulation block");
                break;
            }
            self.sim_item(&mut block);
        }
        block
    }

    fn sim_item(&mut self, block: &mut SimBlock) {
        let span = self.peek_span();
        if self.eat_keyword("state") {
            let Some((name, _)) = self.expect_ident() else {
                return;
            };
            self.expect(TokenKind::Eq);
            let init = match self.peek().clone() {
                TokenKind::Str(s) => {
                    self.bump();
                    s
                }
                other => {
                    self.error_here(format!("state initializer must be a string, found {other}"));
                    String::new()
                }
            };
            self.terminator();
            block.states.push(SimStateDecl { name, init, span });
        } else if self.eat_keyword("on") {
            self.expect(TokenKind::LParen);
            let Some(event) = self.sim_event() else {
                self.synchronize();
                return;
            };
            self.expect(TokenKind::RParen);
            self.expect(TokenKind::LBrace);
            let actions = self.sim_actions_until_rbrace();
            block.handlers.push(SimHandler {
                event,
                actions,
                span,
            });
        } else {
            self.error_here(format!(
                "expected `state` or `on` in simulation block, found {}",
                self.peek()
            ));
            self.bump();
        }
    }

    fn sim_event(&mut self) -> Option<SimEvent> {
        let mut lhs = self.sim_event_and()?;
        while self.eat(TokenKind::OrOr) {
            let rhs = self.sim_event_and()?;
            lhs = SimEvent::Or(Box::new(lhs), Box::new(rhs));
        }
        Some(lhs)
    }

    fn sim_event_and(&mut self) -> Option<SimEvent> {
        let mut lhs = self.sim_event_unary()?;
        while self.eat(TokenKind::AndAnd) {
            let rhs = self.sim_event_unary()?;
            lhs = SimEvent::And(Box::new(lhs), Box::new(rhs));
        }
        Some(lhs)
    }

    fn sim_event_unary(&mut self) -> Option<SimEvent> {
        if self.eat(TokenKind::Bang) {
            let inner = self.sim_event_unary()?;
            return Some(SimEvent::Not(Box::new(inner)));
        }
        if self.eat(TokenKind::LParen) {
            let inner = self.sim_event()?;
            self.expect(TokenKind::RParen);
            return Some(inner);
        }
        let (name, _) = self.expect_ident()?;
        if self.eat(TokenKind::Dot) {
            let (what, what_span) = self.expect_ident()?;
            match what.as_str() {
                "recv" => Some(SimEvent::Recv(name)),
                "ack" => Some(SimEvent::Ack(name)),
                other => {
                    self.diagnostics.push(Diagnostic::error(
                        "parse",
                        format!("unknown port event `.{other}` (expected .recv or .ack)"),
                        Some(what_span),
                    ));
                    None
                }
            }
        } else if self.eat(TokenKind::EqEq) {
            let value = self.sim_string()?;
            Some(SimEvent::StateIs(name, value))
        } else if self.eat(TokenKind::NotEq) {
            let value = self.sim_string()?;
            Some(SimEvent::StateIsNot(name, value))
        } else {
            self.error_here("expected `.recv`, `.ack`, `==` or `!=` in event");
            None
        }
    }

    fn sim_string(&mut self) -> Option<String> {
        match self.peek().clone() {
            TokenKind::Str(s) => {
                self.bump();
                Some(s)
            }
            other => {
                self.error_here(format!("expected string literal, found {other}"));
                None
            }
        }
    }

    fn sim_actions_until_rbrace(&mut self) -> Vec<SimAction> {
        let mut actions = Vec::new();
        while !self.eat(TokenKind::RBrace) {
            if self.at_eof() {
                self.error_here("unterminated handler body");
                break;
            }
            let before = self.pos;
            if let Some(a) = self.sim_action() {
                actions.push(a);
            } else if self.pos == before {
                self.bump();
            }
        }
        actions
    }

    fn sim_action(&mut self) -> Option<SimAction> {
        if self.eat_keyword("send") {
            self.expect(TokenKind::LParen);
            let (port, _) = self.expect_ident()?;
            self.expect(TokenKind::Comma);
            let expr = self.sim_expr()?;
            self.expect(TokenKind::RParen);
            self.terminator();
            return Some(SimAction::Send { port, expr });
        }
        if self.eat_keyword("last") {
            self.expect(TokenKind::LParen);
            let (port, _) = self.expect_ident()?;
            let levels = if self.eat(TokenKind::Comma) {
                match self.peek().clone() {
                    TokenKind::Int(v) if v > 0 => {
                        self.bump();
                        v as u32
                    }
                    other => {
                        self.error_here(format!("expected positive level count, found {other}"));
                        1
                    }
                }
            } else {
                1
            };
            self.expect(TokenKind::RParen);
            self.terminator();
            return Some(SimAction::Last { port, levels });
        }
        if self.eat_keyword("ack") {
            self.expect(TokenKind::LParen);
            let (port, _) = self.expect_ident()?;
            self.expect(TokenKind::RParen);
            self.terminator();
            return Some(SimAction::Ack(port));
        }
        if self.eat_keyword("delay") {
            self.expect(TokenKind::LParen);
            let expr = self.sim_expr()?;
            self.expect(TokenKind::RParen);
            self.terminator();
            return Some(SimAction::Delay(expr));
        }
        if self.eat_keyword("set_state") {
            self.expect(TokenKind::LParen);
            let (name, _) = self.expect_ident()?;
            self.expect(TokenKind::Comma);
            let value = self.sim_string()?;
            self.expect(TokenKind::RParen);
            self.terminator();
            return Some(SimAction::SetState(name, value));
        }
        if self.eat_keyword("if") {
            self.expect(TokenKind::LParen);
            let cond = self.sim_expr()?;
            self.expect(TokenKind::RParen);
            self.expect(TokenKind::LBrace);
            let then_actions = self.sim_actions_until_rbrace();
            let else_actions = if self.eat_keyword("else") {
                self.expect(TokenKind::LBrace);
                self.sim_actions_until_rbrace()
            } else {
                Vec::new()
            };
            return Some(SimAction::If {
                cond,
                then_actions,
                else_actions,
            });
        }
        if self.eat_keyword("for") {
            let (var, _) = self.expect_ident()?;
            self.expect_keyword("in");
            self.expect(TokenKind::LParen);
            let start = self.sim_expr()?;
            self.expect(TokenKind::DotDot);
            let end = self.sim_expr()?;
            self.expect(TokenKind::RParen);
            self.expect(TokenKind::LBrace);
            let body = self.sim_actions_until_rbrace();
            return Some(SimAction::For {
                var,
                start,
                end,
                body,
            });
        }
        self.error_here(format!(
            "expected a simulation action (send/last/ack/delay/set_state/if/for), found {}",
            self.peek()
        ));
        None
    }

    fn sim_expr(&mut self) -> Option<SimExpr> {
        self.sim_expr_bin(0)
    }

    fn sim_expr_bin(&mut self, min_level: u8) -> Option<SimExpr> {
        let mut lhs = self.sim_expr_unary()?;
        loop {
            let (op, level) = match self.peek() {
                TokenKind::OrOr => (SimOp::Or, 1),
                TokenKind::AndAnd => (SimOp::And, 2),
                TokenKind::EqEq => (SimOp::Eq, 3),
                TokenKind::NotEq => (SimOp::Ne, 3),
                TokenKind::Lt => (SimOp::Lt, 4),
                TokenKind::Le => (SimOp::Le, 4),
                TokenKind::Gt => (SimOp::Gt, 4),
                TokenKind::Ge => (SimOp::Ge, 4),
                TokenKind::Plus => (SimOp::Add, 5),
                TokenKind::Minus => (SimOp::Sub, 5),
                TokenKind::Star => (SimOp::Mul, 6),
                TokenKind::Slash => (SimOp::Div, 6),
                TokenKind::Percent => (SimOp::Rem, 6),
                _ => return Some(lhs),
            };
            if level < min_level {
                return Some(lhs);
            }
            self.bump();
            let rhs = self.sim_expr_bin(level + 1)?;
            lhs = SimExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn sim_expr_unary(&mut self) -> Option<SimExpr> {
        if self.eat(TokenKind::Minus) {
            return Some(SimExpr::Neg(Box::new(self.sim_expr_unary()?)));
        }
        if self.eat(TokenKind::Bang) {
            return Some(SimExpr::Not(Box::new(self.sim_expr_unary()?)));
        }
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Some(SimExpr::Int(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.sim_expr()?;
                self.expect(TokenKind::RParen);
                Some(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(TokenKind::Dot) {
                    let (what, _) = self.expect_ident()?;
                    if what != "data" {
                        self.diagnostics.push(Diagnostic::error(
                            "parse",
                            format!("expected `.data`, found `.{what}`"),
                            Some(span),
                        ));
                        return None;
                    }
                    if self.eat(TokenKind::Dot) {
                        let (field, _) = self.expect_ident()?;
                        Some(SimExpr::Field(name, field))
                    } else {
                        Some(SimExpr::Data(name))
                    }
                } else {
                    Some(SimExpr::Var(name))
                }
            }
            other => {
                self.error_here(format!("expected simulation expression, found {other}"));
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::has_errors;

    fn parse_ok(src: &str) -> Package {
        let (pkg, diags) = parse_package(0, src);
        assert!(
            !has_errors(&diags),
            "unexpected errors: {:?}",
            diags.iter().map(|d| &d.message).collect::<Vec<_>>()
        );
        pkg.expect("package")
    }

    #[test]
    fn minimal_package() {
        let p = parse_ok("package demo;");
        assert_eq!(p.name, "demo");
        assert!(p.decls.is_empty());
    }

    #[test]
    fn uses_and_consts() {
        let p = parse_ok(
            "package q;\nuse std;\nconst width : int = 32;\nconst names : [string] = [\"a\", \"b\"];\nconst inferred = 3.5;",
        );
        assert_eq!(p.uses, vec!["std"]);
        assert_eq!(p.decls.len(), 3);
        match &p.decls[1] {
            Decl::Const(c) => {
                assert_eq!(c.kind, Some(VarKind::Array(Box::new(VarKind::Str))));
            }
            other => panic!("expected const, got {other:?}"),
        }
    }

    #[test]
    fn type_declarations() {
        let p = parse_ok(
            "package t;\ntype Byte = Stream(Bit(8));\nGroup AdderInput { data0: Bit(32), data1: Bit(32), }\nUnion U { a: Bit(2), b: Bit(3) }",
        );
        assert_eq!(p.decls.len(), 3);
        assert!(matches!(p.decls[0], Decl::TypeAlias { .. }));
        match &p.decls[1] {
            Decl::Group { fields, .. } => assert_eq!(fields.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stream_type_with_args() {
        let p = parse_ok("package t;\ntype T = Stream(Bit(8), d=2, t=2.0, c=7, r=Reverse, x=Flatten, u=Bit(1), keep);");
        match &p.decls[0] {
            Decl::TypeAlias {
                ty: TypeExpr::Stream { args, .. },
                ..
            } => {
                assert_eq!(args.len(), 7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let p = parse_ok("package t;\nconst x = 1 + 2 * 3 ^ 2;");
        // 1 + (2 * (3 ^ 2))
        match &p.decls[0] {
            Decl::Const(c) => match &c.value {
                Expr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => match rhs.as_ref() {
                    Expr::Binary {
                        op: BinOp::Mul,
                        rhs,
                        ..
                    } => {
                        assert!(matches!(rhs.as_ref(), Expr::Binary { op: BinOp::Pow, .. }));
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_bit_width_expression() {
        // Bit(ceil(log2(10^15 - 1))) from paper §IV-A.
        let p = parse_ok("package t;\ntype D = Bit(ceil(log2(10 ^ 15 - 1)));");
        assert!(matches!(
            &p.decls[0],
            Decl::TypeAlias {
                ty: TypeExpr::Bit(..),
                ..
            }
        ));
    }

    #[test]
    fn streamlet_with_templates_and_ports() {
        let p = parse_ok(
            "package t;\nstreamlet parallelize_s<in_t: type, out_t: type, n: int> {\n  input : in_t in,\n  output : out_t out [n],\n  mem : Stream(Bit(8)) in !mem_clock,\n}",
        );
        match &p.decls[0] {
            Decl::Streamlet(s) => {
                assert_eq!(s.params.len(), 3);
                assert_eq!(s.ports.len(), 3);
                assert!(s.ports[1].array.is_some());
                assert!(
                    matches!(&s.ports[2].clock, Some(ClockSpec::Named(n, _)) if n == "mem_clock")
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn impl_with_instances_connections_and_generatives() {
        let src = r#"
package t;
impl parallelize_i<t_in: type, pu: impl of process_unit_s, channel: int> of parallelize_s<type t_in, channel> {
    instance demux_inst(demux_i<type t_in, channel>),
    instance pu_inst(pu) [channel],
    for i in (0..channel) {
        demux_inst.outp[i] => pu_inst[i].inp,
    }
    if (channel > 4) {
        assert(channel <= 16, "too many channels"),
    } else {
        inp => demux_inst.inp,
    }
}
"#;
        let p = parse_ok(src);
        match &p.decls[0] {
            Decl::Impl(i) => {
                assert_eq!(i.params.len(), 3);
                assert!(
                    matches!(i.params[1].kind, TemplateParamKind::ImplOf(ref s) if s == "process_unit_s")
                );
                let ImplBody::Normal(stmts) = &i.body else {
                    panic!("expected normal body")
                };
                assert_eq!(stmts.len(), 4);
                assert!(matches!(&stmts[2], Stmt::For { .. }));
                assert!(matches!(&stmts[3], Stmt::If { else_body, .. } if else_body.len() == 1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn template_instantiation_arguments() {
        let p = parse_ok(
            "package t;\nimpl top of s {\n  instance x(parallelize_i<type Input, type Result, impl adder_32, 8>),\n}",
        );
        match &p.decls[0] {
            Decl::Impl(i) => {
                let ImplBody::Normal(stmts) = &i.body else {
                    panic!()
                };
                match &stmts[0] {
                    Stmt::Instance { impl_ref, .. } => {
                        assert_eq!(impl_ref.args.len(), 4);
                        assert!(matches!(impl_ref.args[0], TemplateArgExpr::Type(_)));
                        assert!(matches!(impl_ref.args[2], TemplateArgExpr::Impl(_)));
                        assert!(matches!(impl_ref.args[3], TemplateArgExpr::Value(_)));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn external_impl_with_attribute() {
        let p = parse_ok(
            "package t;\n@builtin(\"std.duplicator\")\nimpl dup_i<T: type, n: int> of dup_s<type T, n> external;",
        );
        match &p.decls[0] {
            Decl::Impl(i) => {
                assert_eq!(i.attributes.len(), 1);
                assert_eq!(i.attributes[0].name, "builtin");
                assert!(matches!(i.body, ImplBody::External { simulation: None }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn external_impl_with_simulation() {
        let src = r#"
package t;
impl adder_ext of adder_s external {
    simulation {
        state st = "idle";
        on (in0.recv && in1.recv) {
            delay(8);
            send(outp, in0.data + in1.data);
            ack(in0);
            ack(in1);
            set_state(st, "busy");
        }
        on (outp.ack || st != "busy") {
            set_state(st, "idle");
        }
    }
}
"#;
        let p = parse_ok(src);
        match &p.decls[0] {
            Decl::Impl(i) => match &i.body {
                ImplBody::External {
                    simulation: Some(sim),
                } => {
                    assert_eq!(sim.states.len(), 1);
                    assert_eq!(sim.handlers.len(), 2);
                    assert!(sim.source.contains("delay(8)"));
                    match &sim.handlers[0].event {
                        SimEvent::And(a, b) => {
                            assert_eq!(**a, SimEvent::Recv("in0".into()));
                            assert_eq!(**b, SimEvent::Recv("in1".into()));
                        }
                        other => panic!("{other:?}"),
                    }
                    assert_eq!(sim.handlers[0].actions.len(), 5);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sim_actions_if_and_for() {
        let block = parse_simulation_source(
            "on (inp.recv) { if (inp.data > 0) { send(outp, inp.data); } else { ack(inp); } for i in (0..4) { send(outp, i); } }",
        )
        .unwrap();
        assert_eq!(block.handlers.len(), 1);
        assert!(matches!(block.handlers[0].actions[0], SimAction::If { .. }));
        assert!(matches!(
            block.handlers[0].actions[1],
            SimAction::For { .. }
        ));
    }

    #[test]
    fn connection_endpoint_forms() {
        let p = parse_ok(
            "package t;\nimpl x of s {\n  a => b,\n  a[0] => inst.p,\n  inst[1].q[2] => c,\n}",
        );
        match &p.decls[0] {
            Decl::Impl(i) => {
                let ImplBody::Normal(stmts) = &i.body else {
                    panic!()
                };
                match &stmts[2] {
                    Stmt::Connect { src, .. } => {
                        let (inst, idx) = src.instance.as_ref().unwrap();
                        assert_eq!(inst, "inst");
                        assert!(idx.is_some());
                        assert_eq!(src.port, "q");
                        assert!(src.port_index.is_some());
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clockdomain_expression() {
        let p = parse_ok("package t;\nconst cd : clockdomain = clockdomain(\"mem\");");
        match &p.decls[0] {
            Decl::Const(c) => assert!(matches!(&c.value, Expr::Clock(n, _) if n == "mem")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_with_step() {
        let p = parse_ok("package t;\nconst r = (0..10 step 2);");
        match &p.decls[0] {
            Decl::Const(c) => assert!(matches!(&c.value, Expr::Range { step: Some(_), .. })),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let (_, diags) = parse_package(0, "package t;\nconst x = ;\nstreamlet s { }");
        assert!(has_errors(&diags));
        let (_, diags) = parse_package(0, "not_a_package");
        assert!(has_errors(&diags));
        let (_, diags) = parse_package(0, "package t;\nimpl x of s {\n  a => ,\n}");
        assert!(has_errors(&diags));
    }

    #[test]
    fn top_level_assert() {
        let p = parse_ok("package t;\nassert(1 + 1 == 2, \"math is broken\");");
        assert!(matches!(
            &p.decls[0],
            Decl::Assert {
                message: Some(_),
                ..
            }
        ));
    }
}
