//! Runtime values of the Tydi-lang evaluation stage.
//!
//! The five variable kinds of paper §IV-A (integer, float, string,
//! boolean, clock domain), arrays of these, plus the two entity-level
//! values that template arguments can carry: logical types and
//! implementations.
//!
//! Type values are backed by the session's hash-consed
//! [`TypeStore`]: a [`TypeValue`] carries the compact [`TypeId`] (so
//! equality is an integer compare and template memo keys never walk
//! trees), the shared canonical `Arc<LogicalType>`, and the store's
//! cached mangled text (so [`Value::mangle`] is O(1) instead of
//! stringifying the whole tree per reference).

use std::fmt;
use std::sync::Arc;
use tydi_spec::{ClockDomain, LogicalType, TypeId, TypeStore};

/// An evaluated logical type together with the declaration it came
/// from, which drives the strict type equality DRC (paper §IV-B).
#[derive(Debug, Clone)]
pub struct TypeValue {
    /// Hash-consed id in the session's [`TypeStore`]; equal ids ⇔
    /// structurally equal types (within one store).
    pub id: TypeId,
    /// The canonical structural type, shared with every other value of
    /// the same structure.
    pub ty: Arc<LogicalType>,
    /// Cached mangled display text (canonical form, spaces removed).
    pub mangled: Arc<str>,
    /// Fully-qualified origin (`package.Name` or a template mangling)
    /// for named declarations; `None` for anonymous type expressions.
    pub origin: Option<Arc<str>>,
}

impl TypeValue {
    /// The value of an already-interned type (anonymous).
    pub fn from_id(store: &TypeStore, id: TypeId) -> Self {
        TypeValue {
            id,
            ty: store.ty(id),
            mangled: store.mangled(id),
            origin: None,
        }
    }

    /// Interns `ty` into `store` and wraps it (anonymous).
    ///
    /// # Panics
    /// Panics when the type is invalid; callers validate first (the
    /// elaborator constructs types through the store, which rejects
    /// invalid nodes with a proper diagnostic).
    pub fn intern(store: &TypeStore, ty: &LogicalType) -> Self {
        let id = store.intern(ty).expect("interning an invalid type");
        TypeValue::from_id(store, id)
    }

    /// Attaches the declaration origin used for strict type equality.
    pub fn with_origin(mut self, origin: impl Into<Arc<str>>) -> Self {
        self.origin = Some(origin.into());
        self
    }
}

/// Two type values are equal when they denote the same interned type
/// *and* carry the same origin. Ids are only comparable within one
/// session store — exactly the scope a compilation uses.
impl PartialEq for TypeValue {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.origin == other.origin
    }
}

/// A reference to an elaborated implementation (used as a template
/// argument: `impl adder_32`). All fields are shared strings: an
/// `ImplValue` is cloned once per instantiating reference, which must
/// not copy name bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplValue {
    /// The elaborated (mangled) implementation name in the output IR.
    pub name: Arc<str>,
    /// The elaborated streamlet this implementation realizes.
    pub streamlet: Arc<str>,
    /// The base (template) name of that streamlet, used to check
    /// `impl of <streamlet>` template-parameter bounds.
    pub streamlet_base: Arc<str>,
}

/// A Tydi-lang value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Clock domain.
    Clock(ClockDomain),
    /// Array of values.
    Array(Vec<Value>),
    /// Logical type (template arguments, type aliases).
    Type(TypeValue),
    /// Implementation reference (template arguments).
    Impl(ImplValue),
}

impl Value {
    /// A short kind name for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::Clock(_) => "clockdomain",
            Value::Array(_) => "array",
            Value::Type(_) => "type",
            Value::Impl(_) => "impl",
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view (ints widen to float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True when the value is numeric (int or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Canonical text used for template-instance mangling. Two equal
    /// values always produce identical text; the text contains no
    /// whitespace. Type values return the store's cached mangled text,
    /// so this never walks a type tree.
    pub fn mangle(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v:?}"),
            Value::Str(s) => format!("{s:?}"),
            Value::Bool(b) => b.to_string(),
            Value::Clock(c) => format!("!{}", c.name()),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(Value::mangle).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Type(t) => t.mangled.as_ref().to_string(),
            Value::Impl(i) => i.name.as_ref().to_string(),
        }
    }
}

impl fmt::Display for Value {
    /// Strings display raw; every other value displays as its
    /// canonical mangled text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            other => write!(f, "{}", other.mangle()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(Value::Int(1).kind_name(), "int");
        assert_eq!(Value::Array(vec![]).kind_name(), "array");
        assert_eq!(
            Value::Clock(ClockDomain::new("m")).kind_name(),
            "clockdomain"
        );
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
    }

    #[test]
    fn mangling_is_whitespace_free_and_distinct() {
        let store = TypeStore::new();
        let t = TypeValue::intern(
            &store,
            &LogicalType::group(vec![("a", LogicalType::Bit(2)), ("b", LogicalType::Bit(3))]),
        );
        let m = Value::Type(t).mangle();
        assert!(!m.contains(' '));
        assert!(m.contains("Group"));
        assert_ne!(Value::Int(1).mangle(), Value::Str("1".into()).mangle());
        assert_ne!(Value::Float(1.0).mangle(), Value::Int(1).mangle());
        assert_eq!(
            Value::Array(vec![Value::Int(1), Value::Int(2)]).mangle(),
            "[1,2]"
        );
    }

    #[test]
    fn type_mangling_matches_display_without_spaces() {
        let store = TypeStore::new();
        let ty = LogicalType::stream(
            LogicalType::group(vec![("x", LogicalType::Bit(4)), ("y", LogicalType::Bit(4))]),
            tydi_spec::StreamParams::new().with_dimension(1),
        );
        let t = TypeValue::intern(&store, &ty);
        assert_eq!(Value::Type(t).mangle(), ty.to_string().replace(' ', ""));
    }

    #[test]
    fn type_equality_is_id_plus_origin() {
        let store = TypeStore::new();
        let a = TypeValue::intern(&store, &LogicalType::Bit(8));
        let b = TypeValue::intern(&store, &LogicalType::Bit(8));
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.ty, &b.ty));
        let named = b.clone().with_origin("demo.Byte");
        assert_ne!(a, named);
        let c = TypeValue::intern(&store, &LogicalType::Bit(9));
        assert_ne!(a, c);
    }

    #[test]
    fn display_strings_are_raw() {
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Int(4).to_string(), "4");
    }
}
