//! Abstract syntax tree for Tydi-lang.
//!
//! One [`Package`] per source file (files sharing a `package` name are
//! merged before elaboration). The AST mirrors the surface syntax; all
//! evaluation, template instantiation and generative expansion happens
//! in [`crate::instantiate`].

use crate::sim_ast::SimBlock;
use crate::span::Span;

/// Binary operators, lowest precedence first in the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `||`
    Or,
    /// `&&`
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `^` (power, as in the paper's `10^15`)
    Pow,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions of the variable/math system (paper §IV-A).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Float literal.
    Float(f64, Span),
    /// String literal.
    Str(String, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Clock domain literal `!name`.
    Clock(String, Span),
    /// Variable reference.
    Ident(String, Span),
    /// Array literal `[a, b, c]`.
    Array(Vec<Expr>, Span),
    /// Range `(start..end)` or `(start..end step s)`, end exclusive.
    Range {
        /// First value (inclusive).
        start: Box<Expr>,
        /// End bound (exclusive).
        end: Box<Expr>,
        /// Step (default 1).
        step: Option<Box<Expr>>,
        /// Source range.
        span: Span,
    },
    /// Indexing `base[index]`.
    Index {
        /// Array expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source range.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source range.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source range.
        span: Span,
    },
    /// Builtin function call (`ceil`, `log2`, `pow`, `len`, ...).
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source range.
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Float(_, s)
            | Expr::Str(_, s)
            | Expr::Bool(_, s)
            | Expr::Clock(_, s)
            | Expr::Ident(_, s)
            | Expr::Array(_, s) => *s,
            Expr::Range { span, .. }
            | Expr::Index { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Call { span, .. } => *span,
        }
    }
}

/// Type expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `Null`
    Null(Span),
    /// `Bit(expr)`
    Bit(Box<Expr>, Span),
    /// A named type (alias, Group/Union declaration, or a `type`
    /// template parameter).
    Ref(String, Span),
    /// `Stream(element, args...)`
    Stream {
        /// Element type.
        element: Box<TypeExpr>,
        /// Stream parameters.
        args: Vec<StreamArg>,
        /// Source range.
        span: Span,
    },
}

impl TypeExpr {
    /// The source span of the type expression.
    pub fn span(&self) -> Span {
        match self {
            TypeExpr::Null(s) | TypeExpr::Bit(_, s) | TypeExpr::Ref(_, s) => *s,
            TypeExpr::Stream { span, .. } => *span,
        }
    }
}

/// One keyword argument of a `Stream(...)` type expression.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamArg {
    /// `d = expr`
    Dimension(Expr),
    /// `t = expr`
    Throughput(Expr),
    /// `c = expr`
    Complexity(Expr),
    /// `r = Forward | Reverse`
    Direction(String, Span),
    /// `x = Sync | Flatten | Desync | FlatDesync`
    Synchronicity(String, Span),
    /// `u = type`
    User(TypeExpr),
    /// `keep = expr`
    Keep(Expr),
}

/// Kinds of `const` variables (paper §IV-A: integer, float, string,
/// boolean and clock domain, plus arrays of these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarKind {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `string`
    Str,
    /// `bool`
    Bool,
    /// `clockdomain`
    Clock,
    /// `[kind]`
    Array(Box<VarKind>),
}

/// A `const` declaration (all Tydi-lang variables are immutable).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDecl {
    /// Variable name.
    pub name: String,
    /// Optional declared kind; inferred when absent.
    pub kind: Option<VarKind>,
    /// Initializer.
    pub value: Expr,
    /// Source range.
    pub span: Span,
}

/// A template parameter (paper §IV-B: variables, logical types, and
/// implementations of a given streamlet).
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateParam {
    /// Parameter name.
    pub name: String,
    /// Parameter kind.
    pub kind: TemplateParamKind,
    /// Source range.
    pub span: Span,
}

/// Kinds of template parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateParamKind {
    /// `name: int`
    Int,
    /// `name: float`
    Float,
    /// `name: string`
    Str,
    /// `name: bool`
    Bool,
    /// `name: clockdomain`
    Clock,
    /// `name: type`
    Type,
    /// `name: impl of <streamlet>` — only implementations derived from
    /// the named streamlet (template) are accepted.
    ImplOf(String),
}

/// A reference to a (possibly templated) streamlet or implementation:
/// `name` or `name<arg, type T, impl x>`.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedRef {
    /// Base name.
    pub name: String,
    /// Template arguments (empty for plain references).
    pub args: Vec<TemplateArgExpr>,
    /// Source range.
    pub span: Span,
}

impl NamedRef {
    /// A plain (argument-less) reference.
    pub fn plain(name: impl Into<String>, span: Span) -> Self {
        NamedRef {
            name: name.into(),
            args: Vec::new(),
            span,
        }
    }
}

/// One template argument at an instantiation site.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateArgExpr {
    /// A value argument (int/float/string/bool/clockdomain).
    Value(Expr),
    /// `type <type-expr>`
    Type(TypeExpr),
    /// `impl <ref>`
    Impl(NamedRef),
}

/// Clock annotation on a port.
#[derive(Debug, Clone, PartialEq)]
pub enum ClockSpec {
    /// `!name`
    Named(String, Span),
    /// `!(expr)` where the expression evaluates to a clockdomain.
    Expr(Expr),
}

/// A port declaration inside a streamlet.
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Logical type (must elaborate to a `Stream`).
    pub ty: TypeExpr,
    /// Port direction.
    pub direction: PortDir,
    /// Optional array size: `name : T in [n]` expands to `name_0 ..
    /// name_{n-1}`.
    pub array: Option<Expr>,
    /// Optional clock domain annotation.
    pub clock: Option<ClockSpec>,
    /// Source range.
    pub span: Span,
}

/// Port direction keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// `in`
    In,
    /// `out`
    Out,
}

/// A streamlet declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamletDecl {
    /// Streamlet name.
    pub name: String,
    /// Template parameters (empty for concrete streamlets).
    pub params: Vec<TemplateParam>,
    /// Port declarations.
    pub ports: Vec<PortDecl>,
    /// Attributes (`@...`).
    pub attributes: Vec<Attribute>,
    /// Doc comment text.
    pub doc: String,
    /// Source range.
    pub span: Span,
}

/// An attribute: `@name` or `@name(expr)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Optional argument.
    pub arg: Option<Expr>,
    /// Source range.
    pub span: Span,
}

/// Statements inside a normal implementation body.
///
/// Unboxed for the same reason as [`Decl`]: statements are walked in
/// place during elaboration.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `instance name(impl_ref)` or `instance name(impl_ref) [n]`.
    Instance {
        /// Instance name.
        name: String,
        /// The implementation to instantiate.
        impl_ref: NamedRef,
        /// Optional array size.
        array: Option<Expr>,
        /// Source range.
        span: Span,
    },
    /// `src => dst`.
    Connect {
        /// Source endpoint.
        src: EndpointExpr,
        /// Sink endpoint.
        dst: EndpointExpr,
        /// Source range.
        span: Span,
    },
    /// Generative loop (paper Table II).
    For {
        /// Loop variable.
        var: String,
        /// Array or range to iterate.
        iterable: Expr,
        /// Body statements, expanded once per element.
        body: Vec<Stmt>,
        /// Source range.
        span: Span,
    },
    /// Conditional generation (paper Table II).
    If {
        /// Condition (must evaluate to bool).
        cond: Expr,
        /// Statements generated when true.
        body: Vec<Stmt>,
        /// Statements generated when false.
        else_body: Vec<Stmt>,
        /// Source range.
        span: Span,
    },
    /// `assert(expr)` / `assert(expr, "message")` (paper Table II).
    Assert {
        /// Condition that must hold.
        expr: Expr,
        /// Optional message.
        message: Option<Expr>,
        /// Source range.
        span: Span,
    },
    /// A local `const` (scoped to the surrounding body; shadowing
    /// allowed, paper §IV-A).
    Const(ConstDecl),
}

/// A connection endpoint: `port`, `port[i]`, `inst.port`,
/// `inst[i].port[j]`, ...
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointExpr {
    /// Instance name plus optional index; `None` for own ports.
    pub instance: Option<(String, Option<Expr>)>,
    /// Port name.
    pub port: String,
    /// Optional port array index.
    pub port_index: Option<Expr>,
    /// Source range.
    pub span: Span,
}

/// Implementation body.
#[derive(Debug, Clone, PartialEq)]
pub enum ImplBody {
    /// Instances and connections.
    Normal(Vec<Stmt>),
    /// `external`, optionally with event-driven simulation code
    /// (paper §V-A).
    External {
        /// Parsed simulation block, when present.
        simulation: Option<SimBlock>,
    },
}

/// An implementation declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplDecl {
    /// Implementation name.
    pub name: String,
    /// Template parameters (empty for concrete impls).
    pub params: Vec<TemplateParam>,
    /// The streamlet this implements.
    pub streamlet: NamedRef,
    /// Body.
    pub body: ImplBody,
    /// Attributes (`@builtin("std.duplicator")`, `@NoStrictType`, ...).
    pub attributes: Vec<Attribute>,
    /// Doc comment text.
    pub doc: String,
    /// Source range.
    pub span: Span,
}

/// Top-level declarations.
///
/// The variant sizes are deliberately unboxed: declarations are parsed
/// once and immediately stored in package tables, so the clarity of
/// direct pattern matching outweighs the enum size.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `const ...`
    Const(ConstDecl),
    /// `type Name = <type-expr>;`
    TypeAlias {
        /// Alias name.
        name: String,
        /// Aliased type.
        ty: TypeExpr,
        /// Source range.
        span: Span,
    },
    /// `Group Name { field: type, ... }`
    Group {
        /// Group name.
        name: String,
        /// Fields.
        fields: Vec<(String, TypeExpr)>,
        /// Source range.
        span: Span,
    },
    /// `Union Name { field: type, ... }`
    Union {
        /// Union name.
        name: String,
        /// Variants.
        fields: Vec<(String, TypeExpr)>,
        /// Source range.
        span: Span,
    },
    /// A streamlet declaration.
    Streamlet(StreamletDecl),
    /// An implementation declaration.
    Impl(ImplDecl),
    /// A top-level assertion, checked once at elaboration.
    Assert {
        /// Condition that must hold.
        expr: Expr,
        /// Optional message.
        message: Option<Expr>,
        /// Source range.
        span: Span,
    },
}

impl Decl {
    /// The declared name, if the declaration introduces one.
    pub fn name(&self) -> Option<&str> {
        match self {
            Decl::Const(c) => Some(&c.name),
            Decl::TypeAlias { name, .. } | Decl::Group { name, .. } | Decl::Union { name, .. } => {
                Some(name)
            }
            Decl::Streamlet(s) => Some(&s.name),
            Decl::Impl(i) => Some(&i.name),
            Decl::Assert { .. } => None,
        }
    }
}

/// A parsed source file.
#[derive(Debug, Clone, PartialEq)]
pub struct Package {
    /// Package name from the `package` header.
    pub name: String,
    /// Imported package names (`use x;`).
    pub uses: Vec<String>,
    /// Declarations in order.
    pub decls: Vec<Decl>,
    /// Source range of the header.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_spans() {
        let e = Expr::Int(3, Span::new(0, 5, 6));
        assert_eq!(e.span(), Span::new(0, 5, 6));
        let b = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(e.clone()),
            rhs: Box::new(e),
            span: Span::new(0, 5, 10),
        };
        assert_eq!(b.span().end, 10);
    }

    #[test]
    fn decl_names() {
        let d = Decl::TypeAlias {
            name: "T".into(),
            ty: TypeExpr::Null(Span::synthetic()),
            span: Span::synthetic(),
        };
        assert_eq!(d.name(), Some("T"));
        let a = Decl::Assert {
            expr: Expr::Bool(true, Span::synthetic()),
            message: None,
            span: Span::synthetic(),
        };
        assert_eq!(a.name(), None);
    }
}
