//! AST for the event-driven simulation syntax (paper §V-A).
//!
//! Simulation code is attached to *external* implementations and
//! describes their behaviour for the Tydi simulator: state variables,
//! composite port events, and event handlers that acknowledge ports,
//! send data, delay, and change state.
//!
//! ```text
//! simulation {
//!     state st = "idle";
//!     on (in0.recv && in1.recv) {
//!         delay(8);
//!         send(out, in0.data + in1.data);
//!         ack(in0);
//!         ack(in1);
//!         set_state(st, "busy");
//!     }
//!     on (out.ack) {
//!         set_state(st, "idle");
//!     }
//! }
//! ```

use crate::span::Span;

/// A `state name = "initial";` declaration. State variables take
/// string values (paper §V-A).
#[derive(Debug, Clone, PartialEq)]
pub struct SimStateDecl {
    /// Variable name.
    pub name: String,
    /// Initial value.
    pub init: String,
    /// Source range.
    pub span: Span,
}

/// Composite events built from port actions and state tests with
/// boolean logic (paper §V-A "designers can use boolean logic to
/// define composite events").
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// `port.recv` — a data packet is available on an input port.
    Recv(String),
    /// `port.ack` — a previously sent packet on an output port was
    /// accepted by the sink.
    Ack(String),
    /// `statevar == "value"`.
    StateIs(String, String),
    /// `statevar != "value"`.
    StateIsNot(String, String),
    /// Conjunction.
    And(Box<SimEvent>, Box<SimEvent>),
    /// Disjunction.
    Or(Box<SimEvent>, Box<SimEvent>),
    /// Negation.
    Not(Box<SimEvent>),
}

impl SimEvent {
    /// All ports mentioned in `recv` terms.
    pub fn recv_ports(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_recv(&mut out);
        out
    }

    fn collect_recv<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            SimEvent::Recv(p) => out.push(p),
            SimEvent::And(a, b) | SimEvent::Or(a, b) => {
                a.collect_recv(out);
                b.collect_recv(out);
            }
            SimEvent::Not(e) => e.collect_recv(out),
            _ => {}
        }
    }
}

/// Binary operators in simulation expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Value expressions inside handlers. Values are signed integers at
/// simulation level; comparisons yield 0/1.
#[derive(Debug, Clone, PartialEq)]
pub enum SimExpr {
    /// Integer literal.
    Int(i64),
    /// `port.data` — the element at the head of the port's buffer.
    Data(String),
    /// `port.data.field` — a group field of the head element.
    Field(String, String),
    /// A handler-local loop variable.
    Var(String),
    /// Binary operation.
    Binary(SimOp, Box<SimExpr>, Box<SimExpr>),
    /// Unary negation.
    Neg(Box<SimExpr>),
    /// Unary logical not.
    Not(Box<SimExpr>),
}

/// Actions inside an event handler.
#[derive(Debug, Clone, PartialEq)]
pub enum SimAction {
    /// `send(port, expr)` — enqueue a packet on an output port.
    Send {
        /// Output port.
        port: String,
        /// Value to send.
        expr: SimExpr,
    },
    /// `last(port)` / `last(port, n)` — close `n` (default 1)
    /// dimension levels on the most recent packet.
    Last {
        /// Output port.
        port: String,
        /// How many dimension levels to close.
        levels: u32,
    },
    /// `ack(port)` — acknowledge the packet at the head of an input
    /// port (the explicit handshake control of paper §V-A).
    Ack(String),
    /// `delay(expr)` — advance this component's local time by the
    /// given number of cycles before subsequent actions take effect.
    Delay(SimExpr),
    /// `set_state(var, "value")`.
    SetState(String, String),
    /// `if (cond) { ... } else { ... }` (paper §V-A: flow control in
    /// handlers).
    If {
        /// Condition; nonzero is true.
        cond: SimExpr,
        /// Actions when true.
        then_actions: Vec<SimAction>,
        /// Actions when false.
        else_actions: Vec<SimAction>,
    },
    /// `for v in (a..b) { ... }`.
    For {
        /// Loop variable.
        var: String,
        /// Start (inclusive).
        start: SimExpr,
        /// End (exclusive).
        end: SimExpr,
        /// Body.
        body: Vec<SimAction>,
    },
}

/// One `on (event) { actions }` handler.
#[derive(Debug, Clone, PartialEq)]
pub struct SimHandler {
    /// The triggering event.
    pub event: SimEvent,
    /// Actions to run when the event fires.
    pub actions: Vec<SimAction>,
    /// Source range.
    pub span: Span,
}

/// A full `simulation { ... }` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimBlock {
    /// State variable declarations.
    pub states: Vec<SimStateDecl>,
    /// Event handlers in declaration order.
    pub handlers: Vec<SimHandler>,
    /// The raw source text (carried into Tydi-IR so the simulator can
    /// re-parse it independently of the frontend).
    pub source: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recv_ports_collects_through_boolean_structure() {
        let e = SimEvent::And(
            Box::new(SimEvent::Recv("a".into())),
            Box::new(SimEvent::Or(
                Box::new(SimEvent::Recv("b".into())),
                Box::new(SimEvent::Not(Box::new(SimEvent::Recv("c".into())))),
            )),
        );
        assert_eq!(e.recv_ports(), vec!["a", "b", "c"]);
    }

    #[test]
    fn state_events_have_no_recv_ports() {
        let e = SimEvent::StateIs("st".into(), "idle".into());
        assert!(e.recv_ports().is_empty());
    }
}
