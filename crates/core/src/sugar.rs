//! Sugaring: automatic duplicator and voider insertion (paper §IV-D,
//! Fig. 4).
//!
//! The Tydi handshake requires every port to be connected exactly
//! once. Software-style designs naturally fan a value out to several
//! consumers and ignore outputs they don't need, so the compiler
//! releases the restriction by rewriting the design:
//!
//! * an internal data *source* (an own `in` port or an instance `out`
//!   port) connected to N > 1 sinks gets a **duplicator** with N
//!   outputs spliced in, its logical type and output count inferred;
//! * an internal source that is never used gets a **voider**, a
//!   component that is always ready and drops the data.
//!
//! Inserted components are external implementations bound to the
//! `std.duplicator` / `std.voider` builtin RTL generators and are
//! flagged `inserted_by_sugar` so reports can separate user code from
//! inferred code.

use std::collections::{HashMap, HashSet};
use tydi_ir::{
    Connection, EndpointRef, ImplId, Implementation, Instance, Port, PortDirection, Project,
    ProjectIndex, Streamlet,
};

/// What the sugaring pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SugarReport {
    /// Duplicators inserted.
    pub duplicators: usize,
    /// Voiders inserted.
    pub voiders: usize,
}

#[derive(Debug)]
struct VoiderPlan {
    source: EndpointRef,
    port: Port,
}

#[derive(Debug)]
struct DuplicatorPlan {
    source: EndpointRef,
    port: Port,
    /// Indices of the connections (into the impl's connection list)
    /// whose source must be rewritten to the duplicator outputs.
    connections: Vec<usize>,
}

#[derive(Debug, Default)]
struct ImplPlan {
    voiders: Vec<VoiderPlan>,
    duplicators: Vec<DuplicatorPlan>,
}

/// Applies sugaring to every normal implementation in the project,
/// building a fresh [`ProjectIndex`] for this run.
pub fn apply_sugaring(project: &mut Project) -> SugarReport {
    let mut index = ProjectIndex::build(project);
    apply_sugaring_with(project, &mut index)
}

/// Applies sugaring over the pipeline's shared [`ProjectIndex`]. The
/// index is kept current: helper streamlets/implementations the pass
/// appends are registered and mutated implementations have their
/// instance tables refreshed, so the DRC and lowering can keep using
/// the same index afterwards.
///
/// # Panics
/// Panics when the index does not cover every definition already in
/// the project.
pub fn apply_sugaring_with(project: &mut Project, index: &mut ProjectIndex) -> SugarReport {
    assert!(
        index.covers(project),
        "stale ProjectIndex: register definitions appended after build"
    );
    // Phase 1: read-only planning, keyed by implementation id.
    let mut plans: Vec<(ImplId, ImplPlan)> = Vec::new();
    for (id, implementation) in project.implementations_with_ids() {
        let plan = plan_implementation(project, index, id, implementation);
        if !plan.voiders.is_empty() || !plan.duplicators.is_empty() {
            plans.push((id, plan));
        }
    }

    // Phase 2: apply. Helper components are shared via a cache keyed
    // by the port type (+ origin + clock) and, for duplicators, the
    // fan-out.
    let mut report = SugarReport::default();
    let mut helper_cache: HashMap<String, String> = HashMap::new();
    let mut unique = 0usize;

    for (impl_id, plan) in plans {
        // One pass over the existing instance names; fresh helper
        // names then come from a bump counter checked against the set.
        let mut namer = InstanceNamer::new(project.implementation_by_id(impl_id));
        for voider in plan.voiders {
            let helper_impl =
                ensure_voider(project, index, &voider.port, &mut helper_cache, &mut unique);
            let inst_name = namer.fresh("voider");
            let implementation = project.implementation_by_id_mut(impl_id);
            implementation.add_instance(Instance::new(inst_name.clone(), helper_impl));
            let mut connection =
                Connection::new(voider.source, EndpointRef::instance(inst_name, "i"));
            connection.inserted_by_sugar = true;
            implementation.add_connection(connection);
            report.voiders += 1;
        }
        for duplicator in plan.duplicators {
            let fan_out = duplicator.connections.len();
            let helper_impl = ensure_duplicator(
                project,
                index,
                &duplicator.port,
                fan_out,
                &mut helper_cache,
                &mut unique,
            );
            let inst_name = namer.fresh("dup");
            let implementation = project.implementation_by_id_mut(impl_id);
            implementation.add_instance(Instance::new(inst_name.clone(), helper_impl));
            // Rewrite each consumer connection to read from one
            // duplicator output.
            for (k, &conn_idx) in duplicator.connections.iter().enumerate() {
                if let tydi_ir::ImplKind::Normal { connections, .. } = &mut implementation.kind {
                    connections[conn_idx].source =
                        EndpointRef::instance(inst_name.clone(), format!("o_{k}"));
                    connections[conn_idx].inserted_by_sugar = true;
                }
            }
            let mut feed =
                Connection::new(duplicator.source, EndpointRef::instance(inst_name, "i"));
            feed.inserted_by_sugar = true;
            implementation.add_connection(feed);
            report.duplicators += 1;
        }
        // The implementation gained helper instances: bring its
        // instance table up to date for the passes downstream.
        index.refresh_implementation(project, impl_id);
    }
    report
}

/// Plans voider/duplicator insertion for one implementation, with
/// all streamlet/port resolution served by the shared index.
fn plan_implementation(
    project: &Project,
    index: &ProjectIndex,
    id: ImplId,
    implementation: &Implementation,
) -> ImplPlan {
    let mut plan = ImplPlan::default();
    if implementation.is_external() {
        return plan;
    }
    let Some(own_streamlet) = index
        .streamlet_of_impl(id)
        .map(|sid| project.streamlet_by_id(sid))
    else {
        return plan;
    };

    // Count how many connections read from each source endpoint.
    let mut source_uses: HashMap<EndpointRef, Vec<usize>> = HashMap::new();
    for (idx, connection) in implementation.connections().iter().enumerate() {
        source_uses
            .entry(connection.source.clone())
            .or_default()
            .push(idx);
    }

    // Every internal source endpoint with its port definition.
    let mut sources: Vec<(EndpointRef, Port)> = Vec::new();
    for port in &own_streamlet.ports {
        if port.direction == PortDirection::In {
            sources.push((EndpointRef::own(port.name.clone()), port.clone()));
        }
    }
    for instance in implementation.instances() {
        if let Some(streamlet) = index
            .streamlet_of_impl_name(project, &instance.impl_name)
            .map(|sid| project.streamlet_by_id(sid))
        {
            for port in &streamlet.ports {
                if port.direction == PortDirection::Out {
                    sources.push((
                        EndpointRef::instance(instance.name.clone(), port.name.clone()),
                        port.clone(),
                    ));
                }
            }
        }
    }

    for (endpoint, port) in sources {
        match source_uses.get(&endpoint).map(Vec::as_slice) {
            None | Some([]) => plan.voiders.push(VoiderPlan {
                source: endpoint,
                port,
            }),
            Some([_single]) => {}
            Some(multiple) => plan.duplicators.push(DuplicatorPlan {
                source: endpoint,
                port,
                connections: multiple.to_vec(),
            }),
        }
    }
    plan
}

fn helper_key(prefix: &str, port: &Port, fan_out: usize) -> String {
    format!(
        "{prefix}|{}|{}|{}|{fan_out}",
        port.ty,
        port.type_origin.as_deref().unwrap_or(""),
        port.clock.name()
    )
}

fn clone_port(port: &Port, name: &str, direction: PortDirection) -> Port {
    let mut p = Port::new(name, direction, (*port.ty).clone()).with_clock(port.clock.clone());
    p.type_origin = port.type_origin.clone();
    p
}

fn ensure_voider(
    project: &mut Project,
    index: &mut ProjectIndex,
    port: &Port,
    cache: &mut HashMap<String, String>,
    unique: &mut usize,
) -> String {
    let key = helper_key("voider", port, 0);
    if let Some(existing) = cache.get(&key) {
        return existing.clone();
    }
    *unique += 1;
    let streamlet_name = format!("voider_s_{unique}");
    let impl_name = format!("voider_i_{unique}");
    let mut streamlet = Streamlet::new(streamlet_name.clone());
    streamlet.doc = format!("Auto-inserted voider for {}", port.ty);
    streamlet
        .ports
        .push(clone_port(port, "i", PortDirection::In));
    let sid = project
        .add_streamlet(streamlet)
        .expect("voider streamlet name is fresh");
    index.register_streamlet(project, sid);
    let implementation =
        Implementation::external(impl_name.clone(), streamlet_name).with_builtin("std.voider");
    let iid = project
        .add_implementation(implementation)
        .expect("voider impl name is fresh");
    index.register_implementation(project, iid);
    cache.insert(key, impl_name.clone());
    impl_name
}

fn ensure_duplicator(
    project: &mut Project,
    index: &mut ProjectIndex,
    port: &Port,
    fan_out: usize,
    cache: &mut HashMap<String, String>,
    unique: &mut usize,
) -> String {
    let key = helper_key("dup", port, fan_out);
    if let Some(existing) = cache.get(&key) {
        return existing.clone();
    }
    *unique += 1;
    let streamlet_name = format!("duplicator{fan_out}_s_{unique}");
    let impl_name = format!("duplicator{fan_out}_i_{unique}");
    let mut streamlet = Streamlet::new(streamlet_name.clone());
    streamlet.doc = format!("Auto-inserted {fan_out}-way duplicator for {}", port.ty);
    streamlet
        .ports
        .push(clone_port(port, "i", PortDirection::In));
    for k in 0..fan_out {
        streamlet
            .ports
            .push(clone_port(port, &format!("o_{k}"), PortDirection::Out));
    }
    let sid = project
        .add_streamlet(streamlet)
        .expect("duplicator streamlet name is fresh");
    index.register_streamlet(project, sid);
    let mut implementation =
        Implementation::external(impl_name.clone(), streamlet_name).with_builtin("std.duplicator");
    implementation
        .attributes
        .insert("param_outputs".into(), fan_out.to_string());
    let iid = project
        .add_implementation(implementation)
        .expect("duplicator impl name is fresh");
    index.register_implementation(project, iid);
    cache.insert(key, impl_name.clone());
    impl_name
}

/// Allocates helper instance names unique within one implementation.
/// The existing names are hashed once up front, so allocation is O(1)
/// per helper instead of a rescan of the instance list.
struct InstanceNamer {
    taken: HashSet<String>,
    counter: usize,
}

impl InstanceNamer {
    fn new(implementation: &Implementation) -> Self {
        InstanceNamer {
            taken: implementation
                .instances()
                .iter()
                .map(|i| i.name.clone())
                .collect(),
            counter: 0,
        }
    }

    fn fresh(&mut self, kind: &str) -> String {
        loop {
            let candidate = format!("__{kind}_{}", self.counter);
            self.counter += 1;
            if self.taken.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tydi_spec::{LogicalType, StreamParams};

    fn stream8() -> LogicalType {
        LogicalType::stream(LogicalType::Bit(8), StreamParams::new())
    }

    /// A source feeding two consumers plus an ignored output:
    /// the paper's Fig. 4 configuration.
    fn fig4_project() -> Project {
        let mut p = Project::new("fig4");
        p.add_streamlet(
            Streamlet::new("producer_s")
                .with_port(Port::new("o", PortDirection::Out, stream8()))
                .with_port(Port::new("unused", PortDirection::Out, stream8())),
        )
        .unwrap();
        p.add_streamlet(Streamlet::new("consumer_s").with_port(Port::new(
            "i",
            PortDirection::In,
            stream8(),
        )))
        .unwrap();
        p.add_streamlet(Streamlet::new("top_s")).unwrap();
        p.add_implementation(
            Implementation::external("producer_i", "producer_s").with_builtin("std.passthrough"),
        )
        .unwrap();
        p.add_implementation(
            Implementation::external("consumer_i", "consumer_s").with_builtin("std.voider"),
        )
        .unwrap();
        let mut top = Implementation::normal("top_i", "top_s");
        top.add_instance(Instance::new("src", "producer_i"));
        top.add_instance(Instance::new("c0", "consumer_i"));
        top.add_instance(Instance::new("c1", "consumer_i"));
        // src.o feeds both consumers (needs a duplicator);
        // src.unused is never read (needs a voider).
        top.add_connection(Connection::new(
            EndpointRef::instance("src", "o"),
            EndpointRef::instance("c0", "i"),
        ));
        top.add_connection(Connection::new(
            EndpointRef::instance("src", "o"),
            EndpointRef::instance("c1", "i"),
        ));
        p.add_implementation(top).unwrap();
        p
    }

    #[test]
    fn fig4_duplicator_and_voider_inserted() {
        let mut p = fig4_project();
        // Before sugaring the design violates the port usage rule.
        assert!(p.validate().is_err());
        let report = apply_sugaring(&mut p);
        assert_eq!(report.duplicators, 1);
        assert_eq!(report.voiders, 1);
        // After sugaring the design satisfies all design rules.
        assert_eq!(p.validate(), Ok(()));
        let top = p.implementation("top_i").unwrap();
        // 2 rewritten + dup feed + voider feed = 4 connections.
        assert_eq!(top.connections().len(), 4);
        assert_eq!(top.instances().len(), 5);
        assert!(
            top.connections()
                .iter()
                .filter(|c| c.inserted_by_sugar)
                .count()
                >= 3
        );
    }

    #[test]
    fn shared_index_stays_fresh_through_sugaring() {
        let mut p = fig4_project();
        let mut index = ProjectIndex::build(&p);
        let report = apply_sugaring_with(&mut p, &mut index);
        assert_eq!(report.duplicators, 1);
        assert_eq!(report.voiders, 1);
        // Helper components and spliced instances are all registered:
        // the same index drives a clean DRC with no rebuild.
        assert!(index.covers(&p));
        assert_eq!(p.validate_with(&index), Ok(()));
        let top = p.implementation_id("top_i").unwrap();
        let spliced = p
            .implementation_by_id(top)
            .instances()
            .last()
            .unwrap()
            .name
            .clone();
        assert!(index.instance(&p, top, &spliced).is_some());
    }

    #[test]
    fn sugaring_is_idempotent() {
        let mut p = fig4_project();
        apply_sugaring(&mut p);
        let report2 = apply_sugaring(&mut p);
        assert_eq!(report2, SugarReport::default());
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn helper_components_are_shared() {
        let mut p = fig4_project();
        // Add a second unused producer output of the same type: the
        // voider impl must be reused.
        let mut top2 = Implementation::normal("top2_i", "top_s");
        top2.add_instance(Instance::new("src", "producer_i"));
        top2.add_instance(Instance::new("c0", "consumer_i"));
        top2.add_connection(Connection::new(
            EndpointRef::instance("src", "o"),
            EndpointRef::instance("c0", "i"),
        ));
        p.add_implementation(top2).unwrap();
        let report = apply_sugaring(&mut p);
        assert_eq!(report.voiders, 2);
        // Only one voider streamlet was created for the shared type.
        let voider_streamlets = p
            .streamlets()
            .iter()
            .filter(|s| s.name.starts_with("voider_s"))
            .count();
        assert_eq!(voider_streamlets, 1);
    }

    #[test]
    fn clean_project_untouched() {
        let mut p = Project::new("clean");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o", PortDirection::Out, stream8())),
        )
        .unwrap();
        let mut w = Implementation::normal("wire_i", "pass_s");
        w.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(w).unwrap();
        let before = p.stats();
        let report = apply_sugaring(&mut p);
        assert_eq!(report, SugarReport::default());
        assert_eq!(p.stats(), before);
    }

    #[test]
    fn own_in_port_fanout_gets_duplicator() {
        let mut p = Project::new("t");
        p.add_streamlet(
            Streamlet::new("s")
                .with_port(Port::new("i", PortDirection::In, stream8()))
                .with_port(Port::new("o1", PortDirection::Out, stream8()))
                .with_port(Port::new("o2", PortDirection::Out, stream8())),
        )
        .unwrap();
        let mut imp = Implementation::normal("fan_i", "s");
        imp.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o1"),
        ));
        imp.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o2"),
        ));
        p.add_implementation(imp).unwrap();
        let report = apply_sugaring(&mut p);
        assert_eq!(report.duplicators, 1);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn sugar_preserves_type_origin_for_strict_drc() {
        let mut p = Project::new("t");
        let mut port_i = Port::new("i", PortDirection::In, stream8());
        port_i.type_origin = Some("pack.Byte".into());
        let mut port_o1 = Port::new("o1", PortDirection::Out, stream8());
        port_o1.type_origin = Some("pack.Byte".into());
        let mut port_o2 = Port::new("o2", PortDirection::Out, stream8());
        port_o2.type_origin = Some("pack.Byte".into());
        p.add_streamlet(
            Streamlet::new("s")
                .with_port(port_i)
                .with_port(port_o1)
                .with_port(port_o2),
        )
        .unwrap();
        let mut imp = Implementation::normal("fan_i", "s");
        imp.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o1"),
        ));
        imp.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::own("o2"),
        ));
        p.add_implementation(imp).unwrap();
        apply_sugaring(&mut p);
        // Strict type equality holds through the inserted duplicator.
        assert_eq!(p.validate(), Ok(()));
    }
}
