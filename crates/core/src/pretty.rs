//! A canonical pretty-printer for the Tydi-lang AST.
//!
//! [`print_package`] renders a parsed [`Package`] back to surface
//! syntax in one deterministic layout. Two uses:
//!
//! * **AST fingerprints** for the incremental pipeline
//!   ([`crate::fingerprint`]): the printed form is independent of
//!   spans, whitespace and (non-doc) comments, so a comment-only edit
//!   produces the same fingerprint and reuses every downstream
//!   artifact;
//! * **round-trip testing**: parse → print → re-parse must reach a
//!   fixed point (`print(parse(print(ast))) == print(ast)`), which
//!   pins parser and printer against each other.
//!
//! Compound expressions are printed fully parenthesized so the output
//! re-parses to the same tree regardless of precedence; parentheses
//! are not represented in the AST, so this is still a fixed point.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a package to canonical surface syntax.
pub fn print_package(package: &Package) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "package {};", package.name);
    for used in &package.uses {
        let _ = writeln!(out, "use {used};");
    }
    for decl in &package.decls {
        print_decl(&mut out, decl);
    }
    out
}

fn print_decl(out: &mut String, decl: &Decl) {
    match decl {
        Decl::Const(c) => {
            let _ = writeln!(out, "const {};", const_body(c));
        }
        Decl::TypeAlias { name, ty, .. } => {
            let _ = writeln!(out, "type {name} = {};", type_expr(ty));
        }
        Decl::Group { name, fields, .. } => print_composite(out, "Group", name, fields),
        Decl::Union { name, fields, .. } => print_composite(out, "Union", name, fields),
        Decl::Streamlet(s) => {
            print_attributes(out, &s.attributes);
            let _ = writeln!(out, "streamlet {}{} {{", s.name, template_params(&s.params));
            for port in &s.ports {
                let _ = writeln!(out, "    {},", port_decl(port));
            }
            let _ = writeln!(out, "}}");
        }
        Decl::Impl(i) => print_impl(out, i),
        Decl::Assert { expr, message, .. } => {
            let _ = writeln!(out, "assert({});", assert_args(expr, message));
        }
    }
}

fn print_composite(out: &mut String, keyword: &str, name: &str, fields: &[(String, TypeExpr)]) {
    let _ = writeln!(out, "{keyword} {name} {{");
    for (field, ty) in fields {
        let _ = writeln!(out, "    {field} : {},", type_expr(ty));
    }
    let _ = writeln!(out, "}}");
}

fn print_attributes(out: &mut String, attributes: &[Attribute]) {
    for attr in attributes {
        match &attr.arg {
            Some(arg) => {
                let _ = writeln!(out, "@{}({})", attr.name, expr(arg));
            }
            None => {
                let _ = writeln!(out, "@{}", attr.name);
            }
        }
    }
}

fn print_impl(out: &mut String, i: &ImplDecl) {
    print_attributes(out, &i.attributes);
    let head = format!(
        "impl {}{} of {}",
        i.name,
        template_params(&i.params),
        named_ref(&i.streamlet)
    );
    match &i.body {
        ImplBody::External { simulation: None } => {
            let _ = writeln!(out, "{head} external;");
        }
        ImplBody::External {
            simulation: Some(sim),
        } => {
            // The simulation body is preserved verbatim: the parser
            // captures (and trims) the raw text between the braces.
            let _ = writeln!(out, "{head} external {{");
            let _ = writeln!(out, "simulation {{");
            let _ = writeln!(out, "{}", sim.source);
            let _ = writeln!(out, "}}");
            let _ = writeln!(out, "}}");
        }
        ImplBody::Normal(stmts) => {
            let _ = writeln!(out, "{head} {{");
            for stmt in stmts {
                print_stmt(out, stmt, 1);
            }
            let _ = writeln!(out, "}}");
        }
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    let pad = "    ".repeat(depth);
    match stmt {
        Stmt::Instance {
            name,
            impl_ref,
            array,
            ..
        } => {
            let _ = write!(out, "{pad}instance {name}({})", named_ref(impl_ref));
            if let Some(n) = array {
                let _ = write!(out, " [{}]", expr(n));
            }
            let _ = writeln!(out, ",");
        }
        Stmt::Connect { src, dst, .. } => {
            let _ = writeln!(out, "{pad}{} => {},", endpoint(src), endpoint(dst));
        }
        Stmt::For {
            var,
            iterable,
            body,
            ..
        } => {
            let _ = writeln!(out, "{pad}for {var} in {} {{", expr(iterable));
            for s in body {
                print_stmt(out, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::If { .. } => print_if(out, stmt, depth),
        Stmt::Assert {
            expr: e, message, ..
        } => {
            let _ = writeln!(out, "{pad}assert({}),", assert_args(e, message));
        }
        Stmt::Const(c) => {
            let _ = writeln!(out, "{pad}const {},", const_body(c));
        }
    }
}

/// Prints an `if` chain, folding a single nested `if` in the else
/// branch back into `else if` (the shape the parser builds).
fn print_if(out: &mut String, stmt: &Stmt, depth: usize) {
    let pad = "    ".repeat(depth);
    let mut current = stmt;
    let _ = write!(out, "{pad}");
    loop {
        let Stmt::If {
            cond,
            body,
            else_body,
            ..
        } = current
        else {
            unreachable!("print_if called on a non-if statement");
        };
        let _ = writeln!(out, "if ({}) {{", expr(cond));
        for s in body {
            print_stmt(out, s, depth + 1);
        }
        match else_body.as_slice() {
            [] => {
                let _ = writeln!(out, "{pad}}}");
                return;
            }
            [nested @ Stmt::If { .. }] => {
                let _ = write!(out, "{pad}}} else ");
                current = nested;
            }
            stmts => {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in stmts {
                    print_stmt(out, s, depth + 1);
                }
                let _ = writeln!(out, "{pad}}}");
                return;
            }
        }
    }
}

fn const_body(c: &ConstDecl) -> String {
    let mut s = c.name.clone();
    if let Some(kind) = &c.kind {
        let _ = write!(s, " : {}", var_kind(kind));
    }
    let _ = write!(s, " = {}", expr(&c.value));
    s
}

fn var_kind(kind: &VarKind) -> String {
    match kind {
        VarKind::Int => "int".to_string(),
        VarKind::Float => "float".to_string(),
        VarKind::Str => "string".to_string(),
        VarKind::Bool => "bool".to_string(),
        VarKind::Clock => "clockdomain".to_string(),
        VarKind::Array(inner) => format!("[{}]", var_kind(inner)),
    }
}

fn assert_args(e: &Expr, message: &Option<Expr>) -> String {
    match message {
        Some(m) => format!("{}, {}", expr(e), expr(m)),
        None => expr(e),
    }
}

fn template_params(params: &[TemplateParam]) -> String {
    if params.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = params
        .iter()
        .map(|p| {
            let kind = match &p.kind {
                TemplateParamKind::Int => "int".to_string(),
                TemplateParamKind::Float => "float".to_string(),
                TemplateParamKind::Str => "string".to_string(),
                TemplateParamKind::Bool => "bool".to_string(),
                TemplateParamKind::Clock => "clockdomain".to_string(),
                TemplateParamKind::Type => "type".to_string(),
                TemplateParamKind::ImplOf(s) => format!("impl of {s}"),
            };
            format!("{}: {kind}", p.name)
        })
        .collect();
    format!("<{}>", rendered.join(", "))
}

fn named_ref(r: &NamedRef) -> String {
    if r.args.is_empty() {
        return r.name.clone();
    }
    let args: Vec<String> = r
        .args
        .iter()
        .map(|arg| match arg {
            TemplateArgExpr::Value(e) => expr(e),
            TemplateArgExpr::Type(t) => format!("type {}", type_expr(t)),
            TemplateArgExpr::Impl(i) => format!("impl {}", named_ref(i)),
        })
        .collect();
    format!("{}<{}>", r.name, args.join(", "))
}

fn port_decl(port: &PortDecl) -> String {
    let mut s = format!(
        "{} : {} {}",
        port.name,
        type_expr(&port.ty),
        match port.direction {
            PortDir::In => "in",
            PortDir::Out => "out",
        }
    );
    if let Some(n) = &port.array {
        let _ = write!(s, " [{}]", expr(n));
    }
    match &port.clock {
        Some(ClockSpec::Named(name, _)) => {
            let _ = write!(s, " !{name}");
        }
        Some(ClockSpec::Expr(e)) => {
            let _ = write!(s, " !({})", expr(e));
        }
        None => {}
    }
    s
}

fn endpoint(e: &EndpointExpr) -> String {
    let mut s = String::new();
    if let Some((instance, index)) = &e.instance {
        let _ = write!(s, "{instance}");
        if let Some(i) = index {
            let _ = write!(s, "[{}]", expr(i));
        }
        s.push('.');
    }
    let _ = write!(s, "{}", e.port);
    if let Some(i) = &e.port_index {
        let _ = write!(s, "[{}]", expr(i));
    }
    s
}

/// Renders a type expression.
pub fn type_expr(ty: &TypeExpr) -> String {
    match ty {
        TypeExpr::Null(_) => "Null".to_string(),
        TypeExpr::Bit(width, _) => format!("Bit({})", expr(width)),
        TypeExpr::Ref(name, _) => name.clone(),
        TypeExpr::Stream { element, args, .. } => {
            let mut s = format!("Stream({}", type_expr(element));
            for arg in args {
                let rendered = match arg {
                    StreamArg::Dimension(e) => format!("d={}", expr(e)),
                    StreamArg::Throughput(e) => format!("t={}", expr(e)),
                    StreamArg::Complexity(e) => format!("c={}", expr(e)),
                    StreamArg::Direction(name, _) => format!("r={name}"),
                    StreamArg::Synchronicity(name, _) => format!("x={name}"),
                    StreamArg::User(t) => format!("u={}", type_expr(t)),
                    StreamArg::Keep(e) => format!("keep={}", expr(e)),
                };
                let _ = write!(s, ", {rendered}");
            }
            s.push(')');
            s
        }
    }
}

/// Renders an expression, fully parenthesizing compound forms.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v, _) => {
            if *v < 0 {
                // `-N` lexes as unary minus; parenthesize so the
                // printed form stays one expression in any context.
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        // `{:?}` always keeps a `.0` or exponent, so the token
        // re-lexes as a float.
        Expr::Float(v, _) => format!("{v:?}"),
        Expr::Str(s, _) => quote(s),
        Expr::Bool(v, _) => v.to_string(),
        Expr::Clock(name, _) => format!("clockdomain({})", quote(name)),
        Expr::Ident(name, _) => name.clone(),
        Expr::Array(items, _) => {
            let items: Vec<String> = items.iter().map(expr).collect();
            format!("[{}]", items.join(", "))
        }
        Expr::Range {
            start, end, step, ..
        } => match step {
            Some(s) => format!("({}..{} step {})", expr(start), expr(end), expr(s)),
            None => format!("({}..{})", expr(start), expr(end)),
        },
        Expr::Index { base, index, .. } => format!("{}[{}]", expr(base), expr(index)),
        Expr::Unary { op, operand, .. } => {
            let op = match op {
                UnaryOp::Neg => "-",
                UnaryOp::Not => "!",
            };
            format!("({op}{})", expr(operand))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let op = match op {
                BinOp::Or => "||",
                BinOp::And => "&&",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Pow => "^",
            };
            format!("({} {op} {})", expr(lhs), expr(rhs))
        }
        Expr::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(expr).collect();
            format!("{name}({})", args.join(", "))
        }
    }
}

/// Quotes a string literal using only the escapes the lexer accepts.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_package;

    fn roundtrip(source: &str) -> (String, String) {
        let (package, diags) = parse_package(0, source);
        let package = package.unwrap_or_else(|| panic!("parse failed: {diags:?}"));
        assert!(
            !crate::diagnostics::has_errors(&diags),
            "parse errors: {diags:?}"
        );
        let first = print_package(&package);
        let (reparsed, diags2) = parse_package(0, &first);
        let reparsed = reparsed.unwrap_or_else(|| panic!("re-parse failed:\n{first}\n{diags2:?}"));
        assert!(
            !crate::diagnostics::has_errors(&diags2),
            "re-parse errors for:\n{first}\n{diags2:?}"
        );
        let second = print_package(&reparsed);
        (first, second)
    }

    #[test]
    fn simple_design_reaches_fixed_point() {
        let (first, second) = roundtrip(
            r#"
package demo;
use std;
const width : int = 8 * 2;
type Byte = Stream(Bit(width), d=1, c=7);
streamlet wire_s { i : Byte in, o : Byte out !mem, }
@NoStrictType
impl wire_i of wire_s { i => o, }
"#,
        );
        assert_eq!(first, second);
        assert!(first.contains("package demo;"));
        assert!(first.contains("(8 * 2)"));
    }

    #[test]
    fn templates_and_generative_syntax_reach_fixed_point() {
        let (first, second) = roundtrip(
            r#"
package t;
streamlet p_s<n: int, t: type> { i : Stream(Bit(n)) in [n], }
impl p_i<n: int, pu: impl of p_s> of p_s<n, type Bit(8)> {
    instance u(pu) [n],
    for k in (0..n step 2) {
        if (k > 2) { i[k] => u[k].i, } else if (k == 1) { assert(true, "msg"), }
        else { const z = [1, 2], }
    }
}
"#,
        );
        assert_eq!(first, second);
    }

    #[test]
    fn external_simulation_body_is_preserved_verbatim() {
        let (first, second) = roundtrip(
            r#"
package s;
type W = Stream(Bit(8));
streamlet e_s { i : W in, o : W out, }
impl e_i of e_s external {
    simulation {
        state st = "idle";
        on (i.recv && st == "idle") { send(o, i.data); ack(i); }
    }
}
"#,
        );
        assert_eq!(first, second);
        assert!(first.contains("state st = \"idle\";"));
    }

    #[test]
    fn comment_only_edits_print_identically() {
        let base = r#"
package c;
type W = Stream(Bit(8));
streamlet s { i : W in, o : W out, }
impl x of s { i => o, }
"#;
        let commented = format!("// a comment\n{base}\n// trailing note\n");
        let (p1, _) = parse_package(0, base);
        let (p2, _) = parse_package(0, &commented);
        assert_eq!(print_package(&p1.unwrap()), print_package(&p2.unwrap()));
    }
}
