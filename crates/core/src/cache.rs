//! The artifact cache behind the incremental compilation pipeline.
//!
//! An [`ArtifactCache`] memoizes per-unit stage outputs keyed by
//! content fingerprints ([`crate::fingerprint`]):
//!
//! * **parse artifacts** — one per registered source file, keyed by
//!   the file's slot in the session file table plus the fingerprint of
//!   its name and raw text. The artifact carries the parsed package,
//!   its AST fingerprint, and the diagnostics the parse emitted.
//! * **elaboration artifacts** — one per *project state*, keyed by
//!   the options fingerprint plus the ordered AST fingerprints of
//!   every input file. The artifact carries the fully elaborated,
//!   sugared, DRC-clean project, so a hit skips the elaborate, sugar
//!   and DRC stages wholesale.
//!
//! The cache persists to a directory (conventionally `.tydic-cache/`)
//! as a line-based manifest plus one `.tirb` file (the versioned
//! Tydi-IR binary format with its interned type table, see
//! [`tydi_ir::binary`]) per elaboration artifact — a warm load
//! decodes each distinct type once instead of re-parsing the whole
//! project text. The manifest header records a schema fingerprint
//! derived from the compiler version; a cache written by a different
//! build fails the header check and loads as empty, so stale caches
//! self-invalidate instead of being misread.
//! Parse artifacts persist only their fingerprints and diagnostics
//! (ASTs are cheap to rebuild and expensive to serialize); a restored
//! entry still lets a warm start prove "this file is unchanged" and
//! skip re-parsing it when the elaboration artifact hits.
//!
//! Parse artifacts memoize the parser's *exact* output for a file —
//! including any diagnostics it emitted, which replay verbatim on a
//! hit — so error-bearing parses are cached too (only a total parse
//! failure, where no tree exists, is never stored). Elaboration
//! artifacts, by contrast, are stored only for compiles that passed
//! the DRC: a failed elaborate/DRC run caches nothing and re-reports
//! faithfully on every attempt.
//!
//! The cache is bounded: at most [`PARSE_CAPACITY`] parse artifacts
//! and [`ELAB_CAPACITY`] elaboration artifacts, both FIFO-evicted.
//! On save, artifact files already on disk are not rewritten (their
//! names are content hashes), and artifact files no longer referenced
//! by the manifest — including `.tir` files left behind by the legacy
//! text schema — are removed, so a long `--watch` session does
//! bounded work per persist instead of rewriting its whole history.

use crate::ast::Package;
use crate::diagnostics::{Diagnostic, Severity};
use crate::fingerprint::{schema_fingerprint, Fingerprint};
use crate::instantiate::ElabInfo;
use crate::span::Span;
use crate::sugar::SugarReport;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use tydi_ir::Project;

/// Default name of the on-disk cache directory.
pub const CACHE_DIR_NAME: &str = ".tydic-cache";

/// Maximum number of memoized elaboration artifacts (FIFO eviction).
/// Each artifact is a full elaborated project; a watch session only
/// ever ping-pongs between a handful of recent states.
pub const ELAB_CAPACITY: usize = 16;

/// Maximum number of memoized parse artifacts (FIFO eviction). Parse
/// artifacts are per file *and* per text, so a long watch session
/// accumulates one per edit; the cap bounds that history while
/// leaving plenty of room for many files (or many designs sharing
/// one cache directory).
pub const PARSE_CAPACITY: usize = 256;

const MANIFEST_NAME: &str = "manifest.txt";

/// Extension of persisted elaboration artifacts (binary Tydi-IR).
const ARTIFACT_EXT: &str = "tirb";

/// Artifact extensions the garbage collector sweeps: the current
/// binary format plus the legacy text format, so upgrading a cache
/// directory also cleans up its orphaned `.tir` files.
const SWEPT_EXTS: &[&str] = &[ARTIFACT_EXT, "tir"];

/// Cache key of one parsed source file: its slot in the session file
/// table (spans index into that table, so an artifact is only valid
/// at the slot it was parsed at) plus the source fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParseKey {
    /// Index in the session file table.
    pub slot: usize,
    /// Fingerprint of the file name and raw text.
    pub source: Fingerprint,
}

/// Memoized output of parsing one source file.
#[derive(Debug, Clone)]
pub struct ParseArtifact {
    /// The parsed package. `None` for entries restored from disk —
    /// the AST fingerprint is known but the tree must be rebuilt if
    /// elaboration actually needs it.
    pub package: Option<Package>,
    /// Fingerprint of the canonical printed AST.
    pub ast: Fingerprint,
    /// Diagnostics the parse emitted.
    pub diagnostics: Vec<Diagnostic>,
}

/// Memoized output of the elaborate + sugar + DRC stages.
#[derive(Debug, Clone)]
pub struct ElabArtifact {
    /// The elaborated, sugared, validated project.
    pub project: Project,
    /// Elaboration statistics (connection spans are not persisted;
    /// they are only consulted when the DRC fails, and cached
    /// artifacts passed the DRC).
    pub info: ElabInfo,
    /// What sugaring did.
    pub sugar_report: SugarReport,
    /// Diagnostics emitted by the three cached stages.
    pub diagnostics: Vec<Diagnostic>,
}

/// The in-memory artifact cache with disk persistence.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    parse: HashMap<ParseKey, ParseArtifact>,
    /// Insertion order of `parse` keys, for FIFO eviction.
    parse_order: Vec<ParseKey>,
    elab: HashMap<Fingerprint, ElabArtifact>,
    /// Insertion order of `elab` keys, for FIFO eviction.
    elab_order: Vec<Fingerprint>,
    dirty: bool,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// Number of memoized parse artifacts.
    pub fn parse_entries(&self) -> usize {
        self.parse.len()
    }

    /// Number of memoized elaboration artifacts.
    pub fn elab_entries(&self) -> usize {
        self.elab.len()
    }

    /// True when the cache changed since it was created or loaded.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Looks up the parse artifact for a source file.
    pub fn lookup_parse(&self, key: ParseKey) -> Option<&ParseArtifact> {
        self.parse.get(&key)
    }

    /// Stores the parse artifact for a source file, evicting the
    /// oldest entries beyond [`PARSE_CAPACITY`] (re-parsing an
    /// evicted text is cheap).
    pub fn store_parse(&mut self, key: ParseKey, artifact: ParseArtifact) {
        self.dirty = true;
        if self.parse.insert(key, artifact).is_none() {
            self.parse_order.push(key);
        }
        while self.parse_order.len() > PARSE_CAPACITY {
            let evicted = self.parse_order.remove(0);
            self.parse.remove(&evicted);
        }
    }

    /// Re-attaches a materialized AST to a disk-restored parse entry.
    pub fn attach_package(&mut self, key: ParseKey, package: Package) {
        if let Some(entry) = self.parse.get_mut(&key) {
            entry.package = Some(package);
        }
    }

    /// Looks up an elaboration artifact.
    pub fn lookup_elab(&self, key: Fingerprint) -> Option<&ElabArtifact> {
        self.elab.get(&key)
    }

    /// Stores an elaboration artifact, evicting the oldest entries
    /// beyond [`ELAB_CAPACITY`].
    pub fn store_elab(&mut self, key: Fingerprint, artifact: ElabArtifact) {
        self.dirty = true;
        if self.elab.insert(key, artifact).is_none() {
            self.elab_order.push(key);
        }
        while self.elab_order.len() > ELAB_CAPACITY {
            let evicted = self.elab_order.remove(0);
            self.elab.remove(&evicted);
        }
    }

    // ---- persistence ----------------------------------------------------

    /// Loads the cache persisted under `dir`. A missing directory, an
    /// unreadable manifest, or a schema mismatch all yield an empty
    /// cache — a stale or foreign cache self-invalidates rather than
    /// being misread.
    pub fn load(dir: &Path) -> ArtifactCache {
        let Ok(manifest) = std::fs::read_to_string(dir.join(MANIFEST_NAME)) else {
            return ArtifactCache::new();
        };
        parse_manifest(&manifest, dir).unwrap_or_default()
    }

    /// Persists the cache under `dir` (creating it), overwriting any
    /// previous contents.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        use std::fmt::Write as _;
        std::fs::create_dir_all(dir)?;
        let mut manifest = String::new();
        let _ = writeln!(manifest, "tydic-cache {}", schema_fingerprint());
        // Deterministic order keeps the manifest diffable.
        let mut parse_keys: Vec<&ParseKey> = self.parse.keys().collect();
        parse_keys.sort_by_key(|k| (k.slot, k.source));
        for key in parse_keys {
            let artifact = &self.parse[key];
            let _ = writeln!(
                manifest,
                "parse {} {} {} {}",
                key.slot,
                key.source,
                artifact.ast,
                artifact.diagnostics.len()
            );
            for diag in &artifact.diagnostics {
                let _ = writeln!(manifest, "{}", diag_line(diag));
            }
        }
        // Elaboration artifacts persist in insertion order so FIFO
        // eviction survives a round trip.
        for key in &self.elab_order {
            let artifact = &self.elab[key];
            let _ = writeln!(
                manifest,
                "elab {} {} {} {} {} {} {} {}",
                key,
                artifact.sugar_report.duplicators,
                artifact.sugar_report.voiders,
                artifact.info.template_instantiations,
                artifact.info.template_cache_hits,
                artifact.info.type_store.distinct_types,
                artifact.info.type_store.intern_hits,
                artifact.diagnostics.len()
            );
            for diag in &artifact.diagnostics {
                let _ = writeln!(manifest, "{}", diag_line(diag));
            }
            // Artifact names are content hashes: an existing file is
            // already correct, so a persist only writes new artifacts.
            let path = dir.join(format!("{key}.{ARTIFACT_EXT}"));
            if !path.exists() {
                std::fs::write(path, tydi_ir::binary::encode_project(&artifact.project))?;
            }
        }
        // Garbage-collect artifact files evicted from (or never in)
        // the manifest — including legacy `.tir` text artifacts, which
        // the binary schema never references — so the directory stays
        // bounded across format migrations.
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().to_string();
                let Some((stem, ext)) = name.rsplit_once('.') else {
                    continue;
                };
                if !SWEPT_EXTS.contains(&ext) {
                    continue;
                }
                let referenced = ext == ARTIFACT_EXT
                    && Fingerprint::parse(stem)
                        .map(|key| self.elab.contains_key(&key))
                        .unwrap_or(false);
                if !referenced {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        std::fs::write(dir.join(MANIFEST_NAME), manifest)
    }
}

fn diag_line(diag: &Diagnostic) -> String {
    let severity = match diag.severity {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    };
    let span = match diag.span {
        Some(s) => format!("{}:{}:{}", s.file, s.start, s.end),
        None => "-".to_string(),
    };
    format!(
        "diag {severity} {} {span} {}",
        diag.stage,
        diag.message.replace('\\', "\\\\").replace('\n', "\\n")
    )
}

fn parse_diag_line(line: &str) -> Option<Diagnostic> {
    let rest = line.strip_prefix("diag ")?;
    let mut parts = rest.splitn(4, ' ');
    let severity = match parts.next()? {
        "note" => Severity::Note,
        "warning" => Severity::Warning,
        "error" => Severity::Error,
        _ => return None,
    };
    let stage = static_stage(parts.next()?);
    let span = match parts.next()? {
        "-" => None,
        text => {
            let mut nums = text.splitn(3, ':');
            Some(Span::new(
                nums.next()?.parse().ok()?,
                nums.next()?.parse().ok()?,
                nums.next()?.parse().ok()?,
            ))
        }
    };
    let message = parts
        .next()
        .unwrap_or("")
        .replace("\\n", "\n")
        .replace("\\\\", "\\");
    Some(Diagnostic {
        severity,
        message,
        span,
        stage,
    })
}

/// Maps a persisted stage label back to the static names diagnostics
/// carry (unknown labels — from a future schema — fold to "cache").
fn static_stage(label: &str) -> &'static str {
    match label {
        "parse" => "parse",
        "elaborate" => "elaborate",
        "sugar" => "sugar",
        "drc" => "drc",
        _ => "cache",
    }
}

fn parse_manifest(manifest: &str, dir: &Path) -> Option<ArtifactCache> {
    let mut lines = manifest.lines().peekable();
    let header = lines.next()?;
    let schema = header.strip_prefix("tydic-cache ")?;
    if Fingerprint::parse(schema)? != schema_fingerprint() {
        return None;
    }
    let mut cache = ArtifactCache::new();
    while let Some(line) = lines.next() {
        if let Some(rest) = line.strip_prefix("parse ") {
            let mut parts = rest.split(' ');
            let key = ParseKey {
                slot: parts.next()?.parse().ok()?,
                source: Fingerprint::parse(parts.next()?)?,
            };
            let ast = Fingerprint::parse(parts.next()?)?;
            let ndiags: usize = parts.next()?.parse().ok()?;
            let mut diagnostics = Vec::with_capacity(ndiags);
            for _ in 0..ndiags {
                diagnostics.push(parse_diag_line(lines.next()?)?);
            }
            if cache
                .parse
                .insert(
                    key,
                    ParseArtifact {
                        package: None,
                        ast,
                        diagnostics,
                    },
                )
                .is_none()
            {
                cache.parse_order.push(key);
            }
        } else if let Some(rest) = line.strip_prefix("elab ") {
            let mut parts = rest.split(' ');
            let key = Fingerprint::parse(parts.next()?)?;
            let sugar_report = SugarReport {
                duplicators: parts.next()?.parse().ok()?,
                voiders: parts.next()?.parse().ok()?,
            };
            let mut info = ElabInfo::with_template_counts(
                parts.next()?.parse().ok()?,
                parts.next()?.parse().ok()?,
            );
            info.type_store.distinct_types = parts.next()?.parse().ok()?;
            info.type_store.intern_hits = parts.next()?.parse().ok()?;
            let ndiags: usize = parts.next()?.parse().ok()?;
            let mut diagnostics = Vec::with_capacity(ndiags);
            for _ in 0..ndiags {
                diagnostics.push(parse_diag_line(lines.next()?)?);
            }
            let bytes = std::fs::read(dir.join(format!("{key}.{ARTIFACT_EXT}"))).ok()?;
            let project = tydi_ir::binary::decode_project(&bytes).ok()?;
            if cache
                .elab
                .insert(
                    key,
                    ElabArtifact {
                        project,
                        info,
                        sugar_report,
                        diagnostics,
                    },
                )
                .is_none()
            {
                cache.elab_order.push(key);
            }
        } else if !line.trim().is_empty() {
            // Unknown record kind: treat the whole cache as foreign.
            return None;
        }
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompileOptions};

    const WIRE: &str = "package demo;\ntype B = Stream(Bit(8));\n\
                        streamlet s { i : B in, o : B out, }\nimpl x of s { i => o, }\n";

    fn sample_elab() -> ElabArtifact {
        let out = compile(&[("wire.td", WIRE)], &CompileOptions::default()).unwrap();
        ElabArtifact {
            project: out.project,
            info: out.elab_info,
            sugar_report: out.sugar_report,
            diagnostics: vec![Diagnostic::note("sugar", "inserted 0 things", None)],
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("tydic-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ArtifactCache::new();
        let parse_key = ParseKey {
            slot: 1,
            source: Fingerprint::of_str("wire.td"),
        };
        cache.store_parse(
            parse_key,
            ParseArtifact {
                package: None,
                ast: Fingerprint::of_str("ast"),
                diagnostics: vec![Diagnostic::warning(
                    "parse",
                    "multi\nline \\ message",
                    Some(Span::new(1, 3, 9)),
                )],
            },
        );
        let elab_key = Fingerprint::of_str("elab-key");
        cache.store_elab(elab_key, sample_elab());
        assert!(cache.is_dirty());
        cache.save(&dir).unwrap();

        let restored = ArtifactCache::load(&dir);
        assert_eq!(restored.parse_entries(), 1);
        assert_eq!(restored.elab_entries(), 1);
        let parse = restored.lookup_parse(parse_key).unwrap();
        assert_eq!(parse.ast, Fingerprint::of_str("ast"));
        assert_eq!(parse.diagnostics.len(), 1);
        assert_eq!(parse.diagnostics[0].message, "multi\nline \\ message");
        assert_eq!(parse.diagnostics[0].span, Some(Span::new(1, 3, 9)));
        let elab = restored.lookup_elab(elab_key).unwrap();
        assert!(elab.project.implementation("x").is_some());
        assert_eq!(elab.project.validate(), Ok(()));
        assert_eq!(elab.diagnostics.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn elab_entries_evict_fifo_beyond_capacity() {
        let mut cache = ArtifactCache::new();
        let artifact = sample_elab();
        for k in 0..(ELAB_CAPACITY + 3) {
            cache.store_elab(Fingerprint(k as u64 + 1), artifact.clone());
        }
        assert_eq!(cache.elab_entries(), ELAB_CAPACITY);
        // The three oldest are gone, the newest survive.
        for k in 0..3 {
            assert!(cache.lookup_elab(Fingerprint(k as u64 + 1)).is_none());
        }
        assert!(cache
            .lookup_elab(Fingerprint((ELAB_CAPACITY + 3) as u64))
            .is_some());
    }

    #[test]
    fn save_garbage_collects_evicted_artifact_files() {
        let dir = std::env::temp_dir().join(format!("tydic-gc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let artifact = sample_elab();
        let mut cache = ArtifactCache::new();
        let first = Fingerprint(0xf157);
        cache.store_elab(first, artifact.clone());
        cache.save(&dir).unwrap();
        assert!(dir.join(format!("{first}.{ARTIFACT_EXT}")).exists());
        // Evict `first` by filling the cache past capacity, then save.
        for k in 0..ELAB_CAPACITY {
            cache.store_elab(Fingerprint(0x1000 + k as u64), artifact.clone());
        }
        cache.save(&dir).unwrap();
        assert!(
            !dir.join(format!("{first}.{ARTIFACT_EXT}")).exists(),
            "evicted artifact's file must be garbage-collected"
        );
        // Every retained artifact still has its file, and a reload
        // preserves insertion order semantics.
        let restored = ArtifactCache::load(&dir);
        assert_eq!(restored.elab_entries(), ELAB_CAPACITY);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_text_schema_cache_migrates_cleanly() {
        // A cache directory written by the old text-schema build:
        // foreign manifest header plus a `.tir` text artifact. The
        // load must come up cold (no panic, no misread), and the next
        // save must garbage-collect the orphaned legacy file.
        let dir = std::env::temp_dir().join(format!("tydic-migrate-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let legacy_key = Fingerprint(0x0_1d);
        std::fs::write(
            dir.join(MANIFEST_NAME),
            format!("tydic-cache 1111111111111111\nelab {legacy_key} 0 0 0 0 0 0 0\n"),
        )
        .unwrap();
        let legacy = sample_elab();
        std::fs::write(
            dir.join(format!("{legacy_key}.tir")),
            tydi_ir::text::emit_project(&legacy.project),
        )
        .unwrap();

        let mut cache = ArtifactCache::load(&dir);
        assert_eq!(cache.elab_entries(), 0, "legacy schema must load empty");
        // A fresh compile repopulates and persists in the new format.
        let key = Fingerprint::of_str("fresh");
        cache.store_elab(key, sample_elab());
        cache.save(&dir).unwrap();
        assert!(dir.join(format!("{key}.{ARTIFACT_EXT}")).exists());
        assert!(
            !dir.join(format!("{legacy_key}.tir")).exists(),
            "orphaned legacy .tir must be swept"
        );
        let restored = ArtifactCache::load(&dir);
        assert!(restored.lookup_elab(key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_file_loads_empty() {
        let dir = std::env::temp_dir().join(format!(
            "tydic-corrupt-artifact-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ArtifactCache::new();
        let key = Fingerprint::of_str("to-corrupt");
        cache.store_elab(key, sample_elab());
        cache.save(&dir).unwrap();
        // Truncate the artifact file behind the manifest's back.
        let path = dir.join(format!("{key}.{ARTIFACT_EXT}"));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let restored = ArtifactCache::load(&dir);
        assert_eq!(
            restored.elab_entries(),
            0,
            "a corrupt artifact must invalidate the cache, not panic"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_artifacts_round_trip_projects_byte_identically() {
        let dir = std::env::temp_dir().join(format!("tydic-binary-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let artifact = sample_elab();
        let canonical = tydi_ir::text::emit_project(&artifact.project);
        let mut cache = ArtifactCache::new();
        let key = Fingerprint::of_str("binary");
        cache.store_elab(key, artifact);
        cache.save(&dir).unwrap();
        let restored = ArtifactCache::load(&dir);
        let loaded = restored.lookup_elab(key).unwrap();
        assert_eq!(tydi_ir::text::emit_project(&loaded.project), canonical);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_entries_evict_fifo_beyond_capacity() {
        let mut cache = ArtifactCache::new();
        let artifact = ParseArtifact {
            package: None,
            ast: Fingerprint(1),
            diagnostics: Vec::new(),
        };
        let key = |k: usize| ParseKey {
            slot: 1,
            source: Fingerprint(k as u64 + 1),
        };
        for k in 0..(PARSE_CAPACITY + 5) {
            cache.store_parse(key(k), artifact.clone());
        }
        assert_eq!(cache.parse_entries(), PARSE_CAPACITY);
        assert!(cache.lookup_parse(key(0)).is_none(), "oldest evicted");
        assert!(cache.lookup_parse(key(PARSE_CAPACITY + 4)).is_some());
    }

    #[test]
    fn schema_mismatch_loads_empty() {
        let dir = std::env::temp_dir().join(format!("tydic-schema-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(MANIFEST_NAME),
            "tydic-cache 0000000000000000\nparse 0 0 0 0\n",
        )
        .unwrap();
        let cache = ArtifactCache::load(&dir);
        assert_eq!(cache.parse_entries(), 0);
        assert_eq!(cache.elab_entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_loads_empty() {
        let cache = ArtifactCache::load(Path::new("/nonexistent/definitely/not/here"));
        assert_eq!(cache.parse_entries(), 0);
        assert!(!cache.is_dirty());
    }

    #[test]
    fn corrupt_manifest_loads_empty() {
        let dir = std::env::temp_dir().join(format!("tydic-corrupt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = format!("tydic-cache {}\ngarbage record\n", schema_fingerprint());
        std::fs::write(dir.join(MANIFEST_NAME), manifest).unwrap();
        let cache = ArtifactCache::load(&dir);
        assert_eq!(cache.parse_entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
