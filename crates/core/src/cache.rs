//! The artifact cache behind the incremental compilation pipeline.
//!
//! An [`ArtifactCache`] memoizes per-unit stage outputs keyed by
//! content fingerprints ([`crate::fingerprint`]):
//!
//! * **parse artifacts** — one per registered source file, keyed by
//!   the file's slot in the session file table plus the fingerprint of
//!   its name and raw text. The artifact carries the parsed package,
//!   its AST fingerprint, and the diagnostics the parse emitted.
//! * **elaboration artifacts** — one per *project state*, keyed by
//!   the options fingerprint plus the ordered AST fingerprints of
//!   every input file. The artifact carries the fully elaborated,
//!   sugared, DRC-clean project, so a hit skips the elaborate, sugar
//!   and DRC stages wholesale.
//!
//! The cache persists to a directory (conventionally `.tydic-cache/`)
//! as a line-based manifest plus one `.tirb` file (the versioned
//! Tydi-IR binary format with its interned type table, see
//! [`tydi_ir::binary`]) per elaboration artifact — a warm load
//! decodes each distinct type once instead of re-parsing the whole
//! project text. The manifest header records a schema fingerprint
//! derived from the compiler version; a cache written by a different
//! build fails the header check and loads as empty, so stale caches
//! self-invalidate instead of being misread.
//! Parse artifacts persist only their fingerprints and diagnostics
//! (ASTs are cheap to rebuild and expensive to serialize); a restored
//! entry still lets a warm start prove "this file is unchanged" and
//! skip re-parsing it when the elaboration artifact hits.
//!
//! Parse artifacts memoize the parser's *exact* output for a file —
//! including any diagnostics it emitted, which replay verbatim on a
//! hit — so error-bearing parses are cached too (only a total parse
//! failure, where no tree exists, is never stored). Elaboration
//! artifacts, by contrast, are stored only for compiles that passed
//! the DRC: a failed elaborate/DRC run caches nothing and re-reports
//! faithfully on every attempt.
//!
//! The cache is bounded: at most [`PARSE_CAPACITY`] parse artifacts
//! and [`ELAB_CAPACITY`] elaboration artifacts, both FIFO-evicted.
//! On save, artifact files already on disk are not rewritten (their
//! names are content hashes), and artifact files no longer referenced
//! by the manifest — including `.tir` files left behind by the legacy
//! text schema — are removed, so a long `--watch` session does
//! bounded work per persist instead of rewriting its whole history.
//!
//! # Process safety
//!
//! A cache directory may be shared by many processes at once — the
//! `tydic serve` daemon, CLI one-shots, and watch sessions all point
//! at the same `.tydic-cache/` by default. Three mechanisms keep that
//! safe:
//!
//! * every load and save holds an exclusive [`CacheLock`] (an
//!   `O_CREAT|O_EXCL` lock file carrying the holder's PID, with
//!   stale-lock takeover when the holder died), so a reader never
//!   observes a half-swept directory;
//! * [`ArtifactCache::save`] *merges* before it writes: still under
//!   the lock it re-loads the on-disk state and adopts every entry it
//!   does not already have (as the oldest, so this process's own
//!   entries win FIFO eviction), so two processes persisting
//!   different artifacts union their work instead of the garbage
//!   collector deleting each other's files;
//! * the manifest is written to a temporary file in the same
//!   directory and atomically renamed into place, so a crash mid-write
//!   (or a reader that raced past a stale lock) sees either the old
//!   manifest or the new one, never a truncated hybrid.

use crate::ast::Package;
use crate::diagnostics::{Diagnostic, Severity};
use crate::fingerprint::{schema_fingerprint, Fingerprint};
use crate::instantiate::ElabInfo;
use crate::span::Span;
use crate::sugar::SugarReport;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use tydi_ir::Project;

/// Default name of the on-disk cache directory.
pub const CACHE_DIR_NAME: &str = ".tydic-cache";

/// Maximum number of memoized elaboration artifacts (FIFO eviction).
/// Each artifact is a full elaborated project; a watch session only
/// ever ping-pongs between a handful of recent states.
pub const ELAB_CAPACITY: usize = 16;

/// Maximum number of memoized parse artifacts (FIFO eviction). Parse
/// artifacts are per file *and* per text, so a long watch session
/// accumulates one per edit; the cap bounds that history while
/// leaving plenty of room for many files (or many designs sharing
/// one cache directory).
pub const PARSE_CAPACITY: usize = 256;

const MANIFEST_NAME: &str = "manifest.txt";

/// Name of the exclusive lock file serializing cache loads and saves
/// across processes.
const LOCK_NAME: &str = "lock";

/// How long [`CacheLock::acquire`] waits for a live holder before
/// giving up. Critical sections are one load-merge-save, so seconds of
/// patience cover even a cold multi-design persist.
const LOCK_TIMEOUT: Duration = Duration::from_secs(10);

/// A lock file older than this whose holder cannot be probed (no
/// `/proc` on this platform) is presumed abandoned and taken over.
const LOCK_STALE_AGE: Duration = Duration::from_secs(30);

/// Extension of persisted elaboration artifacts (binary Tydi-IR).
const ARTIFACT_EXT: &str = "tirb";

/// Artifact extensions the garbage collector sweeps: the current
/// binary format plus the legacy text format, so upgrading a cache
/// directory also cleans up its orphaned `.tir` files.
const SWEPT_EXTS: &[&str] = &[ARTIFACT_EXT, "tir"];

/// Cache key of one parsed source file: its slot in the session file
/// table (spans index into that table, so an artifact is only valid
/// at the slot it was parsed at) plus the source fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParseKey {
    /// Index in the session file table.
    pub slot: usize,
    /// Fingerprint of the file name and raw text.
    pub source: Fingerprint,
}

/// Memoized output of parsing one source file.
#[derive(Debug, Clone)]
pub struct ParseArtifact {
    /// The parsed package. `None` for entries restored from disk —
    /// the AST fingerprint is known but the tree must be rebuilt if
    /// elaboration actually needs it.
    pub package: Option<Package>,
    /// Fingerprint of the canonical printed AST.
    pub ast: Fingerprint,
    /// Diagnostics the parse emitted.
    pub diagnostics: Vec<Diagnostic>,
}

/// Memoized output of the elaborate + sugar + DRC stages.
#[derive(Debug, Clone)]
pub struct ElabArtifact {
    /// The elaborated, sugared, validated project.
    pub project: Project,
    /// Elaboration statistics (connection spans are not persisted;
    /// they are only consulted when the DRC fails, and cached
    /// artifacts passed the DRC).
    pub info: ElabInfo,
    /// What sugaring did.
    pub sugar_report: SugarReport,
    /// Diagnostics emitted by the three cached stages.
    pub diagnostics: Vec<Diagnostic>,
}

/// The in-memory artifact cache with disk persistence.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    parse: HashMap<ParseKey, ParseArtifact>,
    /// Insertion order of `parse` keys, for FIFO eviction.
    parse_order: Vec<ParseKey>,
    elab: HashMap<Fingerprint, ElabArtifact>,
    /// Insertion order of `elab` keys, for FIFO eviction.
    elab_order: Vec<Fingerprint>,
    dirty: bool,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// Number of memoized parse artifacts.
    pub fn parse_entries(&self) -> usize {
        self.parse.len()
    }

    /// Number of memoized elaboration artifacts.
    pub fn elab_entries(&self) -> usize {
        self.elab.len()
    }

    /// True when the cache changed since it was created or loaded.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Looks up the parse artifact for a source file.
    pub fn lookup_parse(&self, key: ParseKey) -> Option<&ParseArtifact> {
        self.parse.get(&key)
    }

    /// Stores the parse artifact for a source file, evicting the
    /// oldest entries beyond [`PARSE_CAPACITY`] (re-parsing an
    /// evicted text is cheap).
    pub fn store_parse(&mut self, key: ParseKey, artifact: ParseArtifact) {
        self.dirty = true;
        if self.parse.insert(key, artifact).is_none() {
            self.parse_order.push(key);
        }
        while self.parse_order.len() > PARSE_CAPACITY {
            let evicted = self.parse_order.remove(0);
            self.parse.remove(&evicted);
        }
    }

    /// Re-attaches a materialized AST to a disk-restored parse entry.
    pub fn attach_package(&mut self, key: ParseKey, package: Package) {
        if let Some(entry) = self.parse.get_mut(&key) {
            entry.package = Some(package);
        }
    }

    /// Looks up an elaboration artifact.
    pub fn lookup_elab(&self, key: Fingerprint) -> Option<&ElabArtifact> {
        self.elab.get(&key)
    }

    /// Stores an elaboration artifact, evicting the oldest entries
    /// beyond [`ELAB_CAPACITY`].
    pub fn store_elab(&mut self, key: Fingerprint, artifact: ElabArtifact) {
        self.dirty = true;
        if self.elab.insert(key, artifact).is_none() {
            self.elab_order.push(key);
        }
        while self.elab_order.len() > ELAB_CAPACITY {
            let evicted = self.elab_order.remove(0);
            self.elab.remove(&evicted);
        }
    }

    // ---- persistence ----------------------------------------------------

    /// Loads the cache persisted under `dir`. A missing directory, an
    /// unreadable manifest, or a schema mismatch all yield an empty
    /// cache — a stale or foreign cache self-invalidates rather than
    /// being misread.
    ///
    /// The read happens under the directory's [`CacheLock`] so it can
    /// never observe another process mid-persist; if the lock cannot
    /// be acquired (timeout, unwritable directory) the load degrades
    /// to a best-effort unlocked read, which the atomic manifest
    /// rename keeps safe against torn manifests (a mid-sweep artifact
    /// deletion then at worst reads as a cold cache).
    pub fn load(dir: &Path) -> ArtifactCache {
        if !dir.join(MANIFEST_NAME).exists() {
            return ArtifactCache::new();
        }
        let _lock = CacheLock::acquire(dir).ok();
        Self::load_unlocked(dir)
    }

    /// The raw manifest read, for callers already holding the lock.
    fn load_unlocked(dir: &Path) -> ArtifactCache {
        let Ok(manifest) = std::fs::read_to_string(dir.join(MANIFEST_NAME)) else {
            return ArtifactCache::new();
        };
        parse_manifest(&manifest, dir).unwrap_or_default()
    }

    /// Persists the cache under `dir` (creating it).
    ///
    /// The whole operation runs under the directory's exclusive
    /// [`CacheLock`]: the on-disk state is re-loaded and merged into
    /// this cache first (entries another process persisted since our
    /// load are adopted as the oldest, so they survive unless FIFO
    /// capacity genuinely evicts them), then artifacts and the
    /// manifest are written (the manifest atomically, via a temp file
    /// rename) and unreferenced artifact files are swept. On success
    /// the dirty flag clears, so an unchanged cache skips the next
    /// persist entirely.
    pub fn save(&mut self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let lock = CacheLock::acquire(dir)?;
        self.absorb(Self::load_unlocked(dir));
        self.write_locked(dir)?;
        drop(lock);
        self.dirty = false;
        Ok(())
    }

    /// Adopts every entry of `disk` this cache does not already have,
    /// as the *oldest* entries (they predate this save), then trims
    /// back to capacity. Our own entries win ties: a merged-in entry
    /// is evicted before anything this process computed.
    fn absorb(&mut self, disk: ArtifactCache) {
        let ArtifactCache {
            mut parse,
            parse_order,
            mut elab,
            elab_order,
            ..
        } = disk;
        let mut merged: Vec<ParseKey> = Vec::new();
        for key in parse_order {
            if let Some(artifact) = parse.remove(&key) {
                if let Entry::Vacant(slot) = self.parse.entry(key) {
                    slot.insert(artifact);
                    merged.push(key);
                }
            }
        }
        merged.append(&mut self.parse_order);
        self.parse_order = merged;
        while self.parse_order.len() > PARSE_CAPACITY {
            let evicted = self.parse_order.remove(0);
            self.parse.remove(&evicted);
        }
        let mut merged: Vec<Fingerprint> = Vec::new();
        for key in elab_order {
            if let Some(artifact) = elab.remove(&key) {
                if let Entry::Vacant(slot) = self.elab.entry(key) {
                    slot.insert(artifact);
                    merged.push(key);
                }
            }
        }
        merged.append(&mut self.elab_order);
        self.elab_order = merged;
        while self.elab_order.len() > ELAB_CAPACITY {
            let evicted = self.elab_order.remove(0);
            self.elab.remove(&evicted);
        }
    }

    /// Writes artifacts, the manifest, and runs the sweep. The caller
    /// holds the [`CacheLock`].
    fn write_locked(&self, dir: &Path) -> io::Result<()> {
        use std::fmt::Write as _;
        let mut manifest = String::new();
        let _ = writeln!(manifest, "tydic-cache {}", schema_fingerprint());
        // Deterministic order keeps the manifest diffable.
        let mut parse_keys: Vec<&ParseKey> = self.parse.keys().collect();
        parse_keys.sort_by_key(|k| (k.slot, k.source));
        for key in parse_keys {
            let artifact = &self.parse[key];
            let _ = writeln!(
                manifest,
                "parse {} {} {} {}",
                key.slot,
                key.source,
                artifact.ast,
                artifact.diagnostics.len()
            );
            for diag in &artifact.diagnostics {
                let _ = writeln!(manifest, "{}", diag_line(diag));
            }
        }
        // Elaboration artifacts persist in insertion order so FIFO
        // eviction survives a round trip.
        for key in &self.elab_order {
            let artifact = &self.elab[key];
            let _ = writeln!(
                manifest,
                "elab {} {} {} {} {} {} {} {}",
                key,
                artifact.sugar_report.duplicators,
                artifact.sugar_report.voiders,
                artifact.info.template_instantiations,
                artifact.info.template_cache_hits,
                artifact.info.type_store.distinct_types,
                artifact.info.type_store.intern_hits,
                artifact.diagnostics.len()
            );
            for diag in &artifact.diagnostics {
                let _ = writeln!(manifest, "{}", diag_line(diag));
            }
            // Artifact names are content hashes: an existing file is
            // already correct, so a persist only writes new artifacts.
            let path = dir.join(format!("{key}.{ARTIFACT_EXT}"));
            if !path.exists() {
                std::fs::write(path, tydi_ir::binary::encode_project(&artifact.project))?;
            }
        }
        // The manifest lands atomically: write a temp file in the
        // same directory, then rename over the old manifest. A crash
        // (or a lock-bypassing reader) sees the old manifest or the
        // new one, never a truncation.
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, manifest)?;
        std::fs::rename(&tmp, dir.join(MANIFEST_NAME))?;
        // Garbage-collect artifact files evicted from (or never in)
        // the manifest — including legacy `.tir` text artifacts, which
        // the binary schema never references — so the directory stays
        // bounded across format migrations. The sweep runs *after* the
        // rename: a crash between the two leaves orphan files (cleaned
        // by the next save), never a manifest referencing missing ones.
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().to_string();
                let Some((stem, ext)) = name.rsplit_once('.') else {
                    continue;
                };
                if !SWEPT_EXTS.contains(&ext) {
                    continue;
                }
                let referenced = ext == ARTIFACT_EXT
                    && Fingerprint::parse(stem)
                        .map(|key| self.elab.contains_key(&key))
                        .unwrap_or(false);
                if !referenced {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }
}

/// An exclusive, cross-process lock on a cache directory.
///
/// The lock is a file created with `O_CREAT|O_EXCL` (so creation is
/// the atomic acquire) holding the owner's PID. [`CacheLock::acquire`]
/// spins with a short sleep until the file can be created, taking over
/// locks whose holder provably died (the PID no longer exists under
/// `/proc`; where `/proc` is unavailable, a lock older than
/// [`LOCK_STALE_AGE`] is presumed abandoned), and gives up with
/// [`io::ErrorKind::TimedOut`] after [`LOCK_TIMEOUT`]. Dropping the
/// guard removes the file.
#[derive(Debug)]
pub struct CacheLock {
    path: PathBuf,
}

impl CacheLock {
    /// Acquires the lock for `dir`, creating the directory if needed.
    pub fn acquire(dir: &Path) -> io::Result<CacheLock> {
        use std::io::Write as _;
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LOCK_NAME);
        let deadline = Instant::now() + LOCK_TIMEOUT;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    // `<pid> <comm>`: the comm lets staleness checks
                    // tell a recycled pid from the live holder.
                    let _ = write!(file, "{} {}", std::process::id(), self_comm());
                    return Ok(CacheLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&path) {
                        // Best-effort takeover; racing removers are
                        // fine, the create_new above re-arbitrates.
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("cache lock `{}` held too long", path.display()),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// True when the lock file's holder provably no longer exists — the
/// PID is gone from `/proc`, or it is back with a different
/// `/proc/<pid>/comm` (the PID was recycled by an unrelated process;
/// without the comm check a recycled PID would hold the lock forever)
/// — or the holder cannot be probed and the file is old enough to
/// presume abandoned. A just-created lock whose PID has not been
/// written yet reads as empty and is *not* stale (its mtime is fresh).
fn lock_is_stale(path: &Path) -> bool {
    if let Ok(text) = std::fs::read_to_string(path) {
        let mut fields = text.split_whitespace();
        if let Some(Ok(pid)) = fields.next().map(str::parse::<u32>) {
            let proc_root = Path::new("/proc");
            if proc_root.is_dir() {
                let proc_dir = proc_root.join(pid.to_string());
                if !proc_dir.exists() {
                    return true;
                }
                if let (Some(recorded), Ok(current)) = (
                    fields.next(),
                    std::fs::read_to_string(proc_dir.join("comm")),
                ) {
                    return current.trim() != recorded;
                }
                // Old single-field lock, or comm unreadable: the pid
                // being alive is all we can verify.
                return false;
            }
        }
    }
    // No PID to probe (unwritten or foreign lock, or no procfs):
    // fall back to age.
    match std::fs::metadata(path).and_then(|m| m.modified()) {
        Ok(modified) => modified
            .elapsed()
            .map(|age| age > LOCK_STALE_AGE)
            .unwrap_or(false),
        // The file vanished between the failed create and this probe:
        // the holder released it; retry immediately.
        Err(_) => true,
    }
}

/// This process's `comm` name (what `/proc/<pid>/comm` reports),
/// recorded in lock files so staleness checks survive pid recycling.
fn self_comm() -> String {
    std::fs::read_to_string("/proc/self/comm")
        .map(|s| s.trim().to_string())
        .unwrap_or_default()
}

fn diag_line(diag: &Diagnostic) -> String {
    let severity = match diag.severity {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    };
    let span = match diag.span {
        Some(s) => format!("{}:{}:{}", s.file, s.start, s.end),
        None => "-".to_string(),
    };
    format!(
        "diag {severity} {} {span} {}",
        diag.stage,
        diag.message.replace('\\', "\\\\").replace('\n', "\\n")
    )
}

fn parse_diag_line(line: &str) -> Option<Diagnostic> {
    let rest = line.strip_prefix("diag ")?;
    let mut parts = rest.splitn(4, ' ');
    let severity = match parts.next()? {
        "note" => Severity::Note,
        "warning" => Severity::Warning,
        "error" => Severity::Error,
        _ => return None,
    };
    let stage = static_stage(parts.next()?);
    let span = match parts.next()? {
        "-" => None,
        text => {
            let mut nums = text.splitn(3, ':');
            Some(Span::new(
                nums.next()?.parse().ok()?,
                nums.next()?.parse().ok()?,
                nums.next()?.parse().ok()?,
            ))
        }
    };
    let message = parts
        .next()
        .unwrap_or("")
        .replace("\\n", "\n")
        .replace("\\\\", "\\");
    Some(Diagnostic {
        severity,
        message,
        span,
        stage,
    })
}

/// Maps a persisted stage label back to the static names diagnostics
/// carry (unknown labels — from a future schema — fold to "cache").
fn static_stage(label: &str) -> &'static str {
    match label {
        "parse" => "parse",
        "elaborate" => "elaborate",
        "sugar" => "sugar",
        "drc" => "drc",
        _ => "cache",
    }
}

fn parse_manifest(manifest: &str, dir: &Path) -> Option<ArtifactCache> {
    let mut lines = manifest.lines().peekable();
    let header = lines.next()?;
    let schema = header.strip_prefix("tydic-cache ")?;
    if Fingerprint::parse(schema)? != schema_fingerprint() {
        return None;
    }
    let mut cache = ArtifactCache::new();
    while let Some(line) = lines.next() {
        if let Some(rest) = line.strip_prefix("parse ") {
            let mut parts = rest.split(' ');
            let key = ParseKey {
                slot: parts.next()?.parse().ok()?,
                source: Fingerprint::parse(parts.next()?)?,
            };
            let ast = Fingerprint::parse(parts.next()?)?;
            let ndiags: usize = parts.next()?.parse().ok()?;
            let mut diagnostics = Vec::with_capacity(ndiags);
            for _ in 0..ndiags {
                diagnostics.push(parse_diag_line(lines.next()?)?);
            }
            if cache
                .parse
                .insert(
                    key,
                    ParseArtifact {
                        package: None,
                        ast,
                        diagnostics,
                    },
                )
                .is_none()
            {
                cache.parse_order.push(key);
            }
        } else if let Some(rest) = line.strip_prefix("elab ") {
            let mut parts = rest.split(' ');
            let key = Fingerprint::parse(parts.next()?)?;
            let sugar_report = SugarReport {
                duplicators: parts.next()?.parse().ok()?,
                voiders: parts.next()?.parse().ok()?,
            };
            let mut info = ElabInfo::with_template_counts(
                parts.next()?.parse().ok()?,
                parts.next()?.parse().ok()?,
            );
            info.type_store.distinct_types = parts.next()?.parse().ok()?;
            info.type_store.intern_hits = parts.next()?.parse().ok()?;
            let ndiags: usize = parts.next()?.parse().ok()?;
            let mut diagnostics = Vec::with_capacity(ndiags);
            for _ in 0..ndiags {
                diagnostics.push(parse_diag_line(lines.next()?)?);
            }
            let bytes = std::fs::read(dir.join(format!("{key}.{ARTIFACT_EXT}"))).ok()?;
            let project = tydi_ir::binary::decode_project(&bytes).ok()?;
            if cache
                .elab
                .insert(
                    key,
                    ElabArtifact {
                        project,
                        info,
                        sugar_report,
                        diagnostics,
                    },
                )
                .is_none()
            {
                cache.elab_order.push(key);
            }
        } else if !line.trim().is_empty() {
            // Unknown record kind: treat the whole cache as foreign.
            return None;
        }
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompileOptions};

    const WIRE: &str = "package demo;\ntype B = Stream(Bit(8));\n\
                        streamlet s { i : B in, o : B out, }\nimpl x of s { i => o, }\n";

    fn sample_elab() -> ElabArtifact {
        let out = compile(&[("wire.td", WIRE)], &CompileOptions::default()).unwrap();
        ElabArtifact {
            project: out.project,
            info: out.elab_info,
            sugar_report: out.sugar_report,
            diagnostics: vec![Diagnostic::note("sugar", "inserted 0 things", None)],
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("tydic-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ArtifactCache::new();
        let parse_key = ParseKey {
            slot: 1,
            source: Fingerprint::of_str("wire.td"),
        };
        cache.store_parse(
            parse_key,
            ParseArtifact {
                package: None,
                ast: Fingerprint::of_str("ast"),
                diagnostics: vec![Diagnostic::warning(
                    "parse",
                    "multi\nline \\ message",
                    Some(Span::new(1, 3, 9)),
                )],
            },
        );
        let elab_key = Fingerprint::of_str("elab-key");
        cache.store_elab(elab_key, sample_elab());
        assert!(cache.is_dirty());
        cache.save(&dir).unwrap();

        let restored = ArtifactCache::load(&dir);
        assert_eq!(restored.parse_entries(), 1);
        assert_eq!(restored.elab_entries(), 1);
        let parse = restored.lookup_parse(parse_key).unwrap();
        assert_eq!(parse.ast, Fingerprint::of_str("ast"));
        assert_eq!(parse.diagnostics.len(), 1);
        assert_eq!(parse.diagnostics[0].message, "multi\nline \\ message");
        assert_eq!(parse.diagnostics[0].span, Some(Span::new(1, 3, 9)));
        let elab = restored.lookup_elab(elab_key).unwrap();
        assert!(elab.project.implementation("x").is_some());
        assert_eq!(elab.project.validate(), Ok(()));
        assert_eq!(elab.diagnostics.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_clears_the_dirty_flag() {
        let dir = std::env::temp_dir().join(format!("tydic-dirty-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ArtifactCache::new();
        cache.store_elab(Fingerprint::of_str("k"), sample_elab());
        assert!(cache.is_dirty());
        cache.save(&dir).unwrap();
        assert!(
            !cache.is_dirty(),
            "a successful save must clear the dirty flag so unchanged \
             caches skip the next persist"
        );
        cache.store_elab(Fingerprint::of_str("k2"), sample_elab());
        assert!(cache.is_dirty(), "new stores re-dirty the cache");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_saves_merge_instead_of_clobbering() {
        // Two processes sharing a cache dir each persist their own
        // artifact; the second save must union with the first, not
        // garbage-collect its files.
        let dir = std::env::temp_dir().join(format!("tydic-merge-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key_a = Fingerprint::of_str("process-a");
        let key_b = Fingerprint::of_str("process-b");
        let mut a = ArtifactCache::new();
        a.store_elab(key_a, sample_elab());
        a.save(&dir).unwrap();
        let mut b = ArtifactCache::new(); // never saw a's entry
        b.store_elab(key_b, sample_elab());
        b.save(&dir).unwrap();
        assert!(
            dir.join(format!("{key_a}.{ARTIFACT_EXT}")).exists(),
            "b's save must not delete a's artifact"
        );
        assert!(dir.join(format!("{key_b}.{ARTIFACT_EXT}")).exists());
        let restored = ArtifactCache::load(&dir);
        assert!(restored.lookup_elab(key_a).is_some());
        assert!(restored.lookup_elab(key_b).is_some());
        // The merge also flows back into the saving cache.
        assert!(b.lookup_elab(key_a).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_leaves_no_temp_manifest_behind() {
        let dir = std::env::temp_dir().join(format!("tydic-tmp-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ArtifactCache::new();
        cache.store_elab(Fingerprint::of_str("k"), sample_elab());
        cache.save(&dir).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            assert!(
                !name.contains(".tmp."),
                "temp manifest `{name}` must be renamed away"
            );
            assert_ne!(name, LOCK_NAME, "the lock must be released");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_round_trips_and_takes_over_stale_holders() {
        let dir = std::env::temp_dir().join(format!("tydic-lock-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let _lock = CacheLock::acquire(&dir).unwrap();
            let on_disk = std::fs::read_to_string(dir.join(LOCK_NAME)).unwrap();
            let mut fields = on_disk.split_whitespace();
            assert_eq!(fields.next(), Some(std::process::id().to_string().as_str()));
            if Path::new("/proc").is_dir() {
                assert_eq!(
                    fields.next(),
                    Some(self_comm().as_str()),
                    "lock records the holder's comm"
                );
            }
        }
        assert!(
            !dir.join(LOCK_NAME).exists(),
            "dropping the guard releases the lock"
        );
        // A lock left by a dead process (a PID far beyond pid_max) is
        // taken over instead of timing out.
        std::fs::write(dir.join(LOCK_NAME), "999999999").unwrap();
        let _lock = CacheLock::acquire(&dir).expect("stale lock takeover");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_takes_over_recycled_pids_by_comm_mismatch() {
        if !Path::new("/proc").is_dir() {
            return; // no procfs to probe on this platform
        }
        let dir = std::env::temp_dir().join(format!("tydic-lock-comm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Our own (alive) pid, but recorded under a different comm:
        // that is exactly what a recycled pid looks like. Without the
        // comm check this acquire would spin until LOCK_TIMEOUT.
        std::fs::write(
            dir.join(LOCK_NAME),
            format!("{} definitely-not-this-process", std::process::id()),
        )
        .unwrap();
        let started = std::time::Instant::now();
        let _lock = CacheLock::acquire(&dir).expect("recycled-pid takeover");
        assert!(
            started.elapsed() < LOCK_TIMEOUT / 2,
            "takeover is immediate, not a timeout"
        );
        // An alive pid with the matching comm stays locked.
        drop(_lock);
        std::fs::write(
            dir.join(LOCK_NAME),
            format!("{} {}", std::process::id(), self_comm()),
        )
        .unwrap();
        assert!(!lock_is_stale(&dir.join(LOCK_NAME)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn elab_entries_evict_fifo_beyond_capacity() {
        let mut cache = ArtifactCache::new();
        let artifact = sample_elab();
        for k in 0..(ELAB_CAPACITY + 3) {
            cache.store_elab(Fingerprint(k as u64 + 1), artifact.clone());
        }
        assert_eq!(cache.elab_entries(), ELAB_CAPACITY);
        // The three oldest are gone, the newest survive.
        for k in 0..3 {
            assert!(cache.lookup_elab(Fingerprint(k as u64 + 1)).is_none());
        }
        assert!(cache
            .lookup_elab(Fingerprint((ELAB_CAPACITY + 3) as u64))
            .is_some());
    }

    #[test]
    fn save_garbage_collects_evicted_artifact_files() {
        let dir = std::env::temp_dir().join(format!("tydic-gc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let artifact = sample_elab();
        let mut cache = ArtifactCache::new();
        let first = Fingerprint(0xf157);
        cache.store_elab(first, artifact.clone());
        cache.save(&dir).unwrap();
        assert!(dir.join(format!("{first}.{ARTIFACT_EXT}")).exists());
        // Evict `first` by filling the cache past capacity, then save.
        for k in 0..ELAB_CAPACITY {
            cache.store_elab(Fingerprint(0x1000 + k as u64), artifact.clone());
        }
        cache.save(&dir).unwrap();
        assert!(
            !dir.join(format!("{first}.{ARTIFACT_EXT}")).exists(),
            "evicted artifact's file must be garbage-collected"
        );
        // Every retained artifact still has its file, and a reload
        // preserves insertion order semantics.
        let restored = ArtifactCache::load(&dir);
        assert_eq!(restored.elab_entries(), ELAB_CAPACITY);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_text_schema_cache_migrates_cleanly() {
        // A cache directory written by the old text-schema build:
        // foreign manifest header plus a `.tir` text artifact. The
        // load must come up cold (no panic, no misread), and the next
        // save must garbage-collect the orphaned legacy file.
        let dir = std::env::temp_dir().join(format!("tydic-migrate-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let legacy_key = Fingerprint(0x0_1d);
        std::fs::write(
            dir.join(MANIFEST_NAME),
            format!("tydic-cache 1111111111111111\nelab {legacy_key} 0 0 0 0 0 0 0\n"),
        )
        .unwrap();
        let legacy = sample_elab();
        std::fs::write(
            dir.join(format!("{legacy_key}.tir")),
            tydi_ir::text::emit_project(&legacy.project),
        )
        .unwrap();

        let mut cache = ArtifactCache::load(&dir);
        assert_eq!(cache.elab_entries(), 0, "legacy schema must load empty");
        // A fresh compile repopulates and persists in the new format.
        let key = Fingerprint::of_str("fresh");
        cache.store_elab(key, sample_elab());
        cache.save(&dir).unwrap();
        assert!(dir.join(format!("{key}.{ARTIFACT_EXT}")).exists());
        assert!(
            !dir.join(format!("{legacy_key}.tir")).exists(),
            "orphaned legacy .tir must be swept"
        );
        let restored = ArtifactCache::load(&dir);
        assert!(restored.lookup_elab(key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_file_loads_empty() {
        let dir = std::env::temp_dir().join(format!(
            "tydic-corrupt-artifact-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = ArtifactCache::new();
        let key = Fingerprint::of_str("to-corrupt");
        cache.store_elab(key, sample_elab());
        cache.save(&dir).unwrap();
        // Truncate the artifact file behind the manifest's back.
        let path = dir.join(format!("{key}.{ARTIFACT_EXT}"));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let restored = ArtifactCache::load(&dir);
        assert_eq!(
            restored.elab_entries(),
            0,
            "a corrupt artifact must invalidate the cache, not panic"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_artifacts_round_trip_projects_byte_identically() {
        let dir = std::env::temp_dir().join(format!("tydic-binary-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let artifact = sample_elab();
        let canonical = tydi_ir::text::emit_project(&artifact.project);
        let mut cache = ArtifactCache::new();
        let key = Fingerprint::of_str("binary");
        cache.store_elab(key, artifact);
        cache.save(&dir).unwrap();
        let restored = ArtifactCache::load(&dir);
        let loaded = restored.lookup_elab(key).unwrap();
        assert_eq!(tydi_ir::text::emit_project(&loaded.project), canonical);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_entries_evict_fifo_beyond_capacity() {
        let mut cache = ArtifactCache::new();
        let artifact = ParseArtifact {
            package: None,
            ast: Fingerprint(1),
            diagnostics: Vec::new(),
        };
        let key = |k: usize| ParseKey {
            slot: 1,
            source: Fingerprint(k as u64 + 1),
        };
        for k in 0..(PARSE_CAPACITY + 5) {
            cache.store_parse(key(k), artifact.clone());
        }
        assert_eq!(cache.parse_entries(), PARSE_CAPACITY);
        assert!(cache.lookup_parse(key(0)).is_none(), "oldest evicted");
        assert!(cache.lookup_parse(key(PARSE_CAPACITY + 4)).is_some());
    }

    #[test]
    fn schema_mismatch_loads_empty() {
        let dir = std::env::temp_dir().join(format!("tydic-schema-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(MANIFEST_NAME),
            "tydic-cache 0000000000000000\nparse 0 0 0 0\n",
        )
        .unwrap();
        let cache = ArtifactCache::load(&dir);
        assert_eq!(cache.parse_entries(), 0);
        assert_eq!(cache.elab_entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_loads_empty() {
        let cache = ArtifactCache::load(Path::new("/nonexistent/definitely/not/here"));
        assert_eq!(cache.parse_entries(), 0);
        assert!(!cache.is_dirty());
    }

    #[test]
    fn corrupt_manifest_loads_empty() {
        let dir = std::env::temp_dir().join(format!("tydic-corrupt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = format!("tydic-cache {}\ngarbage record\n", schema_fingerprint());
        std::fs::write(dir.join(MANIFEST_NAME), manifest).unwrap();
        let cache = ArtifactCache::load(&dir);
        assert_eq!(cache.parse_entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
