//! Fingerprints for the incremental compilation pipeline.
//!
//! The frontend keys memoized artifacts by stable content hashes
//! (see [`tydi_ir::fingerprint`] for the primitive): source files by
//! their registered name and raw text, parsed packages by their
//! canonical pretty-printed form ([`crate::pretty`]) — which makes
//! the fingerprint independent of whitespace, comments and spans —
//! and option sets by every field that can change compilation output.
//!
//! The dependency chain is:
//!
//! ```text
//! source text ──► AST ──► elaborated project (post-sugar, post-DRC)
//!   (text fp)   (ast fp)   (keyed by options fp + ordered ast fps)
//! ```
//!
//! so a comment-only edit re-parses one file but reuses elaboration,
//! sugaring and the DRC wholesale, and an untouched project reuses
//! everything.

use crate::ast::Package;
use crate::pipeline::CompileOptions;
use crate::pretty::print_package;
pub use tydi_ir::fingerprint::{Fingerprint, Fingerprinter};

/// Bump when the on-disk artifact-cache layout changes; stale caches
/// then self-invalidate on load.
const CACHE_FORMAT: &str = "tydic-artifact-cache-v2";

/// The fingerprint of one registered source file (name + raw text).
pub fn source_fingerprint(name: &str, text: &str) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("source");
    fp.write_str(name);
    fp.write_str(text);
    fp.finish()
}

/// The fingerprint of a parsed package: hashes the canonical printed
/// form, so formatting and comment edits do not move it.
pub fn ast_fingerprint(package: &Package) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("ast");
    fp.write_str(&print_package(package));
    fp.finish()
}

/// The fingerprint of every compile option that can change output.
pub fn options_fingerprint(options: &CompileOptions) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("options");
    fp.write_str(&options.project_name);
    fp.write_bool(options.enable_sugaring);
    fp.write_bool(options.run_drc);
    fp.finish()
}

/// The elaboration key: options plus the ordered AST fingerprints of
/// every input file.
pub fn elaboration_key(options: &CompileOptions, asts: &[Fingerprint]) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("elaborate");
    fp.write_fingerprint(options_fingerprint(options));
    fp.write_u64(asts.len() as u64);
    for ast in asts {
        fp.write_fingerprint(*ast);
    }
    fp.finish()
}

/// The schema fingerprint versioning the on-disk cache: the layout
/// tag, the compiler version, and a build identity (the running
/// executable's size and mtime). Folding in the build identity means
/// *any* rebuild of the compiler — not just a version bump —
/// invalidates persisted caches, so a developer changing elaboration
/// semantics can never replay artifacts written by the previous
/// build. The cost is benign: a rebuilt compiler's first run is cold.
pub fn schema_fingerprint() -> Fingerprint {
    static SCHEMA: std::sync::OnceLock<Fingerprint> = std::sync::OnceLock::new();
    *SCHEMA.get_or_init(|| {
        let mut fp = Fingerprinter::new();
        fp.write_str(CACHE_FORMAT);
        fp.write_str(env!("CARGO_PKG_VERSION"));
        if let Ok(meta) = std::env::current_exe().and_then(std::fs::metadata) {
            fp.write_u64(meta.len());
            if let Ok(modified) = meta.modified() {
                if let Ok(since_epoch) = modified.duration_since(std::time::UNIX_EPOCH) {
                    fp.write_u64(since_epoch.as_secs());
                    fp.write_u64(u64::from(since_epoch.subsec_nanos()));
                }
            }
        }
        fp.finish()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_package;

    const WIRE: &str = "package demo;\ntype B = Stream(Bit(8));\n\
                        streamlet s { i : B in, o : B out, }\nimpl x of s { i => o, }\n";

    fn ast_of(text: &str) -> Fingerprint {
        let (package, diags) = parse_package(0, text);
        assert!(!crate::diagnostics::has_errors(&diags));
        ast_fingerprint(&package.unwrap())
    }

    #[test]
    fn comment_edits_keep_the_ast_fingerprint() {
        let commented = format!("// note\n{WIRE}// trailing\n");
        assert_ne!(
            source_fingerprint("a.td", WIRE),
            source_fingerprint("a.td", &commented)
        );
        assert_eq!(ast_of(WIRE), ast_of(&commented));
    }

    #[test]
    fn real_edits_move_the_ast_fingerprint() {
        let edited = WIRE.replace("Bit(8)", "Bit(16)");
        assert_ne!(ast_of(WIRE), ast_of(&edited));
    }

    #[test]
    fn options_feed_the_elaboration_key() {
        let asts = [ast_of(WIRE)];
        let defaults = CompileOptions::default();
        let no_sugar = CompileOptions {
            enable_sugaring: false,
            ..CompileOptions::default()
        };
        assert_ne!(
            elaboration_key(&defaults, &asts),
            elaboration_key(&no_sugar, &asts)
        );
        assert_eq!(
            elaboration_key(&defaults, &asts),
            elaboration_key(&CompileOptions::default(), &asts)
        );
    }
}
