//! The staged compiler pipeline (paper Fig. 3).
//!
//! `parse` → `evaluate`/`expand` (elaboration) → `sugar` → `DRC` →
//! Tydi-IR, with per-stage wall-clock timings so the benchmark harness
//! can report where compilation time goes.
//!
//! [`compile`] is a compatibility wrapper over the
//! [`Session`](crate::session::Session) driver, which exposes the same
//! stages individually for tools that want to observe or interleave
//! them.

use crate::cache::{ArtifactCache, ElabArtifact};
use crate::diagnostics::Diagnostic;
use crate::fingerprint::{elaboration_key, Fingerprint};
use crate::instantiate::ElabInfo;
use crate::session::{Session, Stage};
use crate::span::SourceFile;
use crate::sugar::SugarReport;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use tydi_ir::{Project, ProjectIndex};

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Name of the output IR project.
    pub project_name: String,
    /// Run the sugaring pass (paper Fig. 4). Disabling it reproduces
    /// the paper's "without sugaring" Table IV row: designs must then
    /// connect every port explicitly.
    pub enable_sugaring: bool,
    /// Run the design-rule check and fail compilation on violations.
    pub run_drc: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            project_name: "tydi_design".to_string(),
            enable_sugaring: true,
            run_drc: true,
        }
    }
}

/// Time spent per pipeline stage.
///
/// The per-stage fields are **self times** — what each stage spent on
/// its own work. When stage internals fan out over the thread pool,
/// the self-time sum is not elapsed time, so the pipeline's
/// wall-clock window is tracked separately in [`StageTimings::wall`];
/// reports should present `wall` as "how long compilation took" and
/// the self times as the per-stage breakdown. (Historically `tydic
/// --timings` presented the sum as elapsed time, double-counting
/// overlapped stage work.)
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Lexing + parsing.
    pub parse: Duration,
    /// Evaluation, template instantiation, generative expansion.
    pub elaborate: Duration,
    /// Duplicator/voider insertion.
    pub sugar: Duration,
    /// Design-rule check.
    pub drc: Duration,
    /// Static throughput/backpressure analysis (zero unless a tool ran
    /// the `tydi-analyze` pass and recorded it via
    /// [`CompileOutput::record_stage`]).
    pub analyze: Duration,
    /// Wall-clock window from the start of the first stage to the end
    /// of the last one (zero when no stage ran).
    pub wall: Duration,
}

impl StageTimings {
    /// Sum of the per-stage self times. This is *not* elapsed time;
    /// use [`StageTimings::wall`] for that.
    pub fn total(&self) -> Duration {
        self.parse + self.elaborate + self.sugar + self.drc + self.analyze
    }
}

/// A successful compilation.
#[derive(Debug)]
pub struct CompileOutput {
    /// The validated IR project.
    pub project: Project,
    /// The shared name-resolution index over [`CompileOutput::project`],
    /// built once after elaboration and kept current through
    /// sugaring; backends reuse it instead of rebuilding their own
    /// lookup maps (see [`tydi_ir::index`]).
    pub index: Arc<ProjectIndex>,
    /// Non-error diagnostics (warnings, notes).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-stage timings.
    pub timings: StageTimings,
    /// Registered source files (for rendering diagnostics).
    pub files: Vec<SourceFile>,
    /// What sugaring did.
    pub sugar_report: SugarReport,
    /// Elaboration statistics.
    pub elab_info: ElabInfo,
    /// Per-stage execution records, in order, including how much work
    /// each stage reused from the artifact cache.
    pub stage_records: Vec<crate::session::StageRecord>,
}

impl CompileOutput {
    /// Records a stage a tool ran on top of this finished compile
    /// (e.g. the `tydi-analyze` pass behind `tydic analyze`), folding
    /// its self time into [`CompileOutput::timings`] and appending a
    /// [`StageRecord`](crate::session::StageRecord) so `--timings`
    /// reports it uniformly with the compiler's own stages. The
    /// wall-clock window is extended by the stage's duration: the
    /// stage ran strictly after the compile window closed.
    pub fn record_stage(&mut self, stage: Stage, duration: Duration, diagnostics: usize) {
        match stage {
            Stage::Parse => self.timings.parse += duration,
            Stage::Elaborate => self.timings.elaborate += duration,
            Stage::Sugar => self.timings.sugar += duration,
            Stage::Drc => self.timings.drc += duration,
            Stage::Analyze => self.timings.analyze += duration,
        }
        self.timings.wall += duration;
        self.stage_records.push(crate::session::StageRecord {
            stage,
            duration,
            diagnostics,
            reused: 0,
            recomputed: 1,
        });
    }
}

/// A failed compilation, carrying everything needed to render the
/// errors.
#[derive(Debug)]
pub struct CompileFailure {
    /// All diagnostics, including at least one error.
    pub diagnostics: Vec<Diagnostic>,
    /// Registered source files.
    pub files: Vec<SourceFile>,
}

impl CompileFailure {
    /// Renders every diagnostic against the sources.
    pub fn render(&self) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render(&self.files))
            .collect()
    }
}

impl fmt::Display for CompileFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl std::error::Error for CompileFailure {}

/// Compiles Tydi-lang sources (`(file name, text)` pairs) to Tydi-IR.
///
/// This is the one-call entry point; it drives a
/// [`Session`](crate::session::Session) through the four Fig. 3
/// stages. Per-file parsing and the per-implementation DRC run in
/// parallel (with a sequential fallback on single-core machines).
pub fn compile(
    sources: &[(&str, &str)],
    options: &CompileOptions,
) -> Result<CompileOutput, Box<CompileFailure>> {
    let mut session = Session::new(options.clone());
    // Stage 1: parse (code structure #1).
    let packages = session.parse(sources)?;
    // Stage 2: evaluate + expand (code structures #2/#3).
    let (mut project, elab_info) = session.elaborate(packages)?;
    // Stage 3: sugaring.
    let sugar_report = session.sugar(&mut project);
    // Stage 4: design-rule check.
    session.drc(&project, &elab_info)?;
    Ok(session.finish(project, sugar_report, elab_info))
}

/// Compiles through an [`ArtifactCache`], recomputing only the dirty
/// cone of the dependency map `source text → AST → elaborated
/// project`:
///
/// * unchanged files replay their memoized parse (diagnostics
///   included) without touching the parser;
/// * when the options plus the ordered AST fingerprints match a
///   memoized elaboration artifact, the elaborate, sugar and DRC
///   stages are all served from the cache — a comment-only edit
///   re-parses one file and reuses everything else;
/// * changed units recompute in parallel exactly as in [`compile`].
///   Parse artifacts memoize the parser's exact output (diagnostics
///   included, which replay verbatim); elaboration artifacts are
///   stored only when the compile succeeds, so elaborate/DRC errors
///   always re-run and re-report.
///
/// The output is bit-for-bit identical to what [`compile`] produces
/// for the same sources (the differential test-suite pins this per
/// cookbook design). Per-stage reuse is reported in
/// [`CompileOutput::stage_records`].
pub fn compile_with_cache(
    sources: &[(&str, &str)],
    options: &CompileOptions,
    cache: &mut ArtifactCache,
) -> Result<CompileOutput, Box<CompileFailure>> {
    let mut session = Session::new(options.clone());
    let units = session.parse_incremental(sources, cache)?;
    let asts: Vec<Fingerprint> = units.iter().map(|u| u.ast).collect();
    let key = elaboration_key(options, &asts);
    if let Some(artifact) = cache.lookup_elab(key) {
        tydi_obs::trace::instant("core", "elab-cache-hit");
        tydi_obs::metrics::counter_add("cache.elab.lookup_hits", 1);
        let artifact = artifact.clone();
        // The artifact's diagnostics replay under the elaborate
        // record; each diagnostic still carries its own stage label.
        session.replay_stage(Stage::Elaborate, artifact.diagnostics);
        session.replay_stage(Stage::Sugar, Vec::new());
        session.replay_stage(Stage::Drc, Vec::new());
        return Ok(session.finish(artifact.project, artifact.sugar_report, artifact.info));
    }
    tydi_obs::trace::instant("core", "elab-cache-miss");
    tydi_obs::metrics::counter_add("cache.elab.lookup_misses", 1);
    let packages = session.materialize_packages(&units, cache)?;
    let diags_before = session.diagnostics().len();
    let (mut project, elab_info) = session.elaborate(packages)?;
    let sugar_report = session.sugar(&mut project);
    session.drc(&project, &elab_info)?;
    let stage_diagnostics = session.diagnostics()[diags_before..].to_vec();
    cache.store_elab(
        key,
        ElabArtifact {
            project: project.clone(),
            info: elab_info.clone(),
            sugar_report,
            diagnostics: stage_diagnostics,
        },
    );
    Ok(session.finish(project, sugar_report, elab_info))
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &str = r#"
package demo;
type Byte = Stream(Bit(8));
streamlet wire_s { i : Byte in, o : Byte out, }
impl wire_i of wire_s { i => o, }
"#;

    #[test]
    fn compile_wire() {
        let out = compile(&[("wire.td", WIRE)], &CompileOptions::default()).unwrap();
        assert!(out.project.implementation("wire_i").is_some());
        assert_eq!(out.sugar_report, SugarReport::default());
        assert!(out.timings.total() > Duration::ZERO);
    }

    #[test]
    fn sugaring_fixes_fanout_and_reports() {
        let src = r#"
package demo;
type Byte = Stream(Bit(8));
streamlet fan_s { i : Byte in, o1 : Byte out, o2 : Byte out, }
impl fan_i of fan_s {
    i => o1,
    i => o2,
}
"#;
        let out = compile(&[("fan.td", src)], &CompileOptions::default()).unwrap();
        assert_eq!(out.sugar_report.duplicators, 1);
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.stage == "sugar" && d.message.contains("1 duplicator")));

        // Without sugaring, the same design fails the DRC.
        let no_sugar = CompileOptions {
            enable_sugaring: false,
            ..CompileOptions::default()
        };
        let err = compile(&[("fan.td", src)], &no_sugar).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.stage == "drc" && d.message.contains("port usage")));
    }

    #[test]
    fn drc_type_mismatch_has_span() {
        let src = r#"
package demo;
type A = Stream(Bit(8));
type B = Stream(Bit(16));
streamlet s { i : A in, o : B out, }
impl x of s { i => o, }
"#;
        let err = compile(&[("t.td", src)], &CompileOptions::default()).unwrap_err();
        let drc: Vec<_> = err
            .diagnostics
            .iter()
            .filter(|d| d.stage == "drc")
            .collect();
        assert!(!drc.is_empty());
        assert!(drc.iter().any(|d| d.span.is_some()));
        let rendered = err.render();
        assert!(rendered.contains("t.td"));
    }

    #[test]
    fn strict_type_mismatch_detected_and_relaxable() {
        // Two aliases with identical structure: strict DRC must still
        // reject the connection (paper §IV-B).
        let src = r#"
package demo;
type A = Stream(Bit(8));
type B = Stream(Bit(8));
streamlet s { i : A in, o : B out, }
impl x of s { i => o, }
"#;
        let err = compile(&[("t.td", src)], &CompileOptions::default()).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.message.contains("strict type equality")));

        // The @NoStrictType attribute relaxes the check.
        let relaxed = r#"
package demo;
type A = Stream(Bit(8));
type B = Stream(Bit(8));
streamlet s { i : A in, o : B out, }
@NoStrictType
impl x of s { i => o, }
"#;
        let out = compile(&[("t.td", relaxed)], &CompileOptions::default()).unwrap();
        assert!(out.project.implementation("x").is_some());
    }

    #[test]
    fn record_stage_folds_analyze_into_timings() {
        let mut out = compile(&[("wire.td", WIRE)], &CompileOptions::default()).unwrap();
        let wall_before = out.timings.wall;
        let total_before = out.timings.total();
        out.record_stage(Stage::Analyze, Duration::from_millis(3), 2);
        assert_eq!(out.timings.analyze, Duration::from_millis(3));
        assert_eq!(out.timings.wall, wall_before + Duration::from_millis(3));
        assert_eq!(out.timings.total(), total_before + Duration::from_millis(3));
        let record = out.stage_records.last().unwrap();
        assert_eq!(record.stage, Stage::Analyze);
        assert_eq!(record.diagnostics, 2);
        assert_eq!(Stage::Analyze.name(), "analyze");
    }

    #[test]
    fn parse_failure_short_circuits() {
        let err = compile(
            &[("bad.td", "package x;\nconst = ;")],
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert!(err.diagnostics.iter().any(|d| d.stage == "parse"));
    }
}
