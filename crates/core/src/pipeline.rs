//! The staged compiler pipeline (paper Fig. 3).
//!
//! `parse` → `evaluate`/`expand` (elaboration) → `sugar` → `DRC` →
//! Tydi-IR, with per-stage wall-clock timings so the benchmark harness
//! can report where compilation time goes.

use crate::diagnostics::{has_errors, Diagnostic};
use crate::instantiate::{elaborate, ElabInfo};
use crate::parser::parse_package;
use crate::span::SourceFile;
use crate::sugar::{apply_sugaring, SugarReport};
use std::fmt;
use std::time::{Duration, Instant};
use tydi_ir::{IrError, Project};

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Name of the output IR project.
    pub project_name: String,
    /// Run the sugaring pass (paper Fig. 4). Disabling it reproduces
    /// the paper's "without sugaring" Table IV row: designs must then
    /// connect every port explicitly.
    pub enable_sugaring: bool,
    /// Run the design-rule check and fail compilation on violations.
    pub run_drc: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            project_name: "tydi_design".to_string(),
            enable_sugaring: true,
            run_drc: true,
        }
    }
}

/// Wall-clock time spent per pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Lexing + parsing.
    pub parse: Duration,
    /// Evaluation, template instantiation, generative expansion.
    pub elaborate: Duration,
    /// Duplicator/voider insertion.
    pub sugar: Duration,
    /// Design-rule check.
    pub drc: Duration,
}

impl StageTimings {
    /// Total time across stages.
    pub fn total(&self) -> Duration {
        self.parse + self.elaborate + self.sugar + self.drc
    }
}

/// A successful compilation.
#[derive(Debug)]
pub struct CompileOutput {
    /// The validated IR project.
    pub project: Project,
    /// Non-error diagnostics (warnings, notes).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-stage timings.
    pub timings: StageTimings,
    /// Registered source files (for rendering diagnostics).
    pub files: Vec<SourceFile>,
    /// What sugaring did.
    pub sugar_report: SugarReport,
    /// Elaboration statistics.
    pub elab_info: ElabInfo,
}

/// A failed compilation, carrying everything needed to render the
/// errors.
#[derive(Debug)]
pub struct CompileFailure {
    /// All diagnostics, including at least one error.
    pub diagnostics: Vec<Diagnostic>,
    /// Registered source files.
    pub files: Vec<SourceFile>,
}

impl CompileFailure {
    /// Renders every diagnostic against the sources.
    pub fn render(&self) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render(&self.files))
            .collect()
    }
}

impl fmt::Display for CompileFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl std::error::Error for CompileFailure {}

/// Compiles Tydi-lang sources (`(file name, text)` pairs) to Tydi-IR.
pub fn compile(
    sources: &[(&str, &str)],
    options: &CompileOptions,
) -> Result<CompileOutput, Box<CompileFailure>> {
    let mut diagnostics = Vec::new();
    let mut files = Vec::with_capacity(sources.len());
    let mut packages = Vec::new();

    // Stage 1: parse (code structure #1).
    let t0 = Instant::now();
    for (index, (name, text)) in sources.iter().enumerate() {
        files.push(SourceFile::new(*name, *text));
        let (package, mut file_diags) = parse_package(index, text);
        diagnostics.append(&mut file_diags);
        if let Some(p) = package {
            packages.push(p);
        }
    }
    let parse_time = t0.elapsed();
    if has_errors(&diagnostics) {
        return Err(Box::new(CompileFailure { diagnostics, files }));
    }

    // Stage 2: evaluate + expand (code structures #2/#3).
    let t1 = Instant::now();
    let (mut project, elab_info, mut elab_diags) = elaborate(packages, &options.project_name);
    diagnostics.append(&mut elab_diags);
    let elaborate_time = t1.elapsed();
    if has_errors(&diagnostics) {
        return Err(Box::new(CompileFailure { diagnostics, files }));
    }

    // Stage 3: sugaring.
    let t2 = Instant::now();
    let sugar_report = if options.enable_sugaring {
        apply_sugaring(&mut project)
    } else {
        SugarReport::default()
    };
    let sugar_time = t2.elapsed();
    if sugar_report.duplicators + sugar_report.voiders > 0 {
        diagnostics.push(Diagnostic::note(
            "sugar",
            format!(
                "inserted {} duplicator(s) and {} voider(s)",
                sugar_report.duplicators, sugar_report.voiders
            ),
            None,
        ));
    }

    // Stage 4: design-rule check.
    let t3 = Instant::now();
    if options.run_drc {
        if let Err(errors) = project.validate() {
            for error in errors {
                let span = connection_span_of(&error, &elab_info);
                diagnostics.push(Diagnostic::error("drc", error.to_string(), span));
            }
        }
    }
    let drc_time = t3.elapsed();
    if has_errors(&diagnostics) {
        return Err(Box::new(CompileFailure { diagnostics, files }));
    }

    Ok(CompileOutput {
        project,
        diagnostics,
        timings: StageTimings {
            parse: parse_time,
            elaborate: elaborate_time,
            sugar: sugar_time,
            drc: drc_time,
        },
        files,
        sugar_report,
        elab_info,
    })
}

/// Best-effort mapping from an IR validation error back to the source
/// span of the offending connection.
fn connection_span_of(error: &IrError, info: &ElabInfo) -> Option<crate::span::Span> {
    let (implementation, connection) = match error {
        IrError::TypeMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::StrictTypeMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::ComplexityMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::ClockDomainMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::DirectionError {
            implementation,
            connection,
            ..
        } => (implementation, connection),
        _ => return None,
    };
    info.connection_spans
        .get(&(implementation.clone(), connection.clone()))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &str = r#"
package demo;
type Byte = Stream(Bit(8));
streamlet wire_s { i : Byte in, o : Byte out, }
impl wire_i of wire_s { i => o, }
"#;

    #[test]
    fn compile_wire() {
        let out = compile(&[("wire.td", WIRE)], &CompileOptions::default()).unwrap();
        assert!(out.project.implementation("wire_i").is_some());
        assert_eq!(out.sugar_report, SugarReport::default());
        assert!(out.timings.total() > Duration::ZERO);
    }

    #[test]
    fn sugaring_fixes_fanout_and_reports() {
        let src = r#"
package demo;
type Byte = Stream(Bit(8));
streamlet fan_s { i : Byte in, o1 : Byte out, o2 : Byte out, }
impl fan_i of fan_s {
    i => o1,
    i => o2,
}
"#;
        let out = compile(&[("fan.td", src)], &CompileOptions::default()).unwrap();
        assert_eq!(out.sugar_report.duplicators, 1);
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.stage == "sugar" && d.message.contains("1 duplicator")));

        // Without sugaring, the same design fails the DRC.
        let no_sugar = CompileOptions {
            enable_sugaring: false,
            ..CompileOptions::default()
        };
        let err = compile(&[("fan.td", src)], &no_sugar).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.stage == "drc" && d.message.contains("port usage")));
    }

    #[test]
    fn drc_type_mismatch_has_span() {
        let src = r#"
package demo;
type A = Stream(Bit(8));
type B = Stream(Bit(16));
streamlet s { i : A in, o : B out, }
impl x of s { i => o, }
"#;
        let err = compile(&[("t.td", src)], &CompileOptions::default()).unwrap_err();
        let drc: Vec<_> = err
            .diagnostics
            .iter()
            .filter(|d| d.stage == "drc")
            .collect();
        assert!(!drc.is_empty());
        assert!(drc.iter().any(|d| d.span.is_some()));
        let rendered = err.render();
        assert!(rendered.contains("t.td"));
    }

    #[test]
    fn strict_type_mismatch_detected_and_relaxable() {
        // Two aliases with identical structure: strict DRC must still
        // reject the connection (paper §IV-B).
        let src = r#"
package demo;
type A = Stream(Bit(8));
type B = Stream(Bit(8));
streamlet s { i : A in, o : B out, }
impl x of s { i => o, }
"#;
        let err = compile(&[("t.td", src)], &CompileOptions::default()).unwrap_err();
        assert!(err
            .diagnostics
            .iter()
            .any(|d| d.message.contains("strict type equality")));

        // The @NoStrictType attribute relaxes the check.
        let relaxed = r#"
package demo;
type A = Stream(Bit(8));
type B = Stream(Bit(8));
streamlet s { i : A in, o : B out, }
@NoStrictType
impl x of s { i => o, }
"#;
        let out = compile(&[("t.td", relaxed)], &CompileOptions::default()).unwrap();
        assert!(out.project.implementation("x").is_some());
    }

    #[test]
    fn parse_failure_short_circuits() {
        let err = compile(&[("bad.td", "package x;\nconst = ;")], &CompileOptions::default())
            .unwrap_err();
        assert!(err.diagnostics.iter().any(|d| d.stage == "parse"));
    }
}
