//! The Tydi-lang lexer.
//!
//! Hand-written (the reference compiler uses a pest grammar; this
//! implementation avoids the dependency). Supports `//` line comments,
//! `/* */` block comments (nesting allowed), decimal and hexadecimal
//! integers, floats, and escaped string literals.

use crate::diagnostics::Diagnostic;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `source` (registered as file index `file`) into tokens ending
/// with an `Eof` token. Lexical errors are reported as diagnostics;
/// lexing continues after an error by skipping the offending byte.
pub fn lex(file: usize, source: &str) -> (Vec<Token>, Vec<Diagnostic>) {
    let mut lexer = Lexer {
        file,
        bytes: source.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
        diagnostics: Vec::new(),
    };
    lexer.run();
    (lexer.tokens, lexer.diagnostics)
}

struct Lexer<'a> {
    file: usize,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
    diagnostics: Vec<Diagnostic>,
}

impl Lexer<'_> {
    fn run(&mut self) {
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return;
            };
            match c {
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b'[' => self.single(TokenKind::LBracket),
                b']' => self.single(TokenKind::RBracket),
                b',' => self.single(TokenKind::Comma),
                b';' => self.single(TokenKind::Semi),
                b':' => self.single(TokenKind::Colon),
                b'@' => self.single(TokenKind::At),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'%' => self.single(TokenKind::Percent),
                b'^' => self.single(TokenKind::Caret),
                b'.' => {
                    self.pos += 1;
                    if self.peek() == Some(b'.') {
                        self.pos += 1;
                        self.push(TokenKind::DotDot, start);
                    } else {
                        self.push(TokenKind::Dot, start);
                    }
                }
                b'<' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.push(TokenKind::Le, start);
                    } else {
                        self.push(TokenKind::Lt, start);
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.push(TokenKind::Ge, start);
                    } else {
                        self.push(TokenKind::Gt, start);
                    }
                }
                b'=' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'=') => {
                            self.pos += 1;
                            self.push(TokenKind::EqEq, start);
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            self.push(TokenKind::FatArrow, start);
                        }
                        _ => self.push(TokenKind::Eq, start),
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        self.push(TokenKind::NotEq, start);
                    } else {
                        self.push(TokenKind::Bang, start);
                    }
                }
                b'&' => {
                    self.pos += 1;
                    if self.peek() == Some(b'&') {
                        self.pos += 1;
                        self.push(TokenKind::AndAnd, start);
                    } else {
                        self.error(start, "expected `&&`");
                    }
                }
                b'|' => {
                    self.pos += 1;
                    if self.peek() == Some(b'|') {
                        self.pos += 1;
                        self.push(TokenKind::OrOr, start);
                    } else {
                        self.error(start, "expected `||`");
                    }
                }
                b'"' => self.string(start),
                b'0'..=b'9' => self.number(start),
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(start),
                other => {
                    self.pos += 1;
                    self.error(start, format!("unexpected character `{}`", other as char));
                }
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn single(&mut self, kind: TokenKind) {
        let start = self.pos;
        self.pos += 1;
        self.push(kind, start);
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(self.file, start, self.pos),
        });
    }

    fn error(&mut self, start: usize, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic::error(
            "lex",
            message,
            Some(Span::new(self.file, start, self.pos)),
        ));
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut depth = 1;
                    while depth > 0 {
                        match (self.peek(), self.peek_at(1)) {
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                self.error(start, "unterminated block comment");
                                return;
                            }
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn string(&mut self, start: usize) {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    self.error(start, "unterminated string literal");
                    break;
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'n') => value.push('\n'),
                        Some(b't') => value.push('\t'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(other) => {
                            self.error(self.pos, format!("unknown escape `\\{}`", other as char));
                        }
                        None => {
                            self.error(start, "unterminated string literal");
                            break;
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Collect a full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).unwrap_or("");
                    if let Some(c) = s.chars().next() {
                        value.push(c);
                        self.pos += c.len_utf8();
                    } else {
                        self.pos += 1;
                    }
                }
            }
        }
        self.push(TokenKind::Str(value), start);
    }

    fn number(&mut self, start: usize) {
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x') | Some(b'X')) {
            self.pos += 2;
            let digits_start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_hexdigit() || c == b'_')
            {
                self.pos += 1;
            }
            let text: String = std::str::from_utf8(&self.bytes[digits_start..self.pos])
                .unwrap_or("")
                .replace('_', "");
            match i64::from_str_radix(&text, 16) {
                Ok(v) => self.push(TokenKind::Int(v), start),
                Err(_) => self.error(start, "invalid hexadecimal literal"),
            }
            return;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            self.pos += 1;
        }
        let mut is_float = false;
        // A `.` followed by a digit makes it a float; `..` is a range.
        if self.peek() == Some(b'.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E'))
            && self
                .peek_at(1)
                .is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-')
        {
            is_float = true;
            self.pos += 2;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap_or("")
            .replace('_', "");
        if is_float {
            match text.parse::<f64>() {
                Ok(v) => self.push(TokenKind::Float(v), start),
                Err(_) => self.error(start, "invalid float literal"),
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => self.push(TokenKind::Int(v), start),
                Err(_) => self.error(start, "integer literal out of range"),
            }
        }
    }

    fn ident(&mut self, start: usize) {
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap_or("")
            .to_string();
        self.push(TokenKind::Ident(text), start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (tokens, diags) = lex(0, src);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
        tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            kinds("( ) { } [ ] < > <= >= == != = => + - * / % ^ ! && || , ; : . .. @"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Eq,
                TokenKind::FatArrow,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Caret,
                TokenKind::Bang,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Colon,
                TokenKind::Dot,
                TokenKind::DotDot,
                TokenKind::At,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 0x2A 3.5 1e3 2.5e-2 1_000"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.025),
                TokenKind::Int(1000),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn range_is_not_a_float() {
        assert_eq!(
            kinds("0..8"),
            vec![
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(8),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""MED BAG" "a\"b" "x\ny""#),
            vec![
                TokenKind::Str("MED BAG".into()),
                TokenKind::Str("a\"b".into()),
                TokenKind::Str("x\ny".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn identifiers() {
        assert_eq!(
            kinds("foo _bar baz_9 Bit"),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Ident("_bar".into()),
                TokenKind::Ident("baz_9".into()),
                TokenKind::Ident("Bit".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // line\nb /* block /* nested */ still */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn errors_recovered() {
        let (tokens, diags) = lex(0, "a $ b");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains('$'));
        assert_eq!(tokens.len(), 3); // a, b, eof
    }

    #[test]
    fn unterminated_string_reported() {
        let (_, diags) = lex(0, "\"abc");
        assert!(diags.iter().any(|d| d.message.contains("unterminated")));
    }

    #[test]
    fn spans_track_offsets() {
        let (tokens, _) = lex(0, "ab cd");
        assert_eq!(tokens[0].span.start, 0);
        assert_eq!(tokens[0].span.end, 2);
        assert_eq!(tokens[1].span.start, 3);
        assert_eq!(tokens[1].span.end, 5);
    }
}
