//! Lexical scope frames.
//!
//! Template bodies, `for` loops and implementation bodies each push a
//! frame; variable shadowing is explicitly allowed (paper §IV-A:
//! "variable shadowing is possible and useful").
//!
//! Frames are **symbol-keyed** (the `tydi_ir::intern` approach): each
//! distinct variable name is interned once into a [`Symbol`], so a
//! lookup hashes the name once and then compares integers, and
//! defining a variable never allocates an owned key string after the
//! first time its name is seen. Frames themselves are small ordered
//! vectors — template argument lists and loop bodies bind a handful
//! of names, where a linear integer scan beats a per-frame hash map.

use crate::value::Value;
use tydi_ir::{Interner, Symbol};

/// A stack of name-to-value frames.
#[derive(Debug, Default)]
pub struct ScopeFrames {
    /// Session-wide name interner shared by all frames.
    names: Interner,
    /// Innermost frame last; within a frame, later bindings shadow
    /// earlier ones (lookups scan back to front).
    frames: Vec<Vec<(Symbol, Value)>>,
}

impl ScopeFrames {
    /// Creates an empty stack (no frames).
    pub fn new() -> Self {
        ScopeFrames::default()
    }

    /// Pushes a fresh frame.
    pub fn push(&mut self) {
        self.frames.push(Vec::new());
    }

    /// Pops the innermost frame.
    ///
    /// # Panics
    /// Panics when no frame is active (a compiler bug).
    pub fn pop(&mut self) {
        self.frames.pop().expect("scope frame underflow");
    }

    /// Defines (or shadows within the innermost frame) a name.
    ///
    /// # Panics
    /// Panics when no frame is active (a compiler bug).
    pub fn define(&mut self, name: impl AsRef<str>, value: Value) {
        let sym = self.names.intern(name.as_ref());
        self.frames
            .last_mut()
            .expect("no active scope frame")
            .push((sym, value));
    }

    /// Looks a name up, innermost frame first.
    pub fn get(&self, name: &str) -> Option<&Value> {
        // A name never interned was never defined.
        let sym = self.names.get(name)?;
        self.frames.iter().rev().find_map(|frame| {
            frame
                .iter()
                .rev()
                .find_map(|(s, v)| (*s == sym).then_some(v))
        })
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Number of distinct names ever defined (interner size).
    pub fn distinct_names(&self) -> usize {
        self.names.len()
    }

    /// Runs `f` inside a fresh frame, popping it afterwards.
    pub fn scoped<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        self.push();
        let result = f(self);
        self.pop();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut s = ScopeFrames::new();
        s.push();
        s.define("x", Value::Int(1));
        assert_eq!(s.get("x"), Some(&Value::Int(1)));
        assert_eq!(s.get("y"), None);
    }

    #[test]
    fn shadowing_and_unwinding() {
        let mut s = ScopeFrames::new();
        s.push();
        s.define("x", Value::Int(1));
        s.push();
        s.define("x", Value::Int(2));
        assert_eq!(s.get("x"), Some(&Value::Int(2)));
        s.pop();
        assert_eq!(s.get("x"), Some(&Value::Int(1)));
    }

    #[test]
    fn shadowing_within_one_frame() {
        // The innermost frame can redefine a name; the latest binding
        // wins (matching the historic hash-map insert semantics).
        let mut s = ScopeFrames::new();
        s.push();
        s.define("x", Value::Int(1));
        s.define("x", Value::Int(7));
        assert_eq!(s.get("x"), Some(&Value::Int(7)));
        assert_eq!(s.distinct_names(), 1);
    }

    #[test]
    fn scoped_helper() {
        let mut s = ScopeFrames::new();
        s.push();
        s.define("x", Value::Int(1));
        let inner = s.scoped(|s| {
            s.define("x", Value::Int(9));
            s.get("x").cloned()
        });
        assert_eq!(inner, Some(Value::Int(9)));
        assert_eq!(s.get("x"), Some(&Value::Int(1)));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn pop_without_push_panics() {
        ScopeFrames::new().pop();
    }
}
