//! Lexical scope frames.
//!
//! Template bodies, `for` loops and implementation bodies each push a
//! frame; variable shadowing is explicitly allowed (paper §IV-A:
//! "variable shadowing is possible and useful").

use crate::value::Value;
use std::collections::HashMap;

/// A stack of name-to-value frames.
#[derive(Debug, Default)]
pub struct ScopeFrames {
    frames: Vec<HashMap<String, Value>>,
}

impl ScopeFrames {
    /// Creates an empty stack (no frames).
    pub fn new() -> Self {
        ScopeFrames::default()
    }

    /// Pushes a fresh frame.
    pub fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    /// Pops the innermost frame.
    ///
    /// # Panics
    /// Panics when no frame is active (a compiler bug).
    pub fn pop(&mut self) {
        self.frames.pop().expect("scope frame underflow");
    }

    /// Defines (or shadows within the innermost frame) a name.
    ///
    /// # Panics
    /// Panics when no frame is active (a compiler bug).
    pub fn define(&mut self, name: impl Into<String>, value: Value) {
        self.frames
            .last_mut()
            .expect("no active scope frame")
            .insert(name.into(), value);
    }

    /// Looks a name up, innermost frame first.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Runs `f` inside a fresh frame, popping it afterwards.
    pub fn scoped<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        self.push();
        let result = f(self);
        self.pop();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut s = ScopeFrames::new();
        s.push();
        s.define("x", Value::Int(1));
        assert_eq!(s.get("x"), Some(&Value::Int(1)));
        assert_eq!(s.get("y"), None);
    }

    #[test]
    fn shadowing_and_unwinding() {
        let mut s = ScopeFrames::new();
        s.push();
        s.define("x", Value::Int(1));
        s.push();
        s.define("x", Value::Int(2));
        assert_eq!(s.get("x"), Some(&Value::Int(2)));
        s.pop();
        assert_eq!(s.get("x"), Some(&Value::Int(1)));
    }

    #[test]
    fn scoped_helper() {
        let mut s = ScopeFrames::new();
        s.push();
        s.define("x", Value::Int(1));
        let inner = s.scoped(|s| {
            s.define("x", Value::Int(9));
            s.get("x").cloned()
        });
        assert_eq!(inner, Some(Value::Int(9)));
        assert_eq!(s.get("x"), Some(&Value::Int(1)));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn pop_without_push_panics() {
        ScopeFrames::new().pop();
    }
}
