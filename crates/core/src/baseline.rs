//! The **seed-path elaborator**, frozen for benchmarking and
//! differential testing.
//!
//! This module preserves the pre-hash-consing elaboration pipeline
//! exactly as it shipped before the [`TypeStore`](tydi_spec::TypeStore)
//! refactor, including its cost profile:
//!
//! * template memo keys are built by **stringifying whole type trees**
//!   (`ty.to_string()` per reference);
//! * declarations are **deep-cloned** out of the package table on
//!   every resolution;
//! * scope frames are `HashMap<String, value>` with owned strings;
//! * every type expression **deep-clones and re-validates** its
//!   subtrees.
//!
//! `benches/elab_scaling.rs` compares [`elaborate_baseline`] against
//! the production [`elaborate`](crate::instantiate::elaborate) to
//! prove the hash-consed path's speedup, and the differential tests
//! assert both produce identical IR projects. Do **not** "improve"
//! this module — its value is staying identical to the seed.

#![allow(missing_docs)]

use crate::ast::*;
use crate::diagnostics::Diagnostic;
use crate::eval::EvalError;
use crate::instantiate::ElabInfo;
use crate::span::Span;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tydi_ir::{
    Connection, EndpointRef, Implementation, Instance, Port, PortDirection, Project, Streamlet,
};
use tydi_spec::{
    ClockDomain, Complexity, Direction, Field, LogicalType, StreamParams, Synchronicity, Throughput,
};

// ---- the seed's value model (owned strings, deep trees) ------------------

/// Seed-path clone of the pre-refactor `TypeValue`.
#[derive(Debug, Clone, PartialEq)]
pub struct BTypeValue {
    pub ty: Arc<LogicalType>,
    pub origin: Option<String>,
}

impl BTypeValue {
    fn anonymous(ty: LogicalType) -> Self {
        BTypeValue {
            ty: Arc::new(ty),
            origin: None,
        }
    }

    fn named(ty: LogicalType, origin: impl Into<String>) -> Self {
        BTypeValue {
            ty: Arc::new(ty),
            origin: Some(origin.into()),
        }
    }
}

/// Seed-path clone of the pre-refactor `ImplValue`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BImplValue {
    pub name: String,
    pub streamlet: String,
    pub streamlet_base: String,
}

/// Seed-path clone of the pre-refactor `Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum BValue {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Clock(ClockDomain),
    Array(Vec<BValue>),
    Type(BTypeValue),
    Impl(BImplValue),
}

impl BValue {
    fn kind_name(&self) -> &'static str {
        match self {
            BValue::Int(_) => "int",
            BValue::Float(_) => "float",
            BValue::Str(_) => "string",
            BValue::Bool(_) => "bool",
            BValue::Clock(_) => "clockdomain",
            BValue::Array(_) => "array",
            BValue::Type(_) => "type",
            BValue::Impl(_) => "impl",
        }
    }

    fn as_int(&self) -> Option<i64> {
        match self {
            BValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            BValue::Int(v) => Some(*v as f64),
            BValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            BValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn is_numeric(&self) -> bool {
        matches!(self, BValue::Int(_) | BValue::Float(_))
    }

    /// The seed's mangling: type arguments stringify the whole tree.
    fn mangle(&self) -> String {
        match self {
            BValue::Int(v) => v.to_string(),
            BValue::Float(v) => format!("{v:?}"),
            BValue::Str(s) => format!("{s:?}"),
            BValue::Bool(b) => b.to_string(),
            BValue::Clock(c) => format!("!{}", c.name()),
            BValue::Array(items) => {
                let inner: Vec<String> = items.iter().map(BValue::mangle).collect();
                format!("[{}]", inner.join(","))
            }
            BValue::Type(t) => t.ty.to_string().replace(' ', ""),
            BValue::Impl(i) => i.name.clone(),
        }
    }
}

impl std::fmt::Display for BValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BValue::Str(s) => write!(f, "{s}"),
            other => write!(f, "{}", other.mangle()),
        }
    }
}

// ---- the seed's scope frames (string-keyed hash maps) --------------------

#[derive(Debug, Default)]
struct BScopeFrames {
    frames: Vec<HashMap<String, BValue>>,
}

impl BScopeFrames {
    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop().expect("scope frame underflow");
    }

    fn define(&mut self, name: impl Into<String>, value: BValue) {
        self.frames
            .last_mut()
            .expect("no active scope frame")
            .insert(name.into(), value);
    }

    fn get(&self, name: &str) -> Option<&BValue> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }
}

// ---- the seed's expression evaluator -------------------------------------

trait BResolver {
    fn lookup(&mut self, name: &str, span: Span) -> Result<BValue, EvalError>;
}

fn beval_expr(expr: &Expr, resolver: &mut dyn BResolver) -> Result<BValue, EvalError> {
    match expr {
        Expr::Int(v, _) => Ok(BValue::Int(*v)),
        Expr::Float(v, _) => Ok(BValue::Float(*v)),
        Expr::Str(s, _) => Ok(BValue::Str(s.clone())),
        Expr::Bool(b, _) => Ok(BValue::Bool(*b)),
        Expr::Clock(name, _) => Ok(BValue::Clock(ClockDomain::new(name))),
        Expr::Ident(name, span) => resolver.lookup(name, *span),
        Expr::Array(items, _) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(beval_expr(item, resolver)?);
            }
            Ok(BValue::Array(out))
        }
        Expr::Range {
            start,
            end,
            step,
            span,
        } => {
            let start_v = bexpect_int(beval_expr(start, resolver)?, start.span())?;
            let end_v = bexpect_int(beval_expr(end, resolver)?, end.span())?;
            let step_v = match step {
                Some(s) => bexpect_int(beval_expr(s, resolver)?, s.span())?,
                None => 1,
            };
            if step_v == 0 {
                return Err(EvalError::new("range step must be non-zero", *span));
            }
            let mut out = Vec::new();
            let mut v = start_v;
            if step_v > 0 {
                while v < end_v {
                    out.push(BValue::Int(v));
                    v += step_v;
                }
            } else {
                while v > end_v {
                    out.push(BValue::Int(v));
                    v += step_v;
                }
            }
            if out.len() > 1_000_000 {
                return Err(EvalError::new(
                    "range produces more than 1e6 elements",
                    *span,
                ));
            }
            Ok(BValue::Array(out))
        }
        Expr::Index { base, index, span } => {
            let base_v = beval_expr(base, resolver)?;
            let index_v = bexpect_int(beval_expr(index, resolver)?, index.span())?;
            match base_v {
                BValue::Array(items) => {
                    if index_v < 0 || index_v as usize >= items.len() {
                        Err(EvalError::new(
                            format!(
                                "index {index_v} out of bounds for array of length {}",
                                items.len()
                            ),
                            *span,
                        ))
                    } else {
                        Ok(items[index_v as usize].clone())
                    }
                }
                other => Err(EvalError::new(
                    format!("cannot index into a {}", other.kind_name()),
                    *span,
                )),
            }
        }
        Expr::Unary { op, operand, span } => {
            let v = beval_expr(operand, resolver)?;
            match (op, v) {
                (UnaryOp::Neg, BValue::Int(v)) => Ok(BValue::Int(-v)),
                (UnaryOp::Neg, BValue::Float(v)) => Ok(BValue::Float(-v)),
                (UnaryOp::Not, BValue::Bool(b)) => Ok(BValue::Bool(!b)),
                (op, v) => Err(EvalError::new(
                    format!(
                        "unary `{}` is not defined for {}",
                        match op {
                            UnaryOp::Neg => "-",
                            UnaryOp::Not => "!",
                        },
                        v.kind_name()
                    ),
                    *span,
                )),
            }
        }
        Expr::Binary { op, lhs, rhs, span } => {
            if matches!(op, BinOp::And | BinOp::Or) {
                let l = bexpect_bool(beval_expr(lhs, resolver)?, lhs.span())?;
                return match (op, l) {
                    (BinOp::And, false) => Ok(BValue::Bool(false)),
                    (BinOp::Or, true) => Ok(BValue::Bool(true)),
                    _ => {
                        let r = bexpect_bool(beval_expr(rhs, resolver)?, rhs.span())?;
                        Ok(BValue::Bool(r))
                    }
                };
            }
            let l = beval_expr(lhs, resolver)?;
            let r = beval_expr(rhs, resolver)?;
            bbinary(*op, l, r, *span)
        }
        Expr::Call { name, args, span } => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(beval_expr(a, resolver)?);
            }
            bcall_builtin(name, &values, *span)
        }
    }
}

fn bexpect_int(v: BValue, span: Span) -> Result<i64, EvalError> {
    v.as_int()
        .ok_or_else(|| EvalError::new(format!("expected int, found {}", v.kind_name()), span))
}

fn bexpect_bool(v: BValue, span: Span) -> Result<bool, EvalError> {
    v.as_bool()
        .ok_or_else(|| EvalError::new(format!("expected bool, found {}", v.kind_name()), span))
}

fn bbinary(op: BinOp, l: BValue, r: BValue, span: Span) -> Result<BValue, EvalError> {
    use BinOp::*;
    if op == Add {
        if let BValue::Str(a) = &l {
            return Ok(BValue::Str(format!("{a}{r}")));
        }
        if let BValue::Str(b) = &r {
            return Ok(BValue::Str(format!("{l}{b}")));
        }
    }
    if matches!(op, Eq | Ne) {
        let equal = match (&l, &r) {
            (a, b) if a.is_numeric() && b.is_numeric() => {
                a.as_f64().unwrap() == b.as_f64().unwrap()
            }
            (a, b) => a == b,
        };
        return Ok(BValue::Bool(if op == Eq { equal } else { !equal }));
    }
    if matches!(op, Lt | Le | Gt | Ge) {
        let ordering = match (&l, &r) {
            (a, b) if a.is_numeric() && b.is_numeric() => {
                a.as_f64().unwrap().partial_cmp(&b.as_f64().unwrap())
            }
            (BValue::Str(a), BValue::Str(b)) => Some(a.cmp(b)),
            _ => None,
        };
        let Some(ordering) = ordering else {
            return Err(EvalError::new(
                format!("cannot order {} and {}", l.kind_name(), r.kind_name()),
                span,
            ));
        };
        use std::cmp::Ordering as O;
        let result = match op {
            Lt => ordering == O::Less,
            Le => ordering != O::Greater,
            Gt => ordering == O::Greater,
            Ge => ordering != O::Less,
            _ => unreachable!(),
        };
        return Ok(BValue::Bool(result));
    }
    match (&l, &r) {
        (BValue::Int(a), BValue::Int(b)) => {
            let a = *a;
            let b = *b;
            match op {
                Add => bchecked(a.checked_add(b), span),
                Sub => bchecked(a.checked_sub(b), span),
                Mul => bchecked(a.checked_mul(b), span),
                Div => {
                    if b == 0 {
                        Err(EvalError::new("division by zero", span))
                    } else {
                        Ok(BValue::Int(a / b))
                    }
                }
                Rem => {
                    if b == 0 {
                        Err(EvalError::new("remainder by zero", span))
                    } else {
                        Ok(BValue::Int(a % b))
                    }
                }
                Pow => {
                    if b >= 0 {
                        match u32::try_from(b).ok().and_then(|e| a.checked_pow(e)) {
                            Some(v) => Ok(BValue::Int(v)),
                            None => Err(EvalError::new("integer power overflow", span)),
                        }
                    } else {
                        Ok(BValue::Float((a as f64).powi(b as i32)))
                    }
                }
                _ => unreachable!(),
            }
        }
        (a, b) if a.is_numeric() && b.is_numeric() => {
            let a = a.as_f64().unwrap();
            let b = b.as_f64().unwrap();
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(EvalError::new("division by zero", span));
                    }
                    a / b
                }
                Rem => {
                    if b == 0.0 {
                        return Err(EvalError::new("remainder by zero", span));
                    }
                    a % b
                }
                Pow => a.powf(b),
                _ => unreachable!(),
            };
            Ok(BValue::Float(v))
        }
        _ => Err(EvalError::new(
            format!(
                "operator is not defined for {} and {}",
                l.kind_name(),
                r.kind_name()
            ),
            span,
        )),
    }
}

fn bchecked(v: Option<i64>, span: Span) -> Result<BValue, EvalError> {
    v.map(BValue::Int)
        .ok_or_else(|| EvalError::new("integer overflow", span))
}

fn bcall_builtin(name: &str, args: &[BValue], span: Span) -> Result<BValue, EvalError> {
    let arity = |n: usize| -> Result<(), EvalError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EvalError::new(
                format!("`{name}` expects {n} argument(s), got {}", args.len()),
                span,
            ))
        }
    };
    let num = |i: usize| -> Result<f64, EvalError> {
        args[i].as_f64().ok_or_else(|| {
            EvalError::new(
                format!(
                    "`{name}` expects a numeric argument, got {}",
                    args[i].kind_name()
                ),
                span,
            )
        })
    };
    match name {
        "ceil" => {
            arity(1)?;
            Ok(BValue::Int(num(0)?.ceil() as i64))
        }
        "floor" => {
            arity(1)?;
            Ok(BValue::Int(num(0)?.floor() as i64))
        }
        "round" => {
            arity(1)?;
            Ok(BValue::Int(num(0)?.round() as i64))
        }
        "abs" => {
            arity(1)?;
            match &args[0] {
                BValue::Int(v) => Ok(BValue::Int(v.abs())),
                BValue::Float(v) => Ok(BValue::Float(v.abs())),
                other => Err(EvalError::new(
                    format!("`abs` expects a number, got {}", other.kind_name()),
                    span,
                )),
            }
        }
        "log2" => {
            arity(1)?;
            let v = num(0)?;
            if v <= 0.0 {
                return Err(EvalError::new("log2 of a non-positive number", span));
            }
            Ok(BValue::Float(v.log2()))
        }
        "log10" => {
            arity(1)?;
            let v = num(0)?;
            if v <= 0.0 {
                return Err(EvalError::new("log10 of a non-positive number", span));
            }
            Ok(BValue::Float(v.log10()))
        }
        "ln" => {
            arity(1)?;
            let v = num(0)?;
            if v <= 0.0 {
                return Err(EvalError::new("ln of a non-positive number", span));
            }
            Ok(BValue::Float(v.ln()))
        }
        "sqrt" => {
            arity(1)?;
            let v = num(0)?;
            if v < 0.0 {
                return Err(EvalError::new("sqrt of a negative number", span));
            }
            Ok(BValue::Float(v.sqrt()))
        }
        "pow" => {
            arity(2)?;
            Ok(BValue::Float(num(0)?.powf(num(1)?)))
        }
        "min" | "max" => {
            if args.is_empty() {
                return Err(EvalError::new(format!("`{name}` needs arguments"), span));
            }
            let mut best = num(0)?;
            let mut all_int = matches!(args[0], BValue::Int(_));
            for (i, a) in args.iter().enumerate().skip(1) {
                let v = num(i)?;
                all_int &= matches!(a, BValue::Int(_));
                best = if name == "min" {
                    best.min(v)
                } else {
                    best.max(v)
                };
            }
            if all_int {
                Ok(BValue::Int(best as i64))
            } else {
                Ok(BValue::Float(best))
            }
        }
        "len" => {
            arity(1)?;
            match &args[0] {
                BValue::Array(items) => Ok(BValue::Int(items.len() as i64)),
                BValue::Str(s) => Ok(BValue::Int(s.chars().count() as i64)),
                other => Err(EvalError::new(
                    format!(
                        "`len` expects an array or string, got {}",
                        other.kind_name()
                    ),
                    span,
                )),
            }
        }
        "int" => {
            arity(1)?;
            Ok(BValue::Int(num(0)? as i64))
        }
        "float" => {
            arity(1)?;
            Ok(BValue::Float(num(0)?))
        }
        "str" => {
            arity(1)?;
            Ok(BValue::Str(args[0].to_string()))
        }
        other => Err(EvalError::new(
            format!("unknown builtin function `{other}`"),
            span,
        )),
    }
}

// ---- the seed's elaborator -----------------------------------------------

/// Elaborates merged packages into an IR project via the frozen
/// seed path (see the module docs).
pub fn elaborate_baseline(
    packages: Vec<Package>,
    project_name: &str,
) -> (Project, ElabInfo, Vec<Diagnostic>) {
    let mut elab = BElaborator::new(packages, project_name);
    elab.run();
    (elab.project, elab.info, elab.diagnostics)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DeclId {
    package: usize,
    decl: usize,
}

struct MergedPackage {
    name: String,
    uses: Vec<String>,
    decls: Vec<Decl>,
    index: HashMap<String, usize>,
}

struct BElaborator {
    packages: Vec<MergedPackage>,
    package_index: HashMap<String, usize>,
    project: Project,
    info: ElabInfo,
    diagnostics: Vec<Diagnostic>,
    value_cache: HashMap<DeclId, BValue>,
    evaluating: HashSet<DeclId>,
    /// Elaborated streamlet templates: **mangled string** key -> IR name.
    streamlet_cache: HashMap<String, String>,
    /// Elaborated implementations: **mangled string** key -> value.
    impl_cache: HashMap<String, BImplValue>,
    locals: BScopeFrames,
    current_package: usize,
}

const MAX_DEPTH: usize = 64;

impl BElaborator {
    fn new(packages: Vec<Package>, project_name: &str) -> Self {
        let mut merged: Vec<MergedPackage> = Vec::new();
        let mut package_index = HashMap::new();
        let mut diagnostics = Vec::new();
        for package in packages {
            let idx = match package_index.get(&package.name) {
                Some(&i) => i,
                None => {
                    package_index.insert(package.name.clone(), merged.len());
                    merged.push(MergedPackage {
                        name: package.name.clone(),
                        uses: Vec::new(),
                        decls: Vec::new(),
                        index: HashMap::new(),
                    });
                    merged.len() - 1
                }
            };
            let target = &mut merged[idx];
            for used in package.uses {
                if !target.uses.contains(&used) {
                    target.uses.push(used);
                }
            }
            for decl in package.decls {
                if let Some(name) = decl.name() {
                    if target.index.contains_key(name) {
                        diagnostics.push(Diagnostic::error(
                            "evaluate",
                            format!(
                                "duplicate declaration `{name}` in package `{}`",
                                target.name
                            ),
                            bdecl_span(&decl),
                        ));
                        continue;
                    }
                    target.index.insert(name.to_string(), target.decls.len());
                }
                target.decls.push(decl);
            }
        }
        BElaborator {
            packages: merged,
            package_index,
            project: Project::new(project_name),
            info: ElabInfo::default(),
            diagnostics,
            value_cache: HashMap::new(),
            evaluating: HashSet::new(),
            streamlet_cache: HashMap::new(),
            impl_cache: HashMap::new(),
            locals: BScopeFrames::default(),
            current_package: 0,
        }
    }

    fn run(&mut self) {
        for pkg_idx in 0..self.packages.len() {
            self.current_package = pkg_idx;
            for decl_idx in 0..self.packages[pkg_idx].decls.len() {
                // Seed path: deep-clone the declaration per visit.
                let decl = self.packages[pkg_idx].decls[decl_idx].clone();
                match decl {
                    Decl::Assert {
                        expr,
                        message,
                        span,
                    } => self.check_assert(&expr, message.as_ref(), span),
                    Decl::Streamlet(s) if s.params.is_empty() => {
                        self.elaborate_streamlet(pkg_idx, &s, &[], 0);
                    }
                    Decl::Impl(i) if i.params.is_empty() => {
                        self.elaborate_impl(pkg_idx, &i, &[], 0);
                    }
                    _ => {}
                }
            }
        }
    }

    fn error(&mut self, message: impl Into<String>, span: Span) {
        self.diagnostics
            .push(Diagnostic::error("evaluate", message, Some(span)));
    }

    fn eval_error(&mut self, e: EvalError) {
        self.diagnostics
            .push(Diagnostic::error("evaluate", e.message, Some(e.span)));
    }

    fn find_decl(&mut self, pkg: usize, name: &str, span: Span) -> Option<DeclId> {
        if let Some(&decl) = self.packages[pkg].index.get(name) {
            return Some(DeclId { package: pkg, decl });
        }
        let mut found: Option<DeclId> = None;
        // Seed path: clones the import list on every lookup.
        for used in self.packages[pkg].uses.clone() {
            let Some(&used_idx) = self.package_index.get(&used) else {
                self.error(format!("use of unknown package `{used}`"), span);
                continue;
            };
            if let Some(&decl) = self.packages[used_idx].index.get(name) {
                if let Some(previous) = found {
                    let a = self.packages[previous.package].name.clone();
                    let b = self.packages[used_idx].name.clone();
                    self.error(
                        format!("`{name}` is ambiguous: defined in both `{a}` and `{b}`"),
                        span,
                    );
                    return None;
                }
                found = Some(DeclId {
                    package: used_idx,
                    decl,
                });
            }
        }
        found
    }

    fn global_value(&mut self, id: DeclId, span: Span) -> Result<BValue, EvalError> {
        if let Some(v) = self.value_cache.get(&id) {
            return Ok(v.clone());
        }
        if !self.evaluating.insert(id) {
            let name = self.packages[id.package].decls[id.decl]
                .name()
                .unwrap_or("<unnamed>")
                .to_string();
            return Err(EvalError::new(
                format!("cyclic definition involving `{name}`"),
                span,
            ));
        }
        let saved_package = self.current_package;
        self.current_package = id.package;
        // Seed path: deep-clone the declaration per resolution.
        let decl = self.packages[id.package].decls[id.decl].clone();
        let result = match &decl {
            Decl::Const(c) => {
                let value = beval_expr(&c.value, self);
                match value {
                    Ok(v) => self.check_var_kind(&c.name, c.kind.as_ref(), v, c.span),
                    Err(e) => Err(e),
                }
            }
            Decl::TypeAlias { name, ty, span } => {
                let qualified = format!("{}.{}", self.packages[id.package].name, name);
                self.elaborate_type(ty, 0)
                    .map(|tv| {
                        BValue::Type(BTypeValue {
                            ty: tv.ty,
                            origin: Some(qualified),
                        })
                    })
                    .map_err(|e| EvalError::new(e.message, *span))
            }
            Decl::Group { name, fields, span } | Decl::Union { name, fields, span } => {
                let qualified = format!("{}.{}", self.packages[id.package].name, name);
                let is_group = matches!(&decl, Decl::Group { .. });
                let mut out_fields = Vec::with_capacity(fields.len());
                let mut failed = None;
                for (field_name, field_ty) in fields {
                    match self.elaborate_type(field_ty, 0) {
                        Ok(tv) => out_fields.push(Field::new(field_name, (*tv.ty).clone())),
                        Err(e) => {
                            failed = Some(EvalError::new(e.message, *span));
                            break;
                        }
                    }
                }
                match failed {
                    Some(e) => Err(e),
                    None => {
                        let ty = if is_group {
                            LogicalType::Group(out_fields)
                        } else {
                            LogicalType::Union(out_fields)
                        };
                        match ty.validate() {
                            Ok(()) => Ok(BValue::Type(BTypeValue::named(ty, qualified))),
                            Err(e) => Err(EvalError::new(e.to_string(), *span)),
                        }
                    }
                }
            }
            Decl::Impl(i) if i.params.is_empty() => {
                let pkg = id.package;
                let i = i.clone();
                match self.elaborate_impl(pkg, &i, &[], 0) {
                    Some(v) => Ok(BValue::Impl(v)),
                    None => Err(EvalError::new(
                        format!("implementation `{}` failed to elaborate", i.name),
                        span,
                    )),
                }
            }
            Decl::Impl(i) => Err(EvalError::new(
                format!("`{}` is a template and needs arguments", i.name),
                span,
            )),
            Decl::Streamlet(s) => Err(EvalError::new(
                format!("`{}` is a streamlet, not a value", s.name),
                span,
            )),
            Decl::Assert { .. } => Err(EvalError::new("asserts are not values", span)),
        };
        self.current_package = saved_package;
        self.evaluating.remove(&id);
        if let Ok(v) = &result {
            self.value_cache.insert(id, v.clone());
        }
        result
    }

    fn check_var_kind(
        &mut self,
        name: &str,
        kind: Option<&VarKind>,
        value: BValue,
        span: Span,
    ) -> Result<BValue, EvalError> {
        let Some(kind) = kind else {
            return Ok(value);
        };
        if bvar_kind_matches(kind, &value) {
            Ok(value)
        } else {
            Err(EvalError::new(
                format!(
                    "const `{name}` declared as {} but initializer is {}",
                    bvar_kind_name(kind),
                    value.kind_name()
                ),
                span,
            ))
        }
    }

    fn check_assert(&mut self, expr: &Expr, message: Option<&Expr>, span: Span) {
        match beval_expr(expr, self) {
            Ok(BValue::Bool(true)) => {}
            Ok(BValue::Bool(false)) => {
                let text = message
                    .and_then(|m| beval_expr(m, self).ok())
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "assertion failed".to_string());
                self.error(format!("assert failed: {text}"), span);
            }
            Ok(other) => {
                self.error(
                    format!("assert condition must be bool, got {}", other.kind_name()),
                    span,
                );
            }
            Err(e) => self.eval_error(e),
        }
    }

    fn elaborate_type(&mut self, ty: &TypeExpr, depth: usize) -> Result<BTypeValue, EvalError> {
        if depth > MAX_DEPTH {
            return Err(EvalError::new("type nesting too deep", ty.span()));
        }
        match ty {
            TypeExpr::Null(_) => Ok(BTypeValue::anonymous(LogicalType::Null)),
            TypeExpr::Bit(width, span) => {
                let w = beval_expr(width, self)?;
                let w = w.as_int().ok_or_else(|| {
                    EvalError::new(
                        format!("Bit width must be an int, got {}", w.kind_name()),
                        *span,
                    )
                })?;
                if w <= 0 || w > u32::MAX as i64 {
                    return Err(EvalError::new(
                        format!("Bit width must be positive, got {w}"),
                        *span,
                    ));
                }
                Ok(BTypeValue::anonymous(LogicalType::Bit(w as u32)))
            }
            TypeExpr::Ref(name, span) => {
                let v = self.lookup(name, *span)?;
                match v {
                    BValue::Type(tv) => Ok(tv),
                    other => Err(EvalError::new(
                        format!("`{name}` is a {}, not a type", other.kind_name()),
                        *span,
                    )),
                }
            }
            TypeExpr::Stream {
                element,
                args,
                span,
            } => {
                let element_tv = self.elaborate_type(element, depth + 1)?;
                let mut params = StreamParams::new();
                for arg in args {
                    match arg {
                        StreamArg::Dimension(e) => {
                            let v = beval_expr(e, self)?;
                            let d = v.as_int().ok_or_else(|| {
                                EvalError::new("dimension must be an int", e.span())
                            })?;
                            if !(0..=32).contains(&d) {
                                return Err(EvalError::new(
                                    format!("dimension must be in 0..=32, got {d}"),
                                    e.span(),
                                ));
                            }
                            params.dimension = d as u32;
                        }
                        StreamArg::Throughput(e) => {
                            let v = beval_expr(e, self)?;
                            let t = v.as_f64().ok_or_else(|| {
                                EvalError::new("throughput must be numeric", e.span())
                            })?;
                            params.throughput = Throughput::from_f64(t)
                                .map_err(|err| EvalError::new(err.to_string(), e.span()))?;
                        }
                        StreamArg::Complexity(e) => {
                            let v = beval_expr(e, self)?;
                            let c = v.as_int().ok_or_else(|| {
                                EvalError::new("complexity must be an int", e.span())
                            })?;
                            let c = u8::try_from(c)
                                .map_err(|_| EvalError::new("complexity out of range", e.span()))?;
                            params.complexity = Complexity::new(c)
                                .map_err(|err| EvalError::new(err.to_string(), e.span()))?;
                        }
                        StreamArg::Direction(word, dspan) => {
                            params.direction = match word.as_str() {
                                "Forward" => Direction::Forward,
                                "Reverse" => Direction::Reverse,
                                other => {
                                    return Err(EvalError::new(
                                        format!("unknown direction `{other}`"),
                                        *dspan,
                                    ))
                                }
                            };
                        }
                        StreamArg::Synchronicity(word, sspan) => {
                            params.synchronicity = match word.as_str() {
                                "Sync" => Synchronicity::Sync,
                                "Flatten" => Synchronicity::Flatten,
                                "Desync" => Synchronicity::Desync,
                                "FlatDesync" => Synchronicity::FlatDesync,
                                other => {
                                    return Err(EvalError::new(
                                        format!("unknown synchronicity `{other}`"),
                                        *sspan,
                                    ))
                                }
                            };
                        }
                        StreamArg::User(t) => {
                            let tv = self.elaborate_type(t, depth + 1)?;
                            params.user = Some(Box::new((*tv.ty).clone()));
                        }
                        StreamArg::Keep(e) => {
                            let v = beval_expr(e, self)?;
                            params.keep = v
                                .as_bool()
                                .ok_or_else(|| EvalError::new("keep must be a bool", e.span()))?;
                        }
                    }
                }
                // Seed path: deep-clone the element tree and re-validate
                // the whole composed type.
                let ty = LogicalType::stream((*element_tv.ty).clone(), params);
                ty.validate()
                    .map_err(|e| EvalError::new(e.to_string(), *span))?;
                Ok(BTypeValue::anonymous(ty))
            }
        }
    }

    fn bind_template_args(
        &mut self,
        owner: &str,
        params: &[TemplateParam],
        args: &[TemplateArgExpr],
        span: Span,
        depth: usize,
    ) -> Result<Vec<(String, BValue)>, EvalError> {
        if params.len() != args.len() {
            return Err(EvalError::new(
                format!(
                    "`{owner}` expects {} template argument(s), got {}",
                    params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let mut bindings = Vec::with_capacity(params.len());
        for (param, arg) in params.iter().zip(args) {
            let value = match (&param.kind, arg) {
                (TemplateParamKind::Type, TemplateArgExpr::Type(t)) => {
                    BValue::Type(self.elaborate_type(t, depth)?)
                }
                (TemplateParamKind::ImplOf(bound), TemplateArgExpr::Impl(r)) => {
                    let impl_value = self.evaluate_impl_ref(r, depth + 1)?;
                    if &impl_value.streamlet_base != bound {
                        return Err(EvalError::new(
                            format!(
                                "template argument `{}` must be an impl of `{bound}`, but `{}` implements `{}`",
                                param.name, impl_value.name, impl_value.streamlet_base
                            ),
                            r.span,
                        ));
                    }
                    BValue::Impl(impl_value)
                }
                (kind, TemplateArgExpr::Value(e)) => {
                    let v = beval_expr(e, self)?;
                    let ok = match kind {
                        TemplateParamKind::Int => matches!(v, BValue::Int(_)),
                        TemplateParamKind::Float => v.is_numeric(),
                        TemplateParamKind::Str => matches!(v, BValue::Str(_)),
                        TemplateParamKind::Bool => matches!(v, BValue::Bool(_)),
                        TemplateParamKind::Clock => matches!(v, BValue::Clock(_)),
                        _ => false,
                    };
                    if !ok {
                        return Err(EvalError::new(
                            format!(
                                "template argument `{}` expects {}, got {}",
                                param.name,
                                btemplate_kind_name(kind),
                                v.kind_name()
                            ),
                            e.span(),
                        ));
                    }
                    if matches!(kind, TemplateParamKind::Float) {
                        BValue::Float(v.as_f64().unwrap())
                    } else {
                        v
                    }
                }
                (kind, _) => {
                    return Err(EvalError::new(
                        format!(
                            "template argument `{}` expects {} (prefix `type`/`impl` arguments accordingly)",
                            param.name,
                            btemplate_kind_name(kind)
                        ),
                        span,
                    ))
                }
            };
            bindings.push((param.name.clone(), value));
        }
        Ok(bindings)
    }

    /// Seed path: the memo key is a mangled string, rebuilt — type
    /// trees stringified — on **every** reference.
    fn mangle(&self, base: &str, bindings: &[(String, BValue)]) -> String {
        if bindings.is_empty() {
            base.to_string()
        } else {
            let args: Vec<String> = bindings.iter().map(|(_, v)| v.mangle()).collect();
            format!("{base}<{}>", args.join(","))
        }
    }

    fn evaluate_streamlet_ref(
        &mut self,
        r: &NamedRef,
        depth: usize,
    ) -> Result<(String, String), EvalError> {
        if depth > MAX_DEPTH {
            return Err(EvalError::new("instantiation recursion too deep", r.span));
        }
        let id = self
            .find_decl(self.current_package, &r.name, r.span)
            .ok_or_else(|| EvalError::new(format!("unknown streamlet `{}`", r.name), r.span))?;
        // Seed path: deep-clone the whole declaration per reference.
        let decl = self.packages[id.package].decls[id.decl].clone();
        let Decl::Streamlet(s) = decl else {
            return Err(EvalError::new(
                format!("`{}` is not a streamlet", r.name),
                r.span,
            ));
        };
        let bindings = self.bind_template_args(&r.name, &s.params, &r.args, r.span, depth)?;
        match self.elaborate_streamlet(id.package, &s, &bindings, depth) {
            Some(ir_name) => Ok((ir_name, s.name.clone())),
            None => Err(EvalError::new(
                format!("streamlet `{}` failed to elaborate", r.name),
                r.span,
            )),
        }
    }

    fn evaluate_impl_ref(&mut self, r: &NamedRef, depth: usize) -> Result<BImplValue, EvalError> {
        if depth > MAX_DEPTH {
            return Err(EvalError::new("instantiation recursion too deep", r.span));
        }
        if r.args.is_empty() {
            if let Some(v) = self.locals.get(&r.name).cloned() {
                return match v {
                    BValue::Impl(iv) => Ok(iv),
                    other => Err(EvalError::new(
                        format!("`{}` is a {}, not an impl", r.name, other.kind_name()),
                        r.span,
                    )),
                };
            }
        }
        let id = self
            .find_decl(self.current_package, &r.name, r.span)
            .ok_or_else(|| {
                EvalError::new(format!("unknown implementation `{}`", r.name), r.span)
            })?;
        // Seed path: deep-clone the whole declaration per reference.
        let decl = self.packages[id.package].decls[id.decl].clone();
        let Decl::Impl(i) = decl else {
            return Err(EvalError::new(
                format!("`{}` is not an implementation", r.name),
                r.span,
            ));
        };
        let bindings = self.bind_template_args(&r.name, &i.params, &r.args, r.span, depth)?;
        self.elaborate_impl(id.package, &i, &bindings, depth)
            .ok_or_else(|| {
                EvalError::new(
                    format!("implementation `{}` failed to elaborate", r.name),
                    r.span,
                )
            })
    }

    fn elaborate_streamlet(
        &mut self,
        pkg: usize,
        s: &StreamletDecl,
        bindings: &[(String, BValue)],
        depth: usize,
    ) -> Option<String> {
        let key = format!(
            "{}::{}",
            self.packages[pkg].name,
            self.mangle(&s.name, bindings)
        );
        if let Some(existing) = self.streamlet_cache.get(&key) {
            self.info.template_cache_hits += 1;
            return Some(existing.clone());
        }
        if !bindings.is_empty() {
            self.info.template_instantiations += 1;
        }
        let ir_name = self.mangle(&s.name, bindings);

        let saved_package = self.current_package;
        self.current_package = pkg;
        self.locals.push();
        for (name, value) in bindings {
            self.locals.define(name.clone(), value.clone());
        }

        let mut streamlet = Streamlet::new(ir_name.clone());
        streamlet.doc = s.doc.clone();
        let mut ok = true;
        for port in &s.ports {
            let tv = match self.elaborate_type(&port.ty, depth + 1) {
                Ok(tv) => tv,
                Err(e) => {
                    self.eval_error(e);
                    ok = false;
                    continue;
                }
            };
            if !matches!(*tv.ty, LogicalType::Stream { .. }) {
                self.error(
                    format!(
                        "port `{}` must bind a Stream type, got `{}`",
                        port.name, tv.ty
                    ),
                    port.span,
                );
                ok = false;
                continue;
            }
            let clock = match &port.clock {
                None => ClockDomain::default(),
                Some(ClockSpec::Named(name, _)) => ClockDomain::new(name),
                Some(ClockSpec::Expr(e)) => match beval_expr(e, self) {
                    Ok(BValue::Clock(c)) => c,
                    Ok(other) => {
                        self.error(
                            format!(
                                "clock annotation must be a clockdomain, got {}",
                                other.kind_name()
                            ),
                            e.span(),
                        );
                        ok = false;
                        continue;
                    }
                    Err(e) => {
                        self.eval_error(e);
                        ok = false;
                        continue;
                    }
                },
            };
            let direction = match port.direction {
                PortDir::In => PortDirection::In,
                PortDir::Out => PortDirection::Out,
            };
            let count = match &port.array {
                None => None,
                Some(e) => match beval_expr(e, self) {
                    Ok(BValue::Int(n)) if (1..=4096).contains(&n) => Some(n as usize),
                    Ok(BValue::Int(n)) => {
                        self.error(
                            format!("port array size must be in 1..=4096, got {n}"),
                            e.span(),
                        );
                        ok = false;
                        continue;
                    }
                    Ok(other) => {
                        self.error(
                            format!("port array size must be an int, got {}", other.kind_name()),
                            e.span(),
                        );
                        ok = false;
                        continue;
                    }
                    Err(e) => {
                        self.eval_error(e);
                        ok = false;
                        continue;
                    }
                },
            };
            // Seed path: deep-clone the type tree per expanded port.
            let make_port = |name: String| {
                let mut p = Port::new(name, direction, (*tv.ty).clone()).with_clock(clock.clone());
                p.type_origin = tv.origin.clone();
                p
            };
            match count {
                None => streamlet.ports.push(make_port(port.name.clone())),
                Some(n) => {
                    for i in 0..n {
                        streamlet
                            .ports
                            .push(make_port(format!("{}_{i}", port.name)));
                    }
                }
            }
        }

        self.locals.pop();
        self.current_package = saved_package;

        if !ok {
            return None;
        }
        if self.project.streamlet(&ir_name).is_none() {
            if let Err(e) = self.project.add_streamlet(streamlet) {
                self.error(e.to_string(), s.span);
                return None;
            }
        }
        self.streamlet_cache.insert(key, ir_name.clone());
        Some(ir_name)
    }

    fn elaborate_impl(
        &mut self,
        pkg: usize,
        i: &ImplDecl,
        bindings: &[(String, BValue)],
        depth: usize,
    ) -> Option<BImplValue> {
        let key = format!(
            "{}::{}",
            self.packages[pkg].name,
            self.mangle(&i.name, bindings)
        );
        if let Some(existing) = self.impl_cache.get(&key) {
            self.info.template_cache_hits += 1;
            return Some(existing.clone());
        }
        if !bindings.is_empty() {
            self.info.template_instantiations += 1;
        }
        let ir_name = self.mangle(&i.name, bindings);
        if depth > MAX_DEPTH {
            self.error("instantiation recursion too deep", i.span);
            return None;
        }

        let saved_package = self.current_package;
        self.current_package = pkg;
        self.locals.push();
        for (name, value) in bindings {
            self.locals.define(name.clone(), value.clone());
        }

        let streamlet = match self.evaluate_streamlet_ref(&i.streamlet, depth + 1) {
            Ok(v) => v,
            Err(e) => {
                self.eval_error(e);
                self.locals.pop();
                self.current_package = saved_package;
                return None;
            }
        };
        let (streamlet_ir, streamlet_base) = streamlet;

        let value = BImplValue {
            name: ir_name.clone(),
            streamlet: streamlet_ir.clone(),
            streamlet_base: streamlet_base.clone(),
        };
        self.impl_cache.insert(key.clone(), value.clone());

        let mut implementation = match &i.body {
            ImplBody::External { simulation } => {
                let mut imp = Implementation::external(ir_name.clone(), streamlet_ir.clone());
                if let Some(sim) = simulation {
                    imp = imp.with_sim_source(sim.source.clone());
                }
                imp
            }
            ImplBody::Normal(_) => Implementation::normal(ir_name.clone(), streamlet_ir.clone()),
        };
        implementation.doc = i.doc.clone();

        for attr in &i.attributes {
            match attr.name.as_str() {
                "builtin" => {
                    let Some(arg) = &attr.arg else {
                        self.error("@builtin requires a string argument", attr.span);
                        continue;
                    };
                    match beval_expr(arg, self) {
                        Ok(BValue::Str(keyname)) => {
                            implementation = implementation.with_builtin(keyname);
                        }
                        Ok(other) => self.error(
                            format!("@builtin expects a string, got {}", other.kind_name()),
                            attr.span,
                        ),
                        Err(e) => self.eval_error(e),
                    }
                }
                other => {
                    let value = match &attr.arg {
                        Some(arg) => match beval_expr(arg, self) {
                            Ok(v) => v.to_string(),
                            Err(e) => {
                                self.eval_error(e);
                                String::new()
                            }
                        },
                        None => String::new(),
                    };
                    implementation.attributes.insert(other.to_string(), value);
                }
            }
        }
        for (name, v) in bindings {
            implementation
                .attributes
                .insert(format!("param_{name}"), v.mangle());
        }

        if let ImplBody::Normal(stmts) = &i.body {
            let mut body = BBodyBuilder {
                implementation: &mut implementation,
                instance_impls: HashMap::new(),
                aliases: Vec::new(),
                fresh: 0,
            };
            // Seed path: deep-clone the statement list before walking.
            let stmts = stmts.clone();
            self.run_stmts(&stmts, &mut body, depth);
        }

        self.locals.pop();
        self.current_package = saved_package;

        if let Err(e) = self.project.add_implementation(implementation) {
            self.error(e.to_string(), i.span);
        }
        Some(value)
    }

    fn run_stmts(&mut self, stmts: &[Stmt], body: &mut BBodyBuilder<'_>, depth: usize) {
        for stmt in stmts {
            self.run_stmt(stmt, body, depth);
        }
    }

    fn run_stmt(&mut self, stmt: &Stmt, body: &mut BBodyBuilder<'_>, depth: usize) {
        match stmt {
            Stmt::Const(c) => match beval_expr(&c.value, self) {
                Ok(v) => match self.check_var_kind(&c.name, c.kind.as_ref(), v, c.span) {
                    Ok(v) => self.locals.define(c.name.clone(), v),
                    Err(e) => self.eval_error(e),
                },
                Err(e) => self.eval_error(e),
            },
            Stmt::Assert {
                expr,
                message,
                span,
            } => self.check_assert(expr, message.as_ref(), *span),
            Stmt::If {
                cond,
                body: then_body,
                else_body,
                ..
            } => match beval_expr(cond, self) {
                Ok(BValue::Bool(true)) => {
                    self.locals.push();
                    body.aliases.push(HashMap::new());
                    self.run_stmts(then_body, body, depth);
                    body.aliases.pop();
                    self.locals.pop();
                }
                Ok(BValue::Bool(false)) => {
                    self.locals.push();
                    body.aliases.push(HashMap::new());
                    self.run_stmts(else_body, body, depth);
                    body.aliases.pop();
                    self.locals.pop();
                }
                Ok(other) => self.error(
                    format!("if condition must be bool, got {}", other.kind_name()),
                    cond.span(),
                ),
                Err(e) => self.eval_error(e),
            },
            Stmt::For {
                var,
                iterable,
                body: loop_body,
                ..
            } => match beval_expr(iterable, self) {
                Ok(BValue::Array(items)) => {
                    for item in items {
                        self.locals.push();
                        self.locals.define(var.clone(), item);
                        body.aliases.push(HashMap::new());
                        self.run_stmts(loop_body, body, depth);
                        body.aliases.pop();
                        self.locals.pop();
                    }
                }
                Ok(other) => self.error(
                    format!(
                        "for iterable must be an array or range, got {}",
                        other.kind_name()
                    ),
                    iterable.span(),
                ),
                Err(e) => self.eval_error(e),
            },
            Stmt::Instance {
                name,
                impl_ref,
                array,
                span,
            } => {
                let impl_value = match self.evaluate_impl_ref(impl_ref, depth + 1) {
                    Ok(v) => v,
                    Err(e) => {
                        self.eval_error(e);
                        return;
                    }
                };
                let count = match array {
                    None => None,
                    Some(e) => {
                        match beval_expr(e, self) {
                            Ok(BValue::Int(n)) if (1..=4096).contains(&n) => Some(n as usize),
                            Ok(other) => {
                                self.error(
                                format!("instance array size must be a small positive int, got {other}"),
                                e.span(),
                            );
                                return;
                            }
                            Err(e) => {
                                self.eval_error(e);
                                return;
                            }
                        }
                    }
                };
                let base = if body.aliases.is_empty() {
                    name.clone()
                } else {
                    let unique = format!("{name}__{}", body.fresh);
                    body.fresh += 1;
                    body.aliases
                        .last_mut()
                        .expect("alias frame present")
                        .insert(name.clone(), unique.clone());
                    unique
                };
                let add = |elab: &mut Self, body: &mut BBodyBuilder<'_>, inst_name: String| {
                    if body.instance_impls.contains_key(&inst_name) {
                        elab.error(format!("duplicate instance `{inst_name}`"), *span);
                        return;
                    }
                    body.instance_impls
                        .insert(inst_name.clone(), impl_value.clone());
                    body.implementation
                        .add_instance(Instance::new(inst_name, impl_value.name.clone()));
                };
                match count {
                    None => add(self, body, base),
                    Some(n) => {
                        for idx in 0..n {
                            add(self, body, format!("{base}_{idx}"));
                        }
                    }
                }
            }
            Stmt::Connect { src, dst, span } => {
                let Some(source) = self.resolve_endpoint(src, body) else {
                    return;
                };
                let Some(sink) = self.resolve_endpoint(dst, body) else {
                    return;
                };
                let connection = Connection::new(source, sink);
                self.info.record_connection_span(
                    &body.implementation.name,
                    &connection.describe(),
                    *span,
                );
                body.implementation.add_connection(connection);
            }
        }
    }

    fn resolve_endpoint(
        &mut self,
        e: &EndpointExpr,
        body: &BBodyBuilder<'_>,
    ) -> Option<EndpointRef> {
        let port_index = match &e.port_index {
            None => None,
            Some(expr) => match beval_expr(expr, self) {
                Ok(BValue::Int(i)) if i >= 0 => Some(i as usize),
                Ok(other) => {
                    self.error(
                        format!("port index must be a non-negative int, got {other}"),
                        expr.span(),
                    );
                    return None;
                }
                Err(err) => {
                    self.eval_error(err);
                    return None;
                }
            },
        };
        let apply_index = |name: &str, idx: Option<usize>| match idx {
            None => name.to_string(),
            Some(i) => format!("{name}_{i}"),
        };
        match &e.instance {
            None => Some(EndpointRef::own(apply_index(&e.port, port_index))),
            Some((inst_name, inst_index)) => {
                let inst_index = match inst_index {
                    None => None,
                    Some(expr) => match beval_expr(expr, self) {
                        Ok(BValue::Int(i)) if i >= 0 => Some(i as usize),
                        Ok(other) => {
                            self.error(
                                format!("instance index must be a non-negative int, got {other}"),
                                expr.span(),
                            );
                            return None;
                        }
                        Err(err) => {
                            self.eval_error(err);
                            return None;
                        }
                    },
                };
                let base = body.resolve_alias(inst_name);
                let resolved_inst = apply_index(&base, inst_index);
                if !body.instance_impls.contains_key(&resolved_inst) {
                    self.error(
                        format!("unknown instance `{resolved_inst}` in connection"),
                        e.span,
                    );
                    return None;
                }
                Some(EndpointRef::instance(
                    resolved_inst,
                    apply_index(&e.port, port_index),
                ))
            }
        }
    }
}

struct BBodyBuilder<'a> {
    implementation: &'a mut Implementation,
    instance_impls: HashMap<String, BImplValue>,
    aliases: Vec<HashMap<String, String>>,
    fresh: usize,
}

impl BBodyBuilder<'_> {
    fn resolve_alias(&self, name: &str) -> String {
        for frame in self.aliases.iter().rev() {
            if let Some(actual) = frame.get(name) {
                return actual.clone();
            }
        }
        name.to_string()
    }
}

impl BResolver for BElaborator {
    fn lookup(&mut self, name: &str, span: Span) -> Result<BValue, EvalError> {
        if let Some(v) = self.locals.get(name) {
            return Ok(v.clone());
        }
        match self.find_decl(self.current_package, name, span) {
            Some(id) => self.global_value(id, span),
            None => Err(EvalError::new(format!("undefined name `{name}`"), span)),
        }
    }
}

fn bdecl_span(decl: &Decl) -> Option<Span> {
    match decl {
        Decl::Const(c) => Some(c.span),
        Decl::TypeAlias { span, .. }
        | Decl::Group { span, .. }
        | Decl::Union { span, .. }
        | Decl::Assert { span, .. } => Some(*span),
        Decl::Streamlet(s) => Some(s.span),
        Decl::Impl(i) => Some(i.span),
    }
}

fn bvar_kind_matches(kind: &VarKind, value: &BValue) -> bool {
    match (kind, value) {
        (VarKind::Int, BValue::Int(_)) => true,
        (VarKind::Float, BValue::Float(_) | BValue::Int(_)) => true,
        (VarKind::Str, BValue::Str(_)) => true,
        (VarKind::Bool, BValue::Bool(_)) => true,
        (VarKind::Clock, BValue::Clock(_)) => true,
        (VarKind::Array(inner), BValue::Array(items)) => {
            items.iter().all(|v| bvar_kind_matches(inner, v))
        }
        _ => false,
    }
}

fn bvar_kind_name(kind: &VarKind) -> String {
    match kind {
        VarKind::Int => "int".into(),
        VarKind::Float => "float".into(),
        VarKind::Str => "string".into(),
        VarKind::Bool => "bool".into(),
        VarKind::Clock => "clockdomain".into(),
        VarKind::Array(inner) => format!("[{}]", bvar_kind_name(inner)),
    }
}

fn btemplate_kind_name(kind: &TemplateParamKind) -> String {
    match kind {
        TemplateParamKind::Int => "int".into(),
        TemplateParamKind::Float => "float".into(),
        TemplateParamKind::Str => "string".into(),
        TemplateParamKind::Bool => "bool".into(),
        TemplateParamKind::Clock => "clockdomain".into(),
        TemplateParamKind::Type => "type".into(),
        TemplateParamKind::ImplOf(s) => format!("impl of {s}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::has_errors;
    use crate::parser::parse_package;

    #[test]
    fn baseline_elaborates_the_wire_design() {
        let src = r#"
package demo;
type Byte = Stream(Bit(8));
streamlet wire_s { i : Byte in, o : Byte out, }
impl wire_i of wire_s { i => o, }
"#;
        let (pkg, diags) = parse_package(0, src);
        assert!(!has_errors(&diags));
        let (project, _, diags) = elaborate_baseline(vec![pkg.unwrap()], "test");
        assert!(!has_errors(&diags), "{diags:?}");
        assert!(project.implementation("wire_i").is_some());
        assert_eq!(project.validate(), Ok(()));
    }
}
