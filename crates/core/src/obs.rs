//! Publication of a finished compile's statistics into the
//! [`tydi_obs::metrics`] registry.
//!
//! Historically every statistic had its own struct and its own
//! printer (`StageTimings`, `TypeStoreStats`, `ParallelStats`, the
//! per-stage cache counts); this module folds them all into one named
//! snapshot so `tydic --timings`, `--timings-json` and the bench
//! harness read identical values from identical names.
//!
//! Names are dotted and stable:
//!
//! | prefix      | contents                                           |
//! |-------------|----------------------------------------------------|
//! | `timings.`  | per-stage self times and the wall window, in ms    |
//! | `cache.`    | artifact-cache reuse (per stage and elab lookups)  |
//! | `types.`    | type-store hash-consing and expansion-memo counts  |
//! | `par.`      | parallel-elaboration fanout                        |
//!
//! Publication uses *set* semantics and clears its prefixes first, so
//! a long-lived process (e.g. `tydic check --watch`) always reports
//! the latest run, not an accumulation — except `cache.elab.lookup_*`,
//! which [`crate::compile_with_cache`] counts incrementally as
//! lookups actually happen.

use crate::pipeline::CompileOutput;
use crate::session::Stage;
use std::time::Duration;
use tydi_obs::metrics;

fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// Publishes one compile's timings, cache reuse, type-store and
/// parallelism statistics, replacing any previous run's values.
pub fn publish_compile_metrics(output: &CompileOutput) {
    metrics::clear_prefix("timings.");
    metrics::clear_prefix("cache.stage.");
    metrics::clear_prefix("types.");
    metrics::clear_prefix("par.");

    let t = output.timings;
    metrics::gauge_set("timings.parse_ms", ms(t.parse));
    metrics::gauge_set("timings.elaborate_ms", ms(t.elaborate));
    metrics::gauge_set("timings.sugar_ms", ms(t.sugar));
    metrics::gauge_set("timings.drc_ms", ms(t.drc));
    metrics::gauge_set("timings.analyze_ms", ms(t.analyze));
    metrics::gauge_set("timings.total_self_ms", ms(t.total()));
    metrics::gauge_set("timings.wall_ms", ms(t.wall));

    for stage in [Stage::Parse, Stage::Elaborate, Stage::Sugar, Stage::Drc] {
        let (mut reused, mut recomputed) = (0u64, 0u64);
        for record in &output.stage_records {
            if record.stage == stage {
                reused += record.reused as u64;
                recomputed += record.recomputed as u64;
            }
        }
        metrics::counter_set(&format!("cache.stage.{}.reused", stage.name()), reused);
        metrics::counter_set(
            &format!("cache.stage.{}.recomputed", stage.name()),
            recomputed,
        );
    }

    let ts = output.elab_info.type_store;
    metrics::counter_set("types.distinct", ts.distinct_types as u64);
    metrics::counter_set("types.intern_hits", ts.intern_hits as u64);
    metrics::gauge_set("types.intern_hit_rate_pct", ts.hit_rate());
    metrics::counter_set("types.shard_contention", ts.shard_contention as u64);
    let expansions = tydi_spec::expansion_cache_stats();
    metrics::counter_set("types.expansions_reused", expansions.hits);
    metrics::counter_set("types.expansions_computed", expansions.misses);

    let par = &output.elab_info.parallel;
    metrics::counter_set("par.threads", par.threads as u64);
    let levels = par
        .level_packages
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join("+");
    metrics::text_set("par.level_packages", levels);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};

    const WIRE: &str = r#"
package demo;
type Byte = Stream(Bit(8));
streamlet wire_s { i : Byte in, o : Byte out, }
impl wire_i of wire_s { i => o, }
"#;

    #[test]
    fn publish_fills_every_namespace_and_replaces_prior_runs() {
        let output = compile(&[("wire.td", WIRE)], &CompileOptions::default()).unwrap();
        metrics::counter_set("types.distinct", 999_999);
        publish_compile_metrics(&output);
        let snap = metrics::snapshot();
        assert!(snap.gauge("timings.wall_ms").unwrap() > 0.0);
        assert!(snap.gauge("timings.parse_ms").is_some());
        assert_eq!(snap.counter("cache.stage.parse.recomputed"), Some(1));
        assert_eq!(snap.counter("cache.stage.parse.reused"), Some(0));
        // The stale value was cleared, not merely overwritten by name.
        assert_ne!(snap.counter("types.distinct"), Some(999_999));
        assert_eq!(
            snap.counter("par.threads"),
            Some(output.elab_info.parallel.threads as u64)
        );
        assert_eq!(snap.text("par.level_packages"), Some("1"));
    }
}
