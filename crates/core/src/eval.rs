//! Expression evaluation: the Tydi-lang math system (paper §IV-A).
//!
//! Evaluation is pure; name lookup is delegated to a [`Resolver`] so
//! that the elaborator can resolve globals lazily (with memoisation
//! and cycle detection) while local frames stay simple.

use crate::ast::{BinOp, Expr, UnaryOp};
use crate::span::Span;
use crate::value::Value;
use tydi_spec::ClockDomain;

/// An evaluation failure, pointing at the offending expression.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl EvalError {
    /// Creates an error.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        EvalError {
            message: message.into(),
            span,
        }
    }
}

/// Name resolution callback used by [`eval_expr`].
pub trait Resolver {
    /// Resolves `name` to a value or fails with a diagnostic message.
    fn lookup(&mut self, name: &str, span: Span) -> Result<Value, EvalError>;
}

/// A resolver over a plain closure, handy in tests.
impl<F> Resolver for F
where
    F: FnMut(&str, Span) -> Result<Value, EvalError>,
{
    fn lookup(&mut self, name: &str, span: Span) -> Result<Value, EvalError> {
        self(name, span)
    }
}

/// Evaluates an expression.
pub fn eval_expr(expr: &Expr, resolver: &mut dyn Resolver) -> Result<Value, EvalError> {
    match expr {
        Expr::Int(v, _) => Ok(Value::Int(*v)),
        Expr::Float(v, _) => Ok(Value::Float(*v)),
        Expr::Str(s, _) => Ok(Value::Str(s.clone())),
        Expr::Bool(b, _) => Ok(Value::Bool(*b)),
        Expr::Clock(name, _) => Ok(Value::Clock(ClockDomain::new(name))),
        Expr::Ident(name, span) => resolver.lookup(name, *span),
        Expr::Array(items, _) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(eval_expr(item, resolver)?);
            }
            Ok(Value::Array(out))
        }
        Expr::Range {
            start,
            end,
            step,
            span,
        } => {
            let start_v = expect_int(eval_expr(start, resolver)?, start.span())?;
            let end_v = expect_int(eval_expr(end, resolver)?, end.span())?;
            let step_v = match step {
                Some(s) => expect_int(eval_expr(s, resolver)?, s.span())?,
                None => 1,
            };
            if step_v == 0 {
                return Err(EvalError::new("range step must be non-zero", *span));
            }
            let mut out = Vec::new();
            let mut v = start_v;
            if step_v > 0 {
                while v < end_v {
                    out.push(Value::Int(v));
                    v += step_v;
                }
            } else {
                while v > end_v {
                    out.push(Value::Int(v));
                    v += step_v;
                }
            }
            if out.len() > 1_000_000 {
                return Err(EvalError::new(
                    "range produces more than 1e6 elements",
                    *span,
                ));
            }
            Ok(Value::Array(out))
        }
        Expr::Index { base, index, span } => {
            let base_v = eval_expr(base, resolver)?;
            let index_v = expect_int(eval_expr(index, resolver)?, index.span())?;
            match base_v {
                Value::Array(items) => {
                    if index_v < 0 || index_v as usize >= items.len() {
                        Err(EvalError::new(
                            format!(
                                "index {index_v} out of bounds for array of length {}",
                                items.len()
                            ),
                            *span,
                        ))
                    } else {
                        Ok(items[index_v as usize].clone())
                    }
                }
                other => Err(EvalError::new(
                    format!("cannot index into a {}", other.kind_name()),
                    *span,
                )),
            }
        }
        Expr::Unary { op, operand, span } => {
            let v = eval_expr(operand, resolver)?;
            match (op, v) {
                (UnaryOp::Neg, Value::Int(v)) => Ok(Value::Int(-v)),
                (UnaryOp::Neg, Value::Float(v)) => Ok(Value::Float(-v)),
                (UnaryOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                (op, v) => Err(EvalError::new(
                    format!(
                        "unary `{}` is not defined for {}",
                        match op {
                            UnaryOp::Neg => "-",
                            UnaryOp::Not => "!",
                        },
                        v.kind_name()
                    ),
                    *span,
                )),
            }
        }
        Expr::Binary { op, lhs, rhs, span } => {
            // Short-circuit booleans first.
            if matches!(op, BinOp::And | BinOp::Or) {
                let l = expect_bool(eval_expr(lhs, resolver)?, lhs.span())?;
                return match (op, l) {
                    (BinOp::And, false) => Ok(Value::Bool(false)),
                    (BinOp::Or, true) => Ok(Value::Bool(true)),
                    _ => {
                        let r = expect_bool(eval_expr(rhs, resolver)?, rhs.span())?;
                        Ok(Value::Bool(r))
                    }
                };
            }
            let l = eval_expr(lhs, resolver)?;
            let r = eval_expr(rhs, resolver)?;
            binary(*op, l, r, *span)
        }
        Expr::Call { name, args, span } => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval_expr(a, resolver)?);
            }
            call_builtin(name, &values, *span)
        }
    }
}

fn expect_int(v: Value, span: Span) -> Result<i64, EvalError> {
    v.as_int()
        .ok_or_else(|| EvalError::new(format!("expected int, found {}", v.kind_name()), span))
}

fn expect_bool(v: Value, span: Span) -> Result<bool, EvalError> {
    v.as_bool()
        .ok_or_else(|| EvalError::new(format!("expected bool, found {}", v.kind_name()), span))
}

fn binary(op: BinOp, l: Value, r: Value, span: Span) -> Result<Value, EvalError> {
    use BinOp::*;
    // String concatenation: `"a" + x`.
    if op == Add {
        if let Value::Str(a) = &l {
            return Ok(Value::Str(format!("{a}{r}")));
        }
        if let Value::Str(b) = &r {
            return Ok(Value::Str(format!("{l}{b}")));
        }
    }
    // Equality works across all matching kinds (numeric kinds unify).
    if matches!(op, Eq | Ne) {
        let equal = match (&l, &r) {
            (a, b) if a.is_numeric() && b.is_numeric() => {
                a.as_f64().unwrap() == b.as_f64().unwrap()
            }
            (a, b) => a == b,
        };
        return Ok(Value::Bool(if op == Eq { equal } else { !equal }));
    }
    // Ordering on numbers and strings.
    if matches!(op, Lt | Le | Gt | Ge) {
        let ordering = match (&l, &r) {
            (a, b) if a.is_numeric() && b.is_numeric() => {
                a.as_f64().unwrap().partial_cmp(&b.as_f64().unwrap())
            }
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        };
        let Some(ordering) = ordering else {
            return Err(EvalError::new(
                format!("cannot order {} and {}", l.kind_name(), r.kind_name()),
                span,
            ));
        };
        use std::cmp::Ordering as O;
        let result = match op {
            Lt => ordering == O::Less,
            Le => ordering != O::Greater,
            Gt => ordering == O::Greater,
            Ge => ordering != O::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(result));
    }
    // Arithmetic.
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            match op {
                Add => checked(a.checked_add(b), span),
                Sub => checked(a.checked_sub(b), span),
                Mul => checked(a.checked_mul(b), span),
                Div => {
                    if b == 0 {
                        Err(EvalError::new("division by zero", span))
                    } else {
                        Ok(Value::Int(a / b))
                    }
                }
                Rem => {
                    if b == 0 {
                        Err(EvalError::new("remainder by zero", span))
                    } else {
                        Ok(Value::Int(a % b))
                    }
                }
                Pow => {
                    if b >= 0 {
                        match u32::try_from(b).ok().and_then(|e| a.checked_pow(e)) {
                            Some(v) => Ok(Value::Int(v)),
                            None => Err(EvalError::new("integer power overflow", span)),
                        }
                    } else {
                        Ok(Value::Float((a as f64).powi(b as i32)))
                    }
                }
                _ => unreachable!(),
            }
        }
        (a, b) if a.is_numeric() && b.is_numeric() => {
            let a = a.as_f64().unwrap();
            let b = b.as_f64().unwrap();
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(EvalError::new("division by zero", span));
                    }
                    a / b
                }
                Rem => {
                    if b == 0.0 {
                        return Err(EvalError::new("remainder by zero", span));
                    }
                    a % b
                }
                Pow => a.powf(b),
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
        _ => Err(EvalError::new(
            format!(
                "operator is not defined for {} and {}",
                l.kind_name(),
                r.kind_name()
            ),
            span,
        )),
    }
}

fn checked(v: Option<i64>, span: Span) -> Result<Value, EvalError> {
    v.map(Value::Int)
        .ok_or_else(|| EvalError::new("integer overflow", span))
}

/// The builtin function table of the math system.
fn call_builtin(name: &str, args: &[Value], span: Span) -> Result<Value, EvalError> {
    let arity = |n: usize| -> Result<(), EvalError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EvalError::new(
                format!("`{name}` expects {n} argument(s), got {}", args.len()),
                span,
            ))
        }
    };
    let num = |i: usize| -> Result<f64, EvalError> {
        args[i].as_f64().ok_or_else(|| {
            EvalError::new(
                format!(
                    "`{name}` expects a numeric argument, got {}",
                    args[i].kind_name()
                ),
                span,
            )
        })
    };
    match name {
        "ceil" => {
            arity(1)?;
            Ok(Value::Int(num(0)?.ceil() as i64))
        }
        "floor" => {
            arity(1)?;
            Ok(Value::Int(num(0)?.floor() as i64))
        }
        "round" => {
            arity(1)?;
            Ok(Value::Int(num(0)?.round() as i64))
        }
        "abs" => {
            arity(1)?;
            match &args[0] {
                Value::Int(v) => Ok(Value::Int(v.abs())),
                Value::Float(v) => Ok(Value::Float(v.abs())),
                other => Err(EvalError::new(
                    format!("`abs` expects a number, got {}", other.kind_name()),
                    span,
                )),
            }
        }
        "log2" => {
            arity(1)?;
            let v = num(0)?;
            if v <= 0.0 {
                return Err(EvalError::new("log2 of a non-positive number", span));
            }
            Ok(Value::Float(v.log2()))
        }
        "log10" => {
            arity(1)?;
            let v = num(0)?;
            if v <= 0.0 {
                return Err(EvalError::new("log10 of a non-positive number", span));
            }
            Ok(Value::Float(v.log10()))
        }
        "ln" => {
            arity(1)?;
            let v = num(0)?;
            if v <= 0.0 {
                return Err(EvalError::new("ln of a non-positive number", span));
            }
            Ok(Value::Float(v.ln()))
        }
        "sqrt" => {
            arity(1)?;
            let v = num(0)?;
            if v < 0.0 {
                return Err(EvalError::new("sqrt of a negative number", span));
            }
            Ok(Value::Float(v.sqrt()))
        }
        "pow" => {
            arity(2)?;
            Ok(Value::Float(num(0)?.powf(num(1)?)))
        }
        "min" | "max" => {
            if args.is_empty() {
                return Err(EvalError::new(format!("`{name}` needs arguments"), span));
            }
            let mut best = num(0)?;
            let mut all_int = matches!(args[0], Value::Int(_));
            for (i, a) in args.iter().enumerate().skip(1) {
                let v = num(i)?;
                all_int &= matches!(a, Value::Int(_));
                best = if name == "min" {
                    best.min(v)
                } else {
                    best.max(v)
                };
            }
            if all_int {
                Ok(Value::Int(best as i64))
            } else {
                Ok(Value::Float(best))
            }
        }
        "len" => {
            arity(1)?;
            match &args[0] {
                Value::Array(items) => Ok(Value::Int(items.len() as i64)),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(EvalError::new(
                    format!(
                        "`len` expects an array or string, got {}",
                        other.kind_name()
                    ),
                    span,
                )),
            }
        }
        "int" => {
            arity(1)?;
            Ok(Value::Int(num(0)? as i64))
        }
        "float" => {
            arity(1)?;
            Ok(Value::Float(num(0)?))
        }
        "str" => {
            arity(1)?;
            Ok(Value::Str(args[0].to_string()))
        }
        other => Err(EvalError::new(
            format!("unknown builtin function `{other}`"),
            span,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_package;

    /// Evaluates the initializer of `const x = <expr>;`.
    fn eval_str(expr_text: &str) -> Result<Value, EvalError> {
        let src = format!("package t;\nconst x = {expr_text};");
        let (pkg, diags) = parse_package(0, &src);
        assert!(diags.is_empty(), "parse diags for `{expr_text}`: {diags:?}");
        let pkg = pkg.unwrap();
        let crate::ast::Decl::Const(c) = &pkg.decls[0] else {
            panic!()
        };
        let mut resolver = |name: &str, span: Span| match name {
            "n" => Ok(Value::Int(8)),
            "f" => Ok(Value::Float(0.5)),
            "names" => Ok(Value::Array(vec![
                Value::Str("a".into()),
                Value::Str("b".into()),
            ])),
            other => Err(EvalError::new(format!("undefined `{other}`"), span)),
        };
        eval_expr(&c.value, &mut resolver)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval_str("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval_str("7 % 2").unwrap(), Value::Int(1));
        assert_eq!(eval_str("2 ^ 10").unwrap(), Value::Int(1024));
        assert_eq!(eval_str("1.5 + 1").unwrap(), Value::Float(2.5));
        assert_eq!(eval_str("-n").unwrap(), Value::Int(-8));
    }

    #[test]
    fn paper_decimal_width() {
        // Bit width of SQL Decimal(15): ceil(log2(10^15 - 1)) = 50.
        assert_eq!(eval_str("ceil(log2(10 ^ 15 - 1))").unwrap(), Value::Int(50));
    }

    #[test]
    fn comparisons_and_booleans() {
        assert_eq!(eval_str("1 < 2").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("2 <= 2").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("1 == 1.0").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("\"a\" < \"b\"").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("true && false").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("true || false").unwrap(), Value::Bool(true));
        assert_eq!(eval_str("!(1 > 2)").unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        // `undefined` would fail if evaluated.
        assert_eq!(eval_str("false && undefined").unwrap(), Value::Bool(false));
        assert_eq!(eval_str("true || undefined").unwrap(), Value::Bool(true));
    }

    #[test]
    fn string_concat() {
        assert_eq!(eval_str("\"w=\" + 8").unwrap(), Value::Str("w=8".into()));
        assert_eq!(eval_str("\"a\" + \"b\"").unwrap(), Value::Str("ab".into()));
    }

    #[test]
    fn arrays_ranges_indexing() {
        assert_eq!(
            eval_str("[1, 2, 3]").unwrap(),
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            eval_str("(0..4)").unwrap(),
            Value::Array((0..4).map(Value::Int).collect())
        );
        assert_eq!(
            eval_str("(0..10 step 3)").unwrap(),
            Value::Array(vec![
                Value::Int(0),
                Value::Int(3),
                Value::Int(6),
                Value::Int(9)
            ])
        );
        assert_eq!(eval_str("[5, 6, 7][1]").unwrap(), Value::Int(6));
        assert_eq!(eval_str("names[0]").unwrap(), Value::Str("a".into()));
        assert_eq!(eval_str("len(names)").unwrap(), Value::Int(2));
        assert_eq!(eval_str("len(\"abc\")").unwrap(), Value::Int(3));
    }

    #[test]
    fn builtin_functions() {
        assert_eq!(eval_str("ceil(2.1)").unwrap(), Value::Int(3));
        assert_eq!(eval_str("floor(2.9)").unwrap(), Value::Int(2));
        assert_eq!(eval_str("round(2.5)").unwrap(), Value::Int(3));
        assert_eq!(eval_str("abs(-4)").unwrap(), Value::Int(4));
        assert_eq!(eval_str("min(3, 1, 2)").unwrap(), Value::Int(1));
        assert_eq!(eval_str("max(3, 1, 2)").unwrap(), Value::Int(3));
        assert_eq!(eval_str("min(1, 0.5)").unwrap(), Value::Float(0.5));
        assert_eq!(eval_str("int(2.9)").unwrap(), Value::Int(2));
        assert_eq!(eval_str("str(42)").unwrap(), Value::Str("42".into()));
    }

    #[test]
    fn errors() {
        assert!(eval_str("1 / 0").is_err());
        assert!(eval_str("1 % 0").is_err());
        assert!(eval_str("log2(0)").is_err());
        assert!(eval_str("[1][5]").is_err());
        assert!(eval_str("[1][-1]").is_err());
        assert!(eval_str("5[0]").is_err());
        assert!(eval_str("true + 1").is_err());
        assert!(eval_str("!3").is_err());
        assert!(eval_str("nosuchfn(1)").is_err());
        assert!(eval_str("undefined_var").is_err());
        assert!(eval_str("(0..4 step 0)").is_err());
        assert!(eval_str("2 ^ 200").is_err()); // overflow
        assert!(eval_str("9223372036854775807 + 1").is_err());
    }

    #[test]
    fn reverse_range() {
        assert_eq!(
            eval_str("(3..0 step -1)").unwrap(),
            Value::Array(vec![Value::Int(3), Value::Int(2), Value::Int(1)])
        );
    }

    #[test]
    fn clock_values() {
        assert_eq!(
            eval_str("clockdomain(\"mem\")").unwrap(),
            Value::Clock(tydi_spec::ClockDomain::new("mem"))
        );
    }
}
