//! The compilation session driver.
//!
//! A [`Session`] owns everything that outlives a single pipeline
//! stage — options, registered source files, accumulated diagnostics
//! and per-stage records — and exposes the paper's Fig. 3 stages as
//! composable steps:
//!
//! ```text
//! let mut session = Session::new(options);
//! let packages            = session.parse(sources)?;     // parallel per file
//! let (project, elab)     = session.elaborate(packages)?;
//! let report              = session.sugar(&mut project);
//! session.drc(&project, &elab)?;                         // parallel per impl
//! let output              = session.finish(project, report, elab);
//! ```
//!
//! Every stage runs under [`Session::run_stage`], which records its
//! wall-clock duration and how many diagnostics it emitted, so tools
//! report stage behaviour uniformly instead of each stage hand-rolling
//! its own timing. [`compile`](crate::compile) is a thin wrapper over
//! this driver and remains the one-call entry point.
//!
//! Parsing fans out per file and the DRC fans out per implementation
//! (via rayon, falling back to sequential execution on single-core
//! machines); diagnostics order stays deterministic because per-unit
//! results are spliced back in input order.

use crate::ast::Package;
use crate::cache::{ArtifactCache, ParseArtifact, ParseKey};
use crate::diagnostics::{has_errors, Diagnostic};
use crate::fingerprint::{ast_fingerprint, source_fingerprint, Fingerprint};
use crate::instantiate::{elaborate, ElabInfo};
use crate::parser::parse_package;
use crate::pipeline::{CompileFailure, CompileOptions, CompileOutput, StageTimings};
use crate::span::{SourceFile, Span};
use crate::sugar::{apply_sugaring_with, SugarReport};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tydi_ir::{IrError, Project, ProjectIndex};

/// The pipeline stages of paper Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Lexing + parsing (per file, parallel).
    Parse,
    /// Evaluation, template instantiation, generative expansion.
    Elaborate,
    /// Duplicator/voider insertion.
    Sugar,
    /// Design-rule checks (per implementation, parallel).
    Drc,
    /// Static throughput/backpressure analysis (`tydic analyze`),
    /// recorded by tools running the `tydi-analyze` pass on top of a
    /// finished compile.
    Analyze,
}

impl Stage {
    /// The stage's diagnostic label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Elaborate => "elaborate",
            Stage::Sugar => "sugar",
            Stage::Drc => "drc",
            Stage::Analyze => "analyze",
        }
    }
}

/// What one stage execution did.
#[derive(Debug, Clone, Copy)]
pub struct StageRecord {
    /// Which stage ran.
    pub stage: Stage,
    /// Wall-clock *self* time of this stage execution (zero when the
    /// whole stage was served from the artifact cache).
    pub duration: Duration,
    /// Diagnostics emitted during the stage.
    pub diagnostics: usize,
    /// Work units served from the artifact cache (files for parse,
    /// whole-project artifacts for the later stages).
    pub reused: usize,
    /// Work units actually recomputed.
    pub recomputed: usize,
}

/// One parsed input file in the incremental pipeline: its cache key
/// plus the fingerprint of its canonical printed AST. The ordered AST
/// fingerprints of all units form the elaboration key.
#[derive(Debug, Clone, Copy)]
pub struct ParsedUnit {
    /// Parse-cache key (file slot + source fingerprint).
    pub key: ParseKey,
    /// AST fingerprint (comment/whitespace-insensitive).
    pub ast: Fingerprint,
}

/// A compilation session: drives the staged pipeline and accumulates
/// files, diagnostics and stage records across stages.
#[derive(Debug)]
pub struct Session {
    options: CompileOptions,
    files: Vec<SourceFile>,
    diagnostics: Vec<Diagnostic>,
    records: Vec<StageRecord>,
    /// Cache work counts reported by the currently running stage
    /// closure, folded into its [`StageRecord`].
    pending_counts: Option<(usize, usize)>,
    /// Start of the first stage and end of the latest stage: the
    /// pipeline's wall-clock window, reported separately from the
    /// per-stage self times (see [`StageTimings::wall`]).
    first_stage_start: Option<Instant>,
    last_stage_end: Option<Instant>,
    /// The shared name-resolution index, built right after
    /// elaboration and kept current by the sugaring pass, so the
    /// sugar, DRC and lowering stages never rebuild their own maps.
    index: Option<ProjectIndex>,
}

impl Session {
    /// Creates a session with the given options.
    pub fn new(options: CompileOptions) -> Self {
        Session {
            options,
            files: Vec::new(),
            diagnostics: Vec::new(),
            records: Vec::new(),
            pending_counts: None,
            first_stage_start: None,
            last_stage_end: None,
            index: None,
        }
    }

    /// The session's options.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// All diagnostics accumulated so far.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// All source files registered so far.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// Per-stage records, in execution order.
    pub fn stage_records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Aggregated per-stage self times (summed when a stage ran
    /// twice), plus the pipeline's wall-clock window. The per-stage
    /// fields are *self* times: their sum can exceed the wall time
    /// when stage work overlaps on the thread pool, so reports must
    /// never present the sum as elapsed time (that was the historic
    /// `--timings` double-counting bug).
    pub fn timings(&self) -> StageTimings {
        let mut t = StageTimings::default();
        for record in &self.records {
            match record.stage {
                Stage::Parse => t.parse += record.duration,
                Stage::Elaborate => t.elaborate += record.duration,
                Stage::Sugar => t.sugar += record.duration,
                Stage::Drc => t.drc += record.duration,
                Stage::Analyze => t.analyze += record.duration,
            }
        }
        t.wall = match (self.first_stage_start, self.last_stage_end) {
            (Some(start), Some(end)) => end.saturating_duration_since(start),
            _ => Duration::ZERO,
        };
        t
    }

    /// Reports how much of the current stage's work was served from
    /// the artifact cache; called by stage closures, folded into the
    /// stage's [`StageRecord`].
    fn set_stage_counts(&mut self, reused: usize, recomputed: usize) {
        self.pending_counts = Some((reused, recomputed));
    }

    /// Runs `f` as a named stage, recording duration and emitted
    /// diagnostics.
    fn run_stage<T>(&mut self, stage: Stage, f: impl FnOnce(&mut Self) -> T) -> T {
        let _span = tydi_obs::trace::span_named("core", || format!("stage:{}", stage.name()));
        let diags_before = self.diagnostics.len();
        let t0 = Instant::now();
        self.first_stage_start.get_or_insert(t0);
        let out = f(self);
        let (reused, recomputed) = self.pending_counts.take().unwrap_or((0, 1));
        self.last_stage_end = Some(Instant::now());
        self.records.push(StageRecord {
            stage,
            duration: t0.elapsed(),
            diagnostics: self.diagnostics.len() - diags_before,
            reused,
            recomputed,
        });
        out
    }

    /// Records a stage as fully served from the artifact cache,
    /// replaying the diagnostics it originally emitted.
    pub(crate) fn replay_stage(&mut self, stage: Stage, diagnostics: Vec<Diagnostic>) {
        tydi_obs::trace::instant_named("core", || format!("replay:{}", stage.name()));
        let now = Instant::now();
        self.first_stage_start.get_or_insert(now);
        self.last_stage_end = Some(now);
        self.records.push(StageRecord {
            stage,
            duration: Duration::ZERO,
            diagnostics: diagnostics.len(),
            reused: 1,
            recomputed: 0,
        });
        self.diagnostics.extend(diagnostics);
    }

    /// The failure value for the current diagnostics.
    fn fail(&self) -> Box<CompileFailure> {
        Box::new(CompileFailure {
            diagnostics: self.diagnostics.clone(),
            files: self.files.clone(),
        })
    }

    /// `Err` when any accumulated diagnostic is an error.
    fn bail_on_errors(&self) -> Result<(), Box<CompileFailure>> {
        if has_errors(&self.diagnostics) {
            Err(self.fail())
        } else {
            Ok(())
        }
    }

    /// Stage 1: parses `(file name, text)` pairs into packages, one
    /// file per rayon task.
    pub fn parse(&mut self, sources: &[(&str, &str)]) -> Result<Vec<Package>, Box<CompileFailure>> {
        let packages = self.run_stage(Stage::Parse, |session| {
            // File ids continue across parse() calls: spans index into
            // the session-wide file table.
            let base = session.files.len();
            session.files.extend(
                sources
                    .iter()
                    .map(|(name, text)| SourceFile::new(*name, *text)),
            );
            // Files are independent: parse in parallel, then splice
            // results back in input order so diagnostics stay stable.
            let indexed: Vec<(usize, &str, &str)> = sources
                .iter()
                .enumerate()
                .map(|(index, (name, text))| (base + index, *name, *text))
                .collect();
            let parsed: Vec<(Option<Package>, Vec<Diagnostic>)> = indexed
                .into_par_iter()
                .map(|(index, name, text)| {
                    let _span = tydi_obs::trace::span_named("core", || format!("parse:{name}"));
                    parse_package(index, text)
                })
                .collect();
            let mut packages = Vec::new();
            for (package, mut file_diags) in parsed {
                session.diagnostics.append(&mut file_diags);
                if let Some(p) = package {
                    packages.push(p);
                }
            }
            session.set_stage_counts(0, sources.len());
            packages
        });
        self.bail_on_errors()?;
        Ok(packages)
    }

    /// Stage 1, incremental: parses `(file name, text)` pairs through
    /// the artifact cache. Unchanged files (same name, same bytes,
    /// same slot in the file table) replay their memoized diagnostics
    /// without re-parsing; changed files parse in parallel and refresh
    /// their cache entries. Returns one [`ParsedUnit`] per file — the
    /// AST fingerprints feed the elaboration key, and the packages
    /// themselves stay in the cache until
    /// [`Session::materialize_packages`] proves they are needed.
    pub fn parse_incremental(
        &mut self,
        sources: &[(&str, &str)],
        cache: &mut ArtifactCache,
    ) -> Result<Vec<ParsedUnit>, Box<CompileFailure>> {
        let units = self.run_stage(Stage::Parse, |session| {
            let base = session.files.len();
            session.files.extend(
                sources
                    .iter()
                    .map(|(name, text)| SourceFile::new(*name, *text)),
            );
            let mut units: Vec<Option<ParsedUnit>> = vec![None; sources.len()];
            // Diagnostics are staged per file and appended in input
            // order below, so warm and cold compiles report in the
            // same order regardless of which files hit the cache.
            let mut diags_by_file: Vec<Vec<Diagnostic>> = vec![Vec::new(); sources.len()];
            let mut missing: Vec<(usize, &str)> = Vec::new();
            let mut reused = 0usize;
            for (index, (name, text)) in sources.iter().enumerate() {
                let key = ParseKey {
                    slot: base + index,
                    source: source_fingerprint(name, text),
                };
                match cache.lookup_parse(key) {
                    Some(artifact) => {
                        tydi_obs::trace::instant_named("core", || {
                            format!("parse-cache-hit:{name}")
                        });
                        reused += 1;
                        diags_by_file[index] = artifact.diagnostics.clone();
                        units[index] = Some(ParsedUnit {
                            key,
                            ast: artifact.ast,
                        });
                    }
                    None => missing.push((index, *text)),
                }
            }
            // Changed files are independent: parse in parallel.
            let parsed: Vec<(usize, Option<Package>, Vec<Diagnostic>)> = missing
                .par_iter()
                .map(|&(index, text)| {
                    let _span = tydi_obs::trace::span_named("core", || {
                        format!("parse:{}", sources[index].0)
                    });
                    let (package, diags) = parse_package(base + index, text);
                    (index, package, diags)
                })
                .collect();
            let recomputed = parsed.len();
            for (index, package, diags) in parsed {
                let (name, text) = sources[index];
                let key = ParseKey {
                    slot: base + index,
                    source: source_fingerprint(name, text),
                };
                diags_by_file[index] = diags.clone();
                match package {
                    Some(package) => {
                        let ast = ast_fingerprint(&package);
                        units[index] = Some(ParsedUnit { key, ast });
                        cache.store_parse(
                            key,
                            ParseArtifact {
                                package: Some(package),
                                ast,
                                diagnostics: diags,
                            },
                        );
                    }
                    None => {
                        // Total parse failure (no tree at all): the
                        // compile bails below and nothing is cached,
                        // so the error re-reports on every attempt.
                        units[index] = Some(ParsedUnit {
                            key,
                            ast: Fingerprint(0),
                        });
                    }
                }
            }
            for diags in diags_by_file {
                session.diagnostics.extend(diags);
            }
            session.set_stage_counts(reused, recomputed);
            units.into_iter().flatten().collect::<Vec<_>>()
        });
        self.bail_on_errors()?;
        Ok(units)
    }

    /// Materializes the package ASTs behind [`ParsedUnit`]s, cloning
    /// memoized trees and re-parsing entries whose AST was dropped by
    /// disk persistence (recorded as additional parse work). Called
    /// only when the elaboration artifact missed.
    pub fn materialize_packages(
        &mut self,
        units: &[ParsedUnit],
        cache: &mut ArtifactCache,
    ) -> Result<Vec<Package>, Box<CompileFailure>> {
        let rebuilt: Vec<usize> = units
            .iter()
            .enumerate()
            .filter(|(_, unit)| {
                cache
                    .lookup_parse(unit.key)
                    .is_none_or(|artifact| artifact.package.is_none())
            })
            .map(|(index, _)| index)
            .collect();
        if !rebuilt.is_empty() {
            self.run_stage(Stage::Parse, |session| {
                let reparsed: Vec<(usize, Option<Package>)> = rebuilt
                    .par_iter()
                    .map(|&index| {
                        let slot = units[index].key.slot;
                        let _span = tydi_obs::trace::span_named("core", || {
                            format!("parse:{}", session.files[slot].name)
                        });
                        let text = session.files[slot].text.clone();
                        let (package, _diags) = parse_package(slot, &text);
                        (index, package)
                    })
                    .collect();
                for (index, package) in reparsed {
                    if let Some(package) = package {
                        cache.attach_package(units[index].key, package);
                    }
                }
                session.set_stage_counts(0, rebuilt.len());
            });
        }
        let mut packages = Vec::with_capacity(units.len());
        for unit in units {
            let package = cache
                .lookup_parse(unit.key)
                .and_then(|artifact| artifact.package.clone());
            match package {
                Some(package) => packages.push(package),
                None => {
                    // The persisted fingerprint no longer matches what
                    // the text parses to — a corrupt cache. Fail soft:
                    // report and let the caller wipe the cache.
                    self.diagnostics.push(Diagnostic::error(
                        "parse",
                        format!(
                            "artifact cache entry for `{}` could not be rebuilt; \
                             delete the cache directory and re-run",
                            self.files
                                .get(unit.key.slot)
                                .map(|f| f.name.to_string())
                                .unwrap_or_else(|| format!("file #{}", unit.key.slot))
                        ),
                        None,
                    ));
                    return Err(self.fail());
                }
            }
        }
        Ok(packages)
    }

    /// Stage 2: evaluates and expands packages into an IR project.
    pub fn elaborate(
        &mut self,
        packages: Vec<Package>,
    ) -> Result<(Project, ElabInfo), Box<CompileFailure>> {
        let (project, info) = self.run_stage(Stage::Elaborate, |session| {
            let (project, info, mut diags) = elaborate(packages, &session.options.project_name);
            session.diagnostics.append(&mut diags);
            // Build the shared name-resolution index once, right
            // here; sugar, DRC and lowering all reuse it.
            session.index = Some(ProjectIndex::build(&project));
            (project, info)
        });
        self.bail_on_errors()?;
        Ok((project, info))
    }

    /// The shared [`ProjectIndex`] built by the latest
    /// [`Session::elaborate`] call (kept current by
    /// [`Session::sugar`]), when one exists.
    pub fn project_index(&self) -> Option<&ProjectIndex> {
        self.index.as_ref()
    }

    /// Stage 3: duplicator/voider insertion. Skipped (recording an
    /// empty stage) when the options disable sugaring.
    pub fn sugar(&mut self, project: &mut Project) -> SugarReport {
        self.run_stage(Stage::Sugar, |session| {
            let report = if session.options.enable_sugaring {
                // Reuse the index built after elaboration; fall back
                // to a fresh build for callers driving stages with a
                // project this session did not elaborate.
                let mut index = session
                    .index
                    .take()
                    .filter(|index| index.covers(project))
                    .unwrap_or_else(|| ProjectIndex::build(project));
                let report = apply_sugaring_with(project, &mut index);
                session.index = Some(index);
                report
            } else {
                SugarReport::default()
            };
            if report.duplicators + report.voiders > 0 {
                session.diagnostics.push(Diagnostic::note(
                    Stage::Sugar.name(),
                    format!(
                        "inserted {} duplicator(s) and {} voider(s)",
                        report.duplicators, report.voiders
                    ),
                    None,
                ));
            }
            report
        })
    }

    /// Stage 4: design-rule checks, one implementation per rayon task
    /// (inside [`Project::validate`]). Violations become diagnostics
    /// carrying the source span of the offending connection.
    pub fn drc(&mut self, project: &Project, info: &ElabInfo) -> Result<(), Box<CompileFailure>> {
        self.run_stage(Stage::Drc, |session| {
            if !session.options.run_drc {
                return;
            }
            let result = match session.index.as_ref() {
                Some(index) if index.covers(project) => project.validate_with(index),
                _ => project.validate(),
            };
            if let Err(errors) = result {
                for error in errors {
                    let span = connection_span_of(&error, info);
                    session.diagnostics.push(Diagnostic::error(
                        Stage::Drc.name(),
                        error.to_string(),
                        span,
                    ));
                }
            }
        });
        self.bail_on_errors()
    }

    /// Consumes the session into a successful [`CompileOutput`].
    ///
    /// The output carries the shared [`ProjectIndex`] for the final
    /// project (rebuilt here only when no current one exists — e.g.
    /// when the whole middle of the pipeline replayed from the
    /// artifact cache).
    pub fn finish(
        mut self,
        project: Project,
        sugar_report: SugarReport,
        elab_info: ElabInfo,
    ) -> CompileOutput {
        let timings = self.timings();
        let index = match self.index.take() {
            Some(index) if index.covers(&project) => index,
            _ => ProjectIndex::build(&project),
        };
        CompileOutput {
            project,
            index: Arc::new(index),
            diagnostics: self.diagnostics,
            timings,
            files: self.files,
            sugar_report,
            elab_info,
            stage_records: self.records,
        }
    }
}

/// Best-effort mapping from an IR validation error back to the source
/// span of the offending connection.
fn connection_span_of(error: &IrError, info: &ElabInfo) -> Option<Span> {
    let (implementation, connection) = match error {
        IrError::TypeMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::StrictTypeMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::ComplexityMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::ClockDomainMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::DirectionError {
            implementation,
            connection,
            ..
        } => (implementation, connection),
        _ => return None,
    };
    info.connection_span(implementation, connection)
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &str = r#"
package demo;
type Byte = Stream(Bit(8));
streamlet wire_s { i : Byte in, o : Byte out, }
impl wire_i of wire_s { i => o, }
"#;

    #[test]
    fn stages_record_uniformly() {
        let mut session = Session::new(CompileOptions::default());
        let packages = session.parse(&[("wire.td", WIRE)]).unwrap();
        let (mut project, info) = session.elaborate(packages).unwrap();
        let report = session.sugar(&mut project);
        session.drc(&project, &info).unwrap();
        let stages: Vec<Stage> = session.stage_records().iter().map(|r| r.stage).collect();
        assert_eq!(
            stages,
            vec![Stage::Parse, Stage::Elaborate, Stage::Sugar, Stage::Drc]
        );
        assert!(session.timings().total() > Duration::ZERO);
        let output = session.finish(project, report, info);
        assert!(output.project.implementation("wire_i").is_some());
    }

    #[test]
    fn wall_time_is_reported_separately_from_stage_self_times() {
        let mut session = Session::new(CompileOptions::default());
        let packages = session.parse(&[("wire.td", WIRE)]).unwrap();
        // An artificial gap between stages: the wall window must cover
        // it while the per-stage self times must not.
        std::thread::sleep(Duration::from_millis(15));
        let (mut project, info) = session.elaborate(packages).unwrap();
        session.sugar(&mut project);
        session.drc(&project, &info).unwrap();
        let t = session.timings();
        assert!(
            t.wall >= Duration::from_millis(15),
            "wall covers gaps: {t:?}"
        );
        assert!(
            t.total() < Duration::from_millis(15) + t.parse + t.elaborate + t.sugar + t.drc,
            "self-time sum must exclude the inter-stage gap: {t:?}"
        );
        for stage in [t.parse, t.elaborate, t.sugar, t.drc] {
            assert!(
                stage <= t.wall,
                "a stage cannot exceed the wall window: {t:?}"
            );
        }
    }

    #[test]
    fn incremental_parse_reuses_unchanged_files() {
        use crate::cache::ArtifactCache;
        let mut cache = ArtifactCache::new();
        let mut first = Session::new(CompileOptions::default());
        first
            .parse_incremental(&[("wire.td", WIRE)], &mut cache)
            .unwrap();
        assert_eq!(first.stage_records()[0].recomputed, 1);
        assert_eq!(first.stage_records()[0].reused, 0);

        let mut second = Session::new(CompileOptions::default());
        let units = second
            .parse_incremental(&[("wire.td", WIRE)], &mut cache)
            .unwrap();
        assert_eq!(second.stage_records()[0].reused, 1);
        assert_eq!(second.stage_records()[0].recomputed, 0);
        let packages = second.materialize_packages(&units, &mut cache).unwrap();
        assert_eq!(packages.len(), 1);
        assert_eq!(packages[0].name, "demo");
    }

    #[test]
    fn parse_stage_counts_diagnostics() {
        let mut session = Session::new(CompileOptions::default());
        let err = session
            .parse(&[("bad.td", "package x;\nconst = ;")])
            .unwrap_err();
        assert!(err.diagnostics.iter().any(|d| d.stage == "parse"));
        let record = &session.stage_records()[0];
        assert_eq!(record.stage, Stage::Parse);
        assert!(record.diagnostics > 0);
    }

    #[test]
    fn many_files_parse_in_order() {
        // More files than the parallel threshold; package/diagnostic
        // order must match the sequential result.
        let sources: Vec<(String, String)> = (0..32)
            .map(|k| {
                (
                    format!("f{k}.td"),
                    format!(
                        "package p{k};\ntype B = Stream(Bit(8));\n\
                         streamlet s{k} {{ i : B in, o : B out, }}\n\
                         impl x{k} of s{k} {{ i => o, }}"
                    ),
                )
            })
            .collect();
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let mut session = Session::new(CompileOptions::default());
        let packages = session.parse(&refs).unwrap();
        assert_eq!(packages.len(), 32);
        for (k, package) in packages.iter().enumerate() {
            assert_eq!(package.name, format!("p{k}"));
        }
    }

    #[test]
    fn incremental_parse_calls_keep_file_ids_aligned() {
        // A second parse() call must attach diagnostics to the files
        // it registered, not to the first call's.
        let mut session = Session::new(CompileOptions::default());
        session.parse(&[("good.td", WIRE)]).unwrap();
        let err = session
            .parse(&[("bad.td", "package x;\nconst = ;")])
            .unwrap_err();
        let diag = err
            .diagnostics
            .iter()
            .find(|d| d.stage == "parse")
            .expect("parse error");
        let rendered = diag.render(&err.files);
        assert!(rendered.contains("bad.td"), "rendered: {rendered}");
        assert!(!rendered.contains("good.td"), "rendered: {rendered}");
    }

    #[test]
    fn drc_failure_keeps_session_usable_for_reporting() {
        let src = r#"
package demo;
type A = Stream(Bit(8));
type B = Stream(Bit(16));
streamlet s { i : A in, o : B out, }
impl x of s { i => o, }
"#;
        let mut session = Session::new(CompileOptions::default());
        let packages = session.parse(&[("t.td", src)]).unwrap();
        let (mut project, info) = session.elaborate(packages).unwrap();
        session.sugar(&mut project);
        let err = session.drc(&project, &info).unwrap_err();
        assert!(err.diagnostics.iter().any(|d| d.stage == "drc"));
        // The DRC stage was still recorded.
        assert!(session
            .stage_records()
            .iter()
            .any(|r| matches!(r.stage, Stage::Drc) && r.diagnostics > 0));
    }
}
