//! The compilation session driver.
//!
//! A [`Session`] owns everything that outlives a single pipeline
//! stage — options, registered source files, accumulated diagnostics
//! and per-stage records — and exposes the paper's Fig. 3 stages as
//! composable steps:
//!
//! ```text
//! let mut session = Session::new(options);
//! let packages            = session.parse(sources)?;     // parallel per file
//! let (project, elab)     = session.elaborate(packages)?;
//! let report              = session.sugar(&mut project);
//! session.drc(&project, &elab)?;                         // parallel per impl
//! let output              = session.finish(project, report, elab);
//! ```
//!
//! Every stage runs under [`Session::run_stage`], which records its
//! wall-clock duration and how many diagnostics it emitted, so tools
//! report stage behaviour uniformly instead of each stage hand-rolling
//! its own timing. [`compile`](crate::compile) is a thin wrapper over
//! this driver and remains the one-call entry point.
//!
//! Parsing fans out per file and the DRC fans out per implementation
//! (via rayon, falling back to sequential execution on single-core
//! machines); diagnostics order stays deterministic because per-unit
//! results are spliced back in input order.

use crate::ast::Package;
use crate::diagnostics::{has_errors, Diagnostic};
use crate::instantiate::{elaborate, ElabInfo};
use crate::parser::parse_package;
use crate::pipeline::{CompileFailure, CompileOptions, CompileOutput, StageTimings};
use crate::span::{SourceFile, Span};
use crate::sugar::{apply_sugaring, SugarReport};
use rayon::prelude::*;
use std::time::{Duration, Instant};
use tydi_ir::{IrError, Project};

/// The pipeline stages of paper Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Lexing + parsing (per file, parallel).
    Parse,
    /// Evaluation, template instantiation, generative expansion.
    Elaborate,
    /// Duplicator/voider insertion.
    Sugar,
    /// Design-rule checks (per implementation, parallel).
    Drc,
}

impl Stage {
    /// The stage's diagnostic label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Elaborate => "elaborate",
            Stage::Sugar => "sugar",
            Stage::Drc => "drc",
        }
    }
}

/// What one stage execution did.
#[derive(Debug, Clone, Copy)]
pub struct StageRecord {
    /// Which stage ran.
    pub stage: Stage,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Diagnostics emitted during the stage.
    pub diagnostics: usize,
}

/// A compilation session: drives the staged pipeline and accumulates
/// files, diagnostics and stage records across stages.
#[derive(Debug)]
pub struct Session {
    options: CompileOptions,
    files: Vec<SourceFile>,
    diagnostics: Vec<Diagnostic>,
    records: Vec<StageRecord>,
}

impl Session {
    /// Creates a session with the given options.
    pub fn new(options: CompileOptions) -> Self {
        Session {
            options,
            files: Vec::new(),
            diagnostics: Vec::new(),
            records: Vec::new(),
        }
    }

    /// The session's options.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// All diagnostics accumulated so far.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// All source files registered so far.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// Per-stage records, in execution order.
    pub fn stage_records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Aggregated per-stage timings (summed when a stage ran twice).
    pub fn timings(&self) -> StageTimings {
        let mut t = StageTimings::default();
        for record in &self.records {
            match record.stage {
                Stage::Parse => t.parse += record.duration,
                Stage::Elaborate => t.elaborate += record.duration,
                Stage::Sugar => t.sugar += record.duration,
                Stage::Drc => t.drc += record.duration,
            }
        }
        t
    }

    /// Runs `f` as a named stage, recording duration and emitted
    /// diagnostics.
    fn run_stage<T>(&mut self, stage: Stage, f: impl FnOnce(&mut Self) -> T) -> T {
        let diags_before = self.diagnostics.len();
        let t0 = Instant::now();
        let out = f(self);
        self.records.push(StageRecord {
            stage,
            duration: t0.elapsed(),
            diagnostics: self.diagnostics.len() - diags_before,
        });
        out
    }

    /// The failure value for the current diagnostics.
    fn fail(&self) -> Box<CompileFailure> {
        Box::new(CompileFailure {
            diagnostics: self.diagnostics.clone(),
            files: self.files.clone(),
        })
    }

    /// `Err` when any accumulated diagnostic is an error.
    fn bail_on_errors(&self) -> Result<(), Box<CompileFailure>> {
        if has_errors(&self.diagnostics) {
            Err(self.fail())
        } else {
            Ok(())
        }
    }

    /// Stage 1: parses `(file name, text)` pairs into packages, one
    /// file per rayon task.
    pub fn parse(&mut self, sources: &[(&str, &str)]) -> Result<Vec<Package>, Box<CompileFailure>> {
        let packages = self.run_stage(Stage::Parse, |session| {
            // File ids continue across parse() calls: spans index into
            // the session-wide file table.
            let base = session.files.len();
            session.files.extend(
                sources
                    .iter()
                    .map(|(name, text)| SourceFile::new(*name, *text)),
            );
            // Files are independent: parse in parallel, then splice
            // results back in input order so diagnostics stay stable.
            let indexed: Vec<(usize, &str)> = sources
                .iter()
                .enumerate()
                .map(|(index, (_, text))| (base + index, *text))
                .collect();
            let parsed: Vec<(Option<Package>, Vec<Diagnostic>)> = indexed
                .into_par_iter()
                .map(|(index, text)| parse_package(index, text))
                .collect();
            let mut packages = Vec::new();
            for (package, mut file_diags) in parsed {
                session.diagnostics.append(&mut file_diags);
                if let Some(p) = package {
                    packages.push(p);
                }
            }
            packages
        });
        self.bail_on_errors()?;
        Ok(packages)
    }

    /// Stage 2: evaluates and expands packages into an IR project.
    pub fn elaborate(
        &mut self,
        packages: Vec<Package>,
    ) -> Result<(Project, ElabInfo), Box<CompileFailure>> {
        let (project, info) = self.run_stage(Stage::Elaborate, |session| {
            let (project, info, mut diags) = elaborate(packages, &session.options.project_name);
            session.diagnostics.append(&mut diags);
            (project, info)
        });
        self.bail_on_errors()?;
        Ok((project, info))
    }

    /// Stage 3: duplicator/voider insertion. Skipped (recording an
    /// empty stage) when the options disable sugaring.
    pub fn sugar(&mut self, project: &mut Project) -> SugarReport {
        self.run_stage(Stage::Sugar, |session| {
            let report = if session.options.enable_sugaring {
                apply_sugaring(project)
            } else {
                SugarReport::default()
            };
            if report.duplicators + report.voiders > 0 {
                session.diagnostics.push(Diagnostic::note(
                    Stage::Sugar.name(),
                    format!(
                        "inserted {} duplicator(s) and {} voider(s)",
                        report.duplicators, report.voiders
                    ),
                    None,
                ));
            }
            report
        })
    }

    /// Stage 4: design-rule checks, one implementation per rayon task
    /// (inside [`Project::validate`]). Violations become diagnostics
    /// carrying the source span of the offending connection.
    pub fn drc(&mut self, project: &Project, info: &ElabInfo) -> Result<(), Box<CompileFailure>> {
        self.run_stage(Stage::Drc, |session| {
            if !session.options.run_drc {
                return;
            }
            if let Err(errors) = project.validate() {
                for error in errors {
                    let span = connection_span_of(&error, info);
                    session.diagnostics.push(Diagnostic::error(
                        Stage::Drc.name(),
                        error.to_string(),
                        span,
                    ));
                }
            }
        });
        self.bail_on_errors()
    }

    /// Consumes the session into a successful [`CompileOutput`].
    pub fn finish(
        self,
        project: Project,
        sugar_report: SugarReport,
        elab_info: ElabInfo,
    ) -> CompileOutput {
        let timings = self.timings();
        CompileOutput {
            project,
            diagnostics: self.diagnostics,
            timings,
            files: self.files,
            sugar_report,
            elab_info,
        }
    }
}

/// Best-effort mapping from an IR validation error back to the source
/// span of the offending connection.
fn connection_span_of(error: &IrError, info: &ElabInfo) -> Option<Span> {
    let (implementation, connection) = match error {
        IrError::TypeMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::StrictTypeMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::ComplexityMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::ClockDomainMismatch {
            implementation,
            connection,
            ..
        }
        | IrError::DirectionError {
            implementation,
            connection,
            ..
        } => (implementation, connection),
        _ => return None,
    };
    info.connection_span(implementation, connection)
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &str = r#"
package demo;
type Byte = Stream(Bit(8));
streamlet wire_s { i : Byte in, o : Byte out, }
impl wire_i of wire_s { i => o, }
"#;

    #[test]
    fn stages_record_uniformly() {
        let mut session = Session::new(CompileOptions::default());
        let packages = session.parse(&[("wire.td", WIRE)]).unwrap();
        let (mut project, info) = session.elaborate(packages).unwrap();
        let report = session.sugar(&mut project);
        session.drc(&project, &info).unwrap();
        let stages: Vec<Stage> = session.stage_records().iter().map(|r| r.stage).collect();
        assert_eq!(
            stages,
            vec![Stage::Parse, Stage::Elaborate, Stage::Sugar, Stage::Drc]
        );
        assert!(session.timings().total() > Duration::ZERO);
        let output = session.finish(project, report, info);
        assert!(output.project.implementation("wire_i").is_some());
    }

    #[test]
    fn parse_stage_counts_diagnostics() {
        let mut session = Session::new(CompileOptions::default());
        let err = session
            .parse(&[("bad.td", "package x;\nconst = ;")])
            .unwrap_err();
        assert!(err.diagnostics.iter().any(|d| d.stage == "parse"));
        let record = &session.stage_records()[0];
        assert_eq!(record.stage, Stage::Parse);
        assert!(record.diagnostics > 0);
    }

    #[test]
    fn many_files_parse_in_order() {
        // More files than the parallel threshold; package/diagnostic
        // order must match the sequential result.
        let sources: Vec<(String, String)> = (0..32)
            .map(|k| {
                (
                    format!("f{k}.td"),
                    format!(
                        "package p{k};\ntype B = Stream(Bit(8));\n\
                         streamlet s{k} {{ i : B in, o : B out, }}\n\
                         impl x{k} of s{k} {{ i => o, }}"
                    ),
                )
            })
            .collect();
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        let mut session = Session::new(CompileOptions::default());
        let packages = session.parse(&refs).unwrap();
        assert_eq!(packages.len(), 32);
        for (k, package) in packages.iter().enumerate() {
            assert_eq!(package.name, format!("p{k}"));
        }
    }

    #[test]
    fn incremental_parse_calls_keep_file_ids_aligned() {
        // A second parse() call must attach diagnostics to the files
        // it registered, not to the first call's.
        let mut session = Session::new(CompileOptions::default());
        session.parse(&[("good.td", WIRE)]).unwrap();
        let err = session
            .parse(&[("bad.td", "package x;\nconst = ;")])
            .unwrap_err();
        let diag = err
            .diagnostics
            .iter()
            .find(|d| d.stage == "parse")
            .expect("parse error");
        let rendered = diag.render(&err.files);
        assert!(rendered.contains("bad.td"), "rendered: {rendered}");
        assert!(!rendered.contains("good.td"), "rendered: {rendered}");
    }

    #[test]
    fn drc_failure_keeps_session_usable_for_reporting() {
        let src = r#"
package demo;
type A = Stream(Bit(8));
type B = Stream(Bit(16));
streamlet s { i : A in, o : B out, }
impl x of s { i => o, }
"#;
        let mut session = Session::new(CompileOptions::default());
        let packages = session.parse(&[("t.td", src)]).unwrap();
        let (mut project, info) = session.elaborate(packages).unwrap();
        session.sugar(&mut project);
        let err = session.drc(&project, &info).unwrap_err();
        assert!(err.diagnostics.iter().any(|d| d.stage == "drc"));
        // The DRC stage was still recorded.
        assert!(session
            .stage_records()
            .iter()
            .any(|r| matches!(r.stage, Stage::Drc) && r.diagnostics > 0));
    }
}
