//! Token definitions for the Tydi-lang lexer.

use crate::span::Span;
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals
    /// Integer literal (decimal or `0x` hexadecimal).
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// String literal (escapes resolved).
    Str(String),
    /// Identifier or keyword (keywords are classified by the parser so
    /// that context-sensitive words like `type` can appear in template
    /// argument positions).
    Ident(String),

    // Punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `=`
    Eq,
    /// `=>`
    FatArrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^`
    Caret,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `@`
    At,
    /// End of file.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Eof => "end of file".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Eq => "=",
            TokenKind::FatArrow => "=>",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Caret => "^",
            TokenKind::Bang => "!",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::DotDot => "..",
            TokenKind::At => "@",
            _ => "?",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Source range.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_forms() {
        assert_eq!(TokenKind::Int(5).describe(), "integer `5`");
        assert_eq!(TokenKind::FatArrow.describe(), "`=>`");
        assert_eq!(TokenKind::Ident("foo".into()).describe(), "`foo`");
        assert_eq!(TokenKind::Eof.describe(), "end of file");
    }
}
