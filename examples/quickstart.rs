//! Quickstart: compile a small Tydi-lang design to Tydi-IR and VHDL.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks the full toolchain of the paper's Fig. 1: Tydi-lang source →
//! frontend → Tydi-IR (printed in its text format) → VHDL backend.

use tydi::lang::{compile, CompileOptions};
use tydi::stdlib::{full_registry, with_stdlib};
use tydi::vhdl::{generate_project, VhdlOptions};

const SOURCE: &str = r#"
package quickstart;
use std;

// An English sentence: characters in words in a sentence (paper II).
type Sentence = Stream(Bit(8), d=2);

streamlet shout_s {
    text : Sentence in,
    loud : Sentence out,
}

// Pass the character stream through a standard-library component.
impl shout_i of shout_s {
    instance pass(passthrough_i<type Sentence>),
    text => pass.i,
    pass.o => loud,
}
"#;

fn main() {
    // 1. Compile (parse -> evaluate -> expand -> sugar -> DRC).
    let sources = with_stdlib(&[("quickstart.td", SOURCE)]);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    let output = compile(&refs, &CompileOptions::default()).unwrap_or_else(|e| {
        eprintln!("compilation failed:\n{e}");
        std::process::exit(1);
    });
    println!(
        "compiled: {} streamlet(s), {} implementation(s) in {:?}",
        output.project.streamlets().len(),
        output.project.implementations().len(),
        output.timings.total(),
    );

    // 2. Emit Tydi-IR in its text format.
    println!("\n---- Tydi-IR ----");
    println!("{}", tydi::ir::text::emit_project(&output.project));

    // 3. Lower to VHDL with the builtin RTL generators.
    let registry = full_registry();
    let files = generate_project(&output.project, &registry, &VhdlOptions::default())
        .expect("VHDL generation");
    println!("---- VHDL ({} file(s)) ----", files.len());
    for file in &files {
        println!(
            "==> {} ({} lines)",
            file.name,
            tydi::vhdl::count_loc(&file.contents)
        );
    }
    println!("\n{}", files.last().expect("files").contents);
}
