//! The paper's §IV-A motivating example: `where p_container in
//! ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')`.
//!
//! Four comparators are declared by ONE `instance` statement inside a
//! generative `for` loop over an array of dictionary codes, wired into
//! a 4-input or-gate. The design is then simulated against a small
//! column of data.
//!
//! ```sh
//! cargo run --example sql_filter
//! ```

use tydi::fletcher::Dictionary;
use tydi::lang::{compile, CompileOptions};
use tydi::sim::{BehaviorRegistry, Packet, Simulator};
use tydi::stdlib::with_stdlib;

fn main() {
    // Dictionary-encode the container strings (as an Arrow system
    // would before the data reaches hardware).
    let mut dict = Dictionary::new();
    for value in [
        "SM CASE", "SM BOX", "MED BAG", "MED BOX", "MED PKG", "MED PACK", "LG CASE",
    ] {
        dict.encode(value);
    }
    let wanted = ["MED BAG", "MED BOX", "MED PKG", "MED PACK"];
    let codes: Vec<i64> = wanted.iter().map(|w| dict.lookup(w).unwrap()).collect();

    let source = format!(
        r#"
package sql_filter;
use std;

type Code = Stream(Bit(32), d=1);
const wanted : [int] = [{codes}];

streamlet in_list_s {{
    container : Code in,
    matched : BoolStream out,
}}
impl in_list_i of in_list_s {{
    instance any(or_n_i<4>),
    // One statement declares all four comparators (paper IV-A).
    for k in (0..4) {{
        instance cmp(eq_const_i<type Code, wanted[k]>),
        container => cmp.i,
        cmp.o => any.i[k],
    }}
    any.o => matched,
}}
"#,
        codes = codes
            .iter()
            .map(i64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    );

    let sources = with_stdlib(&[("sql_filter.td", source.as_str())]);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    let output = compile(&refs, &CompileOptions::default()).unwrap_or_else(|e| {
        eprintln!("compilation failed:\n{e}");
        std::process::exit(1);
    });
    println!(
        "compiled; sugaring inserted {} duplicator(s) for the fanned-out column",
        output.sugar_report.duplicators
    );

    // Simulate over a test column.
    let column = ["SM CASE", "MED BAG", "LG CASE", "MED PACK", "MED BOX"];
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&output.project, "in_list_i", &registry).expect("simulator");
    sim.feed(
        "container",
        column.iter().map(|v| Packet::data(dict.lookup(v).unwrap())),
    )
    .unwrap();
    let result = sim.run(10_000);
    assert!(result.finished, "simulation did not settle: {result:?}");

    println!("\n{:<10} {:>8}", "container", "matched");
    for (value, (_, packet)) in column.iter().zip(sim.outputs("matched").unwrap()) {
        println!("{value:<10} {:>8}", packet.data);
        let expected = wanted.contains(value) as i64;
        assert_eq!(packet.data, expected, "wrong verdict for {value}");
    }
    println!("\nall verdicts match the SQL `in` predicate");
}
