//! The paper's §IV-B example: parallelizing an 8-cycle processing
//! unit to reach one packet per cycle, plus the §V-B bottleneck
//! analysis identifying the congested ports when the design is
//! under-provisioned.
//!
//! ```sh
//! cargo run --example parallelize
//! ```

use tydi_bench::{compile_parallelize, simulate_parallelize};
use tydi_sim::{BehaviorRegistry, Packet, Simulator};

const DELAY: u64 = 8;
const PACKETS: u64 = 96;

fn main() {
    println!("processing unit delay: {DELAY} cycles, workload: {PACKETS} packets\n");
    println!("{:>8} {:>10} {:>14}", "channels", "cycles", "packets/cycle");
    for channel in [1usize, 2, 4, 8, 16] {
        let (cycles, delivered) = simulate_parallelize(channel, DELAY, PACKETS);
        assert_eq!(delivered, PACKETS);
        println!(
            "{channel:>8} {cycles:>10} {:>14.4}",
            delivered as f64 / cycles as f64
        );
    }
    println!(
        "\n-> throughput saturates around {DELAY} channels, reproducing the\n\
         paper's \"achieving 1 data/cycle\" configuration.\n"
    );

    // Bottleneck analysis on the under-provisioned variant.
    let compiled = compile_parallelize(2, DELAY);
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&compiled.project, "top_i", &registry).expect("simulator");
    sim.feed("i", (0..PACKETS as i64).map(Packet::data))
        .unwrap();
    sim.run(PACKETS * DELAY * 4);
    println!("{}", sim.bottlenecks());
    println!("-> the demux output ports block on the busy processing units:\n   add more channels (paper section V-B).");
}
