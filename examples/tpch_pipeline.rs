//! End-to-end TPC-H flow (paper Fig. 2): Arrow schema → Fletcher
//! readers → Tydi-lang query logic → compile → simulate → verify
//! against a software reference → generate VHDL and count Table IV
//! lines — for one query chosen on the command line.
//!
//! ```sh
//! cargo run --example tpch_pipeline -- q6
//! cargo run --example tpch_pipeline -- q19
//! ```

use tydi::tpch::{all_queries, run_query, table4, GenOptions, TpchData};

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "q6".to_string());
    let data = TpchData::generate(GenOptions {
        rows: 256,
        seed: 2026,
    });
    let case = all_queries(&data)
        .into_iter()
        .find(|c| c.id == wanted)
        .unwrap_or_else(|| {
            eprintln!("unknown query `{wanted}` (try q1, q1_nosugar, q3, q5, q6, q19)");
            std::process::exit(2);
        });

    println!("== {} ==\n\nSQL:\n{}\n", case.title, case.sql);
    println!(
        "Tydi-lang query logic: {} LoC (+ {} LoC Fletcher interface)",
        case.query_loc(),
        case.fletcher_loc()
    );

    // Compile and report the pipeline stages.
    let output = case.compile().unwrap_or_else(|e| {
        eprintln!("compile failed:\n{e}");
        std::process::exit(1);
    });
    let stats = output.project.stats();
    println!(
        "compiled in {:?}: {} streamlets, {} impls, {} connections ({} from sugaring)",
        output.timings.total(),
        stats.streamlets,
        stats.implementations,
        stats.connections,
        stats.sugar_connections,
    );

    // Simulate against the synthetic tables and verify.
    let outputs = run_query(&case, &data).unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    });
    println!("\nsimulated outputs vs reference:");
    let mut ok = true;
    for (port, expected) in &case.expected {
        let got = outputs.get(port).cloned().unwrap_or_default();
        let matched = &got == expected;
        ok &= matched;
        println!(
            "  {:<14} expected {:?} got {:?} {}",
            port,
            expected,
            got,
            if matched { "OK" } else { "MISMATCH" }
        );
    }
    assert!(ok, "simulation disagreed with the reference executor");

    // Table IV row for this query.
    let rows = table4(&data).expect("table4");
    let row = rows
        .iter()
        .find(|r| r.query == case.title)
        .expect("table row");
    println!(
        "\nTable IV row: LoCq={} LoCa={} LoCvhdl={} Rq={:.2} Ra={:.2}",
        row.loc_q, row.loc_a, row.loc_vhdl, row.rq, row.ra
    );
}
