//! Fig. 4 of the paper: automatic voider and duplicator insertion.
//!
//! `b0 = a + 10; b1 = a * 2;` — the same value `a` feeds an adder and
//! a multiplier, and one producer output is never used. In software
//! this is trivial; on streaming hardware every port must be used
//! exactly once, so the compiler splices in a duplicator and a voider.
//!
//! ```sh
//! cargo run --example sugaring_demo
//! ```

use tydi::lang::{compile, CompileOptions};
use tydi::stdlib::with_stdlib;

const SOURCE: &str = r#"
package fig4;
use std;

type W32 = Stream(Bit(32), d=1);

streamlet source_s {
    a : W32 out,
    unused : W32 out,
}
@builtin("fletcher.source")
impl source_i of source_s external;

streamlet math_s {
    b0 : W32 out,
    b1 : W32 out,
}
@NoStrictType
impl math_i of math_s {
    instance src(source_i),
    instance ten(const_vec_i<type W32, 10, 8>),
    instance two(const_vec_i<type W32, 2, 8>),
    instance add(adder_i<type W32, type W32, type W32>),
    instance mul(multiplier_i<type W32, type W32, type W32>),
    // `a` feeds BOTH operators: the compiler infers a duplicator.
    src.a => add.in0,
    src.a => mul.in0,
    ten.o => add.in1,
    two.o => mul.in1,
    add.o => b0,
    mul.o => b1,
    // `src.unused` is never read: the compiler infers a voider.
}
"#;

fn main() {
    // With sugaring (the default): compiles cleanly.
    let sources = with_stdlib(&[("fig4.td", SOURCE)]);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    let sugared = compile(&refs, &CompileOptions::default()).expect("sugared compile");
    println!(
        "with sugaring:    OK  ({} duplicator(s), {} voider(s) inserted)",
        sugared.sugar_report.duplicators, sugared.sugar_report.voiders
    );
    let math = sugared.project.implementation("math_i").unwrap();
    println!(
        "                  math_i now has {} instances, {} connections",
        math.instances().len(),
        math.connections().len()
    );
    for c in math.connections().iter().filter(|c| c.inserted_by_sugar) {
        println!("                  inserted: {}", c.describe());
    }

    // Without sugaring: the same design violates the port-usage DRC.
    let options = CompileOptions {
        enable_sugaring: false,
        ..CompileOptions::default()
    };
    match compile(&refs, &options) {
        Ok(_) => println!("without sugaring: unexpectedly compiled"),
        Err(failure) => {
            println!("\nwithout sugaring: REJECTED by the DRC, as expected:");
            for d in failure
                .diagnostics
                .iter()
                .filter(|d| d.stage == "drc")
                .take(4)
            {
                println!("  - {}", d.message);
            }
        }
    }
}
