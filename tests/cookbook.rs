//! The cookbook: one tutorial program per language feature (mirroring
//! the reference repository's Cookbook folder). Every file must
//! compile; selected ones are also simulated.

use std::fs;
use std::path::PathBuf;
use tydi::lang::{compile, CompileOptions};
use tydi::sim::{BehaviorRegistry, Packet, Simulator};
use tydi::spec::clock::PhysicalClock;
use tydi::spec::ClockDomain;
use tydi::stdlib::{stdlib_source, STDLIB_FILE_NAME};

fn cookbook_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cookbook")
}

fn compile_cookbook(file: &str) -> tydi::lang::CompileOutput {
    let path = cookbook_dir().join(file);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let sources = [
        (STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()),
        (file.to_string(), text),
    ];
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile(&refs, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("cookbook {file} failed to compile:\n{e}"))
}

#[test]
fn every_cookbook_file_compiles() {
    let mut count = 0;
    for entry in fs::read_dir(cookbook_dir()).expect("cookbook directory") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().to_string();
        if name.ends_with(".td") {
            compile_cookbook(&name);
            count += 1;
        }
    }
    assert!(
        count >= 8,
        "expected at least 8 cookbook files, found {count}"
    );
}

#[test]
fn cookbook_01_math_system_results() {
    let out = compile_cookbook("01_variables.td");
    // The decimal-width stream landed at 50 bits.
    let s = out.project.streamlet("pipe_s").unwrap();
    let phys = tydi::spec::lower(&s.ports[0].ty).unwrap();
    assert_eq!(phys[0].element_bits, 50);
}

#[test]
fn cookbook_04_generative_expansion() {
    let out = compile_cookbook("04_generative.td");
    let fanout = out.project.implementation("fanout_i").unwrap();
    // mux + 4 connections from the for loop + merged.
    assert_eq!(fanout.instances().len(), 1);
    assert_eq!(fanout.connections().len(), 5);
    let inlist = out.project.implementation("inlist_i").unwrap();
    // or-gate + 3 comparators + the duplicator sugaring inserted for
    // the 3-way fan-out of `code`.
    assert_eq!(inlist.instances().len(), 5);
}

#[test]
fn cookbook_05_simulation_code_runs() {
    let out = compile_cookbook("05_external_sim.td");
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&out.project, "mac_i", &registry).expect("simulator");
    sim.feed("a", [Packet::data(6), Packet::data(7)]).unwrap();
    sim.feed("b", [Packet::data(7), Packet::data(8)]).unwrap();
    let result = sim.run(10_000);
    assert!(result.finished);
    let out_data: Vec<i64> = sim
        .outputs("acc")
        .unwrap()
        .iter()
        .map(|(_, p)| p.data)
        .collect();
    assert_eq!(out_data, vec![42, 56]);

    // Clamp behaviour with handler if/else.
    let gate = compile_cookbook("05_external_sim.td");
    let mut sim = Simulator::new(&gate.project, "gate_i", &registry).expect("simulator");
    sim.feed("i", [Packet::data(5), Packet::data(500)]).unwrap();
    sim.run(10_000);
    let out_data: Vec<i64> = sim
        .outputs("o")
        .unwrap()
        .iter()
        .map(|(_, p)| p.data)
        .collect();
    assert_eq!(out_data, vec![5, 100]);
}

#[test]
fn cookbook_06_sugaring_counts() {
    let out = compile_cookbook("06_sugaring.td");
    assert_eq!(out.sugar_report.duplicators, 1);
    assert_eq!(out.sugar_report.voiders, 1);
}

#[test]
fn cookbook_08_group_transform_round_trips() {
    // The future-work feature: split a Pair stream, swap, recombine.
    let out = compile_cookbook("08_transform_types.td");
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&out.project, "swap_i", &registry).expect("simulator");
    // Pair { x: 0x0003, y: 0x0004 } packs as y << 16 | x.
    let packed = |x: i64, y: i64| (y << 16) | x;
    sim.feed(
        "pairs",
        [Packet::data(packed(3, 4)), Packet::last(packed(10, 20), 1)],
    )
    .unwrap();
    let result = sim.run(10_000);
    assert!(result.finished, "{result:?}");
    let swapped: Vec<i64> = sim
        .outputs("swapped")
        .unwrap()
        .iter()
        .map(|(_, p)| p.data)
        .collect();
    assert_eq!(swapped, vec![packed(4, 3), packed(20, 10)]);
}

#[test]
fn physical_clock_mapping_reports_wall_time() {
    // Paper V-B: cycle counts map to physical time once the clock
    // domain is bound to a frequency.
    let out = compile_cookbook("05_external_sim.td");
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&out.project, "gate_i", &registry).expect("simulator");
    sim.set_physical_clock(PhysicalClock::new(ClockDomain::default(), 100e6));
    sim.feed("i", (0..50).map(Packet::data)).unwrap();
    sim.run(10_000);
    let seconds = sim.elapsed_seconds().expect("clock bound");
    assert!(seconds > 0.0);
    // 100 MHz -> 10 ns per cycle.
    assert!((seconds - sim.cycle() as f64 * 10e-9).abs() < 1e-12);
    let hz = sim.throughput_hz("o").unwrap().expect("clock bound");
    assert!(hz > 0.0, "throughput should be positive, got {hz}");
}

#[test]
fn cookbook_09_parallelize_reaches_one_per_cycle_shape() {
    let out = compile_cookbook("09_parallelize.td");
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&out.project, "one_per_cycle_i", &registry).expect("simulator");
    let n = 64i64;
    sim.feed("i", (0..n).map(Packet::data)).unwrap();
    let result = sim.run(100_000);
    assert!(result.finished, "{result:?}");
    let outputs = sim.outputs("o").unwrap();
    assert_eq!(outputs.len() as i64, n);
    // Near the saturation point the whole batch takes ~2n cycles, far
    // below the ~9n a single unit would need.
    let last_cycle = outputs.last().unwrap().0;
    assert!(
        last_cycle < 4 * n as u64,
        "64 packets took {last_cycle} cycles through 8 channels"
    );
    // Results arrive in order with the increment applied.
    let data: Vec<i64> = outputs.iter().map(|(_, p)| p.data).collect();
    let expected: Vec<i64> = (1..=n).collect();
    assert_eq!(data, expected);
}

#[test]
fn cookbook_11_batch_simulation_shards_scenarios() {
    use tydi::sim::{Scenario, SimBatch, StopReason};
    let out = compile_cookbook("11_batch_sim.td");
    let registry = BehaviorRegistry::with_std();
    let scenarios: Vec<Scenario> = (0..4)
        .map(|k| {
            // Stalls of 1/5/9/13 cycles: the slow unit needs ~5 cycles
            // per packet, so the later scenarios back the pipeline up.
            Scenario::new(format!("stall-{k}"))
                .with_feed("i", (0..24).map(|v| Packet::data(v + 100 * k)))
                .with_backpressure("o", 1 + 4 * k as u64)
        })
        .collect();
    let report = SimBatch::new(&out.project, "pipeline_i", &registry)
        .run(&scenarios)
        .expect("batch");
    assert_eq!(report.completed(), 4);
    assert!(report.deadlocked().is_empty());
    for (k, s) in report.scenarios.iter().enumerate() {
        assert_eq!(s.result.reason, StopReason::Completed);
        let (port, received) = &s.outputs[0];
        assert_eq!(port, "o");
        let data: Vec<i64> = received.iter().map(|(_, p)| p.data).collect();
        let expected: Vec<i64> = (0..24).map(|v| (v + 100 * k as i64) * 2).collect();
        assert_eq!(data, expected, "scenario stall-{k}");
    }
    // Under heavy backpressure the slow unit's output is the
    // bottleneck the merged report names.
    let worst = report.worst_blockages();
    assert!(!worst.is_empty());
    assert!(worst[0].component.contains("slow") || worst[0].component.contains("tail"));
}

#[test]
fn cookbook_10_full_flow_sums_filtered_prices() {
    let out = compile_cookbook("10_full_flow.td");
    let mut registry = BehaviorRegistry::with_std();
    let prices = vec![40i64, 250, 99, 100, 1, 700];
    let mut tables = std::collections::HashMap::new();
    tables.insert(
        "prices".to_string(),
        tydi::fletcher::Table::new().with_column("price", prices.clone()),
    );
    tydi::fletcher::register_fletcher_behaviors(&mut registry, tables);
    let mut sim = Simulator::new(&out.project, "cheap_total_i", &registry).expect("simulator");
    let result = sim.run(10_000);
    assert!(result.finished, "{result:?}");
    let expected: i64 = prices.iter().filter(|&&p| p < 100).sum();
    let totals: Vec<i64> = sim
        .outputs("total")
        .unwrap()
        .iter()
        .filter(|(_, p)| !p.empty)
        .map(|(_, p)| p.data)
        .collect();
    assert_eq!(totals, vec![expected]);
}
