//! Property-based tests on the Tydi-spec type system: bit-width laws,
//! text-format round trips, and physical lowering invariants.

use proptest::prelude::*;
use tydi::spec::{
    lower, parse_logical_type, Complexity, LogicalType, StreamParams, Synchronicity, Throughput,
};

/// A recursive strategy for arbitrary valid logical types.
fn arb_type() -> impl Strategy<Value = LogicalType> {
    let leaf = prop_oneof![
        Just(LogicalType::Null),
        (1u32..=256).prop_map(LogicalType::Bit),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(|tys| {
                LogicalType::Group(
                    tys.into_iter()
                        .enumerate()
                        .map(|(i, t)| tydi::spec::Field::new(format!("f{i}"), t))
                        .collect(),
                )
            }),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(|tys| {
                LogicalType::Union(
                    tys.into_iter()
                        .enumerate()
                        .map(|(i, t)| tydi::spec::Field::new(format!("v{i}"), t))
                        .collect(),
                )
            }),
            (inner, arb_params()).prop_map(|(t, p)| LogicalType::stream(t, p)),
        ]
    })
}

fn arb_params() -> impl Strategy<Value = StreamParams> {
    (
        0u32..4,
        1u32..5,
        1u8..=8,
        prop_oneof![
            Just(Synchronicity::Sync),
            Just(Synchronicity::Flatten),
            Just(Synchronicity::Desync),
            Just(Synchronicity::FlatDesync)
        ],
        any::<bool>(),
    )
        .prop_map(|(d, t, c, x, keep)| {
            StreamParams::new()
                .with_dimension(d)
                .with_throughput(Throughput::new(t, 1).expect("positive"))
                .with_complexity(Complexity::new(c).expect("in range"))
                .with_synchronicity(x)
                .with_keep(keep)
        })
}

proptest! {
    #[test]
    fn group_width_is_sum_of_children(tys in proptest::collection::vec(arb_type(), 1..5)) {
        let expected: u32 = tys.iter().map(|t| t.bit_width()).sum();
        let group = LogicalType::Group(
            tys.into_iter()
                .enumerate()
                .map(|(i, t)| tydi::spec::Field::new(format!("f{i}"), t))
                .collect(),
        );
        prop_assert_eq!(group.bit_width(), expected);
    }

    #[test]
    fn union_width_is_max_plus_tag(tys in proptest::collection::vec(arb_type(), 1..5)) {
        let max: u32 = tys.iter().map(|t| t.bit_width()).max().unwrap_or(0);
        let n = tys.len();
        let union = LogicalType::Union(
            tys.into_iter()
                .enumerate()
                .map(|(i, t)| tydi::spec::Field::new(format!("v{i}"), t))
                .collect(),
        );
        let tag = if n <= 1 { 0 } else { usize::BITS - (n - 1).leading_zeros() };
        prop_assert_eq!(union.bit_width(), max + tag);
    }

    #[test]
    fn text_format_round_trips(ty in arb_type()) {
        prop_assume!(ty.validate().is_ok());
        let text = ty.to_string();
        let reparsed = parse_logical_type(&text)
            .unwrap_or_else(|e| panic!("reparse of `{text}` failed: {e}"));
        prop_assert_eq!(reparsed, ty);
    }

    #[test]
    fn lowering_never_panics_and_streams_have_signals(ty in arb_type()) {
        prop_assume!(ty.validate().is_ok());
        if let Ok(streams) = lower(&ty) {
            prop_assert!(!streams.is_empty());
            for s in &streams {
                let sig = s.signals();
                // Data bits = lanes x element bits.
                prop_assert_eq!(sig.data_bits, s.lanes() * s.element_bits);
                // Valid/ready always exist on top of the payload.
                prop_assert_eq!(sig.total_bits(), sig.payload_bits() + 2);
                // stai/endi only exist with more than one lane.
                if s.lanes() == 1 {
                    prop_assert_eq!(sig.stai_bits, 0);
                    prop_assert_eq!(sig.endi_bits, 0);
                }
            }
        }
    }

    #[test]
    fn lowered_stream_count_equals_kept_stream_nodes(ty in arb_type()) {
        prop_assume!(ty.validate().is_ok());
        // Wrap in a stream so there is always at least one — unless
        // the whole type is null, in which case every stream is
        // optimized out (paper Table I) and lowering refuses.
        let root = LogicalType::stream(ty, StreamParams::new());
        prop_assume!(!root.is_null());
        let streams = match lower(&root) {
            Ok(streams) => streams,
            // Composites of nothing but null streams also reduce to
            // nothing; that is legal lowering behaviour.
            Err(tydi::spec::SpecError::NotSynthesizable(_)) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(other.to_string())),
        };
        prop_assert!(!streams.is_empty());
        // All name suffixes are distinct... or shared when sibling
        // fields repeat names, which our generator never produces.
        let mut suffixes: Vec<String> = streams.iter().map(|s| s.name_suffix()).collect();
        suffixes.sort();
        let before = suffixes.len();
        suffixes.dedup();
        prop_assert_eq!(before, suffixes.len());
    }

    #[test]
    fn throughput_lanes_are_ceiling(num in 1u32..100, den in 1u32..100) {
        let t = Throughput::new(num, den).expect("positive ratio");
        prop_assert_eq!(t.lanes(), num.div_ceil(den));
    }
}
