//! Property-based tests on the Tydi-spec type system: bit-width laws,
//! text-format round trips, and physical lowering invariants.

use proptest::prelude::*;
use tydi::spec::{
    lower, parse_logical_type, Complexity, LogicalType, StreamParams, Synchronicity, Throughput,
};

/// A recursive strategy for arbitrary valid logical types.
fn arb_type() -> impl Strategy<Value = LogicalType> {
    let leaf = prop_oneof![
        Just(LogicalType::Null),
        (1u32..=256).prop_map(LogicalType::Bit),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(|tys| {
                LogicalType::Group(
                    tys.into_iter()
                        .enumerate()
                        .map(|(i, t)| tydi::spec::Field::new(format!("f{i}"), t))
                        .collect(),
                )
            }),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(|tys| {
                LogicalType::Union(
                    tys.into_iter()
                        .enumerate()
                        .map(|(i, t)| tydi::spec::Field::new(format!("v{i}"), t))
                        .collect(),
                )
            }),
            (inner, arb_params()).prop_map(|(t, p)| LogicalType::stream(t, p)),
        ]
    })
}

fn arb_params() -> impl Strategy<Value = StreamParams> {
    (
        0u32..4,
        1u32..5,
        1u8..=8,
        prop_oneof![
            Just(Synchronicity::Sync),
            Just(Synchronicity::Flatten),
            Just(Synchronicity::Desync),
            Just(Synchronicity::FlatDesync)
        ],
        any::<bool>(),
    )
        .prop_map(|(d, t, c, x, keep)| {
            StreamParams::new()
                .with_dimension(d)
                .with_throughput(Throughput::new(t, 1).expect("positive"))
                .with_complexity(Complexity::new(c).expect("in range"))
                .with_synchronicity(x)
                .with_keep(keep)
        })
}

proptest! {
    #[test]
    fn group_width_is_sum_of_children(tys in proptest::collection::vec(arb_type(), 1..5)) {
        let expected: u32 = tys.iter().map(|t| t.bit_width()).sum();
        let group = LogicalType::Group(
            tys.into_iter()
                .enumerate()
                .map(|(i, t)| tydi::spec::Field::new(format!("f{i}"), t))
                .collect(),
        );
        prop_assert_eq!(group.bit_width(), expected);
    }

    #[test]
    fn union_width_is_max_plus_tag(tys in proptest::collection::vec(arb_type(), 1..5)) {
        let max: u32 = tys.iter().map(|t| t.bit_width()).max().unwrap_or(0);
        let n = tys.len();
        let union = LogicalType::Union(
            tys.into_iter()
                .enumerate()
                .map(|(i, t)| tydi::spec::Field::new(format!("v{i}"), t))
                .collect(),
        );
        let tag = if n <= 1 { 0 } else { usize::BITS - (n - 1).leading_zeros() };
        prop_assert_eq!(union.bit_width(), max + tag);
    }

    #[test]
    fn text_format_round_trips(ty in arb_type()) {
        prop_assume!(ty.validate().is_ok());
        let text = ty.to_string();
        let reparsed = parse_logical_type(&text)
            .unwrap_or_else(|e| panic!("reparse of `{text}` failed: {e}"));
        prop_assert_eq!(reparsed, ty);
    }

    #[test]
    fn lowering_never_panics_and_streams_have_signals(ty in arb_type()) {
        prop_assume!(ty.validate().is_ok());
        if let Ok(streams) = lower(&ty) {
            prop_assert!(!streams.is_empty());
            for s in &streams {
                let sig = s.signals();
                // Data bits = lanes x element bits.
                prop_assert_eq!(sig.data_bits, s.lanes() * s.element_bits);
                // Valid/ready always exist on top of the payload.
                prop_assert_eq!(sig.total_bits(), sig.payload_bits() + 2);
                // stai/endi only exist with more than one lane.
                if s.lanes() == 1 {
                    prop_assert_eq!(sig.stai_bits, 0);
                    prop_assert_eq!(sig.endi_bits, 0);
                }
            }
        }
    }

    #[test]
    fn lowered_stream_count_equals_kept_stream_nodes(ty in arb_type()) {
        prop_assume!(ty.validate().is_ok());
        // Wrap in a stream so there is always at least one — unless
        // the whole type is null, in which case every stream is
        // optimized out (paper Table I) and lowering refuses.
        let root = LogicalType::stream(ty, StreamParams::new());
        prop_assume!(!root.is_null());
        let streams = match lower(&root) {
            Ok(streams) => streams,
            // Composites of nothing but null streams also reduce to
            // nothing; that is legal lowering behaviour.
            Err(tydi::spec::SpecError::NotSynthesizable(_)) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(other.to_string())),
        };
        prop_assert!(!streams.is_empty());
        // All name suffixes are distinct... or shared when sibling
        // fields repeat names, which our generator never produces.
        let mut suffixes: Vec<String> = streams.iter().map(|s| s.name_suffix()).collect();
        suffixes.sort();
        let before = suffixes.len();
        suffixes.dedup();
        prop_assert_eq!(before, suffixes.len());
    }

    #[test]
    fn throughput_lanes_are_ceiling(num in 1u32..100, den in 1u32..100) {
        let t = Throughput::new(num, den).expect("positive ratio");
        prop_assert_eq!(t.lanes(), num.div_ceil(den));
    }

    /// Signal-presence rules of the physical lowering, cross-checked
    /// against the thresholds documented on `Complexity`:
    ///
    /// * `C >= 5`: `endi` present with more than one lane (also forced
    ///   by any nonzero dimension);
    /// * `C >= 6`: `stai` present with more than one lane;
    /// * `C >= 7`: `strb` present (also forced by nonzero dimension);
    /// * `C >= 8`: `last` is transferred per lane instead of per
    ///   transfer.
    #[test]
    fn signal_presence_follows_complexity_thresholds(
        element in 1u32..64,
        lanes in 1u32..9,
        c in 1u8..=8,
        d in 0u32..4,
    ) {
        let ty = LogicalType::stream(
            LogicalType::Bit(element),
            StreamParams::new()
                .with_throughput(Throughput::new(lanes, 1).expect("positive"))
                .with_complexity(Complexity::new(c).expect("in range"))
                .with_dimension(d),
        );
        let streams = lower(&ty).expect("synthesizable");
        prop_assert_eq!(streams.len(), 1);
        let sig = streams[0].signals();

        // data: one element per lane.
        prop_assert_eq!(sig.data_bits, lanes * element);
        // last: per transfer below C8, per lane at C8.
        let expected_last = if c >= 8 { lanes * d } else { d };
        prop_assert_eq!(sig.last_bits, expected_last);
        // stai: start index at C >= 6 with multiple lanes.
        let index_bits = tydi::spec::index_width(lanes);
        let expected_stai = if c >= 6 && lanes > 1 { index_bits } else { 0 };
        prop_assert_eq!(sig.stai_bits, expected_stai);
        // endi: end index at C >= 5 (or any dimension) with multiple
        // lanes.
        let expected_endi = if (c >= 5 || d >= 1) && lanes > 1 { index_bits } else { 0 };
        prop_assert_eq!(sig.endi_bits, expected_endi);
        // strb: per-lane strobe at C >= 7 or with any dimension.
        let expected_strb = if c >= 7 || d >= 1 { lanes } else { 0 };
        prop_assert_eq!(sig.strb_bits, expected_strb);

        // Raising only the complexity never removes a signal: higher C
        // gives the source strictly more freedom.
        if c < 8 {
            let wider = LogicalType::stream(
                LogicalType::Bit(element),
                StreamParams::new()
                    .with_throughput(Throughput::new(lanes, 1).expect("positive"))
                    .with_complexity(Complexity::new(c + 1).expect("in range"))
                    .with_dimension(d),
            );
            let wider_sig = lower(&wider).expect("synthesizable")[0].signals();
            prop_assert!(wider_sig.payload_bits() >= sig.payload_bits());
        }

        // Bookkeeping identities: payload is the sum of the named
        // signals (absent signals contribute zero), total adds
        // valid + ready.
        let named_sum: u32 = sig.named_signals().map(|(_, w)| w).sum();
        prop_assert_eq!(sig.payload_bits(), named_sum);
        prop_assert_eq!(sig.total_bits(), sig.payload_bits() + 2);
    }

    /// `index_width(n)` is the smallest width that can address `n`
    /// lanes.
    #[test]
    fn index_width_covers_lane_count(lanes in 1u32..512) {
        let w = tydi::spec::index_width(lanes);
        prop_assert!(2u64.pow(w) >= lanes as u64);
        if lanes > 1 {
            prop_assert!(2u64.pow(w) < 2 * lanes as u64);
        } else {
            prop_assert_eq!(w, 0);
        }
    }
}
