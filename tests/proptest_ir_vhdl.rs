//! Property-based tests on the IR and VHDL layers: bit-value algebra,
//! identifier sanitization, IR text round trips, and LoC counting.

use proptest::prelude::*;
use tydi::ir::text::{emit_project, parse_project};
use tydi::ir::{
    BitsValue, Connection, EndpointRef, Implementation, Instance, Port, PortDirection, Project,
    Streamlet,
};
use tydi::spec::{LogicalType, StreamParams};
use tydi::vhdl::names::{sanitize, NameAllocator};

proptest! {
    #[test]
    fn bits_value_u64_round_trip(value: u64, width in 1u32..=64) {
        let truncated = if width == 64 { value } else { value & ((1u64 << width) - 1) };
        let v = BitsValue::from_u64(value, width);
        prop_assert_eq!(v.to_u64(), Some(truncated));
        prop_assert_eq!(v.width(), width);
    }

    #[test]
    fn bits_value_i64_round_trip(value: i64, extra in 0u32..66) {
        // Any width wide enough to hold the value round-trips exactly.
        let needed = 64 - value.unsigned_abs().leading_zeros() + 1;
        let width = (needed + extra).clamp(1, 150);
        let v = BitsValue::from_i64(value, width);
        prop_assert_eq!(v.to_i64(), Some(value));
    }

    #[test]
    fn bits_value_bin_string_round_trip(value: u64, width in 1u32..=64) {
        let v = BitsValue::from_u64(value, width);
        let s = v.to_bin_string();
        prop_assert_eq!(s.len() as u32, width);
        prop_assert_eq!(BitsValue::from_bin_string(&s), Some(v));
    }

    #[test]
    fn splice_extract_inverse(
        base_width in 1u32..100,
        value: u64,
        offset_frac in 0.0f64..1.0,
        width in 1u32..64,
    ) {
        let width = width.min(base_width);
        let max_offset = base_width - width;
        let offset = (offset_frac * max_offset as f64) as u32;
        let mut base = BitsValue::zero(base_width);
        let piece = BitsValue::from_u64(value, width);
        base.splice(offset, &piece);
        prop_assert_eq!(base.extract(offset, width), piece);
    }

    #[test]
    fn sanitize_always_yields_legal_identifier(name in "\\PC{0,40}") {
        let id = sanitize(&name);
        prop_assert!(!id.is_empty());
        prop_assert!(id.chars().next().unwrap().is_ascii_alphabetic());
        prop_assert!(id.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        prop_assert!(!id.contains("__"));
        prop_assert!(!id.ends_with('_'));
        // Idempotent up to reserved-word suffixing.
        let again = sanitize(&id);
        let suffixed = format!("{id}_v");
        prop_assert!(again == id || again == suffixed);
    }

    #[test]
    fn allocator_never_repeats(names in proptest::collection::vec("\\PC{0,12}", 1..30)) {
        let mut alloc = NameAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for name in &names {
            let id = alloc.allocate(name).to_ascii_lowercase();
            prop_assert!(seen.insert(id), "allocator repeated a name");
        }
    }

    /// Random linear pipelines emit IR text that parses back to an
    /// equivalent, still-valid project.
    #[test]
    fn ir_text_round_trips_for_random_chains(
        width in 1u32..64,
        stages in 1usize..6,
        dim in 0u32..3,
    ) {
        let ty = LogicalType::stream(
            LogicalType::Bit(width),
            StreamParams::new().with_dimension(dim),
        );
        let mut p = Project::new("chain");
        p.add_streamlet(
            Streamlet::new("pass_s")
                .with_port(Port::new("i", PortDirection::In, ty.clone()))
                .with_port(Port::new("o", PortDirection::Out, ty)),
        )
        .unwrap();
        p.add_implementation(
            Implementation::external("leaf_i", "pass_s").with_builtin("std.passthrough"),
        )
        .unwrap();
        let mut top = Implementation::normal("top_i", "pass_s");
        for s in 0..stages {
            top.add_instance(Instance::new(format!("n{s}"), "leaf_i"));
        }
        top.add_connection(Connection::new(
            EndpointRef::own("i"),
            EndpointRef::instance("n0", "i"),
        ));
        for s in 1..stages {
            top.add_connection(Connection::new(
                EndpointRef::instance(format!("n{}", s - 1), "o"),
                EndpointRef::instance(format!("n{s}"), "i"),
            ));
        }
        top.add_connection(Connection::new(
            EndpointRef::instance(format!("n{}", stages - 1), "o"),
            EndpointRef::own("o"),
        ));
        p.add_implementation(top).unwrap();
        prop_assert_eq!(p.validate(), Ok(()));

        let text = emit_project(&p);
        let q = parse_project(&text).expect("round trip");
        prop_assert_eq!(q.validate(), Ok(()));
        prop_assert_eq!(emit_project(&q), text);
    }

    /// The IR text parser never panics on garbage.
    #[test]
    fn ir_text_parser_never_panics(input in "\\PC{0,300}") {
        let _ = parse_project(&input);
    }

    /// The logical-type text parser never panics on garbage.
    #[test]
    fn type_text_parser_never_panics(input in "\\PC{0,120}") {
        let _ = tydi::spec::parse_logical_type(&input);
    }

    /// The VHDL structural checker never panics and is quiet on the
    /// empty file.
    #[test]
    fn vhdl_checker_never_panics(input in "\\PC{0,300}") {
        let _ = tydi::vhdl::check::check_vhdl(&input);
    }

    /// LoC counting: comment/blank lines never count, code lines always
    /// do, and the count is invariant under extra blank lines.
    #[test]
    fn loc_counting_invariants(
        lines in proptest::collection::vec(
            prop_oneof![
                Just("entity x is".to_string()),
                Just("-- comment".to_string()),
                Just("".to_string()),
                Just("   ".to_string()),
                Just("x <= y; -- trailing".to_string()),
            ],
            0..40,
        )
    ) {
        let text = lines.join("\n");
        let expected = lines
            .iter()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("--")
            })
            .count();
        prop_assert_eq!(tydi::vhdl::count_loc(&text), expected);
        // Blank-line padding never changes the count.
        let padded = lines.join("\n\n\n");
        prop_assert_eq!(tydi::vhdl::count_loc(&padded), expected);
    }
}
