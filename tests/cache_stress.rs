//! Multi-process stress tests on the shared `.tydic-cache`.
//!
//! The historic bugs these pin down: `ArtifactCache::save` wrote the
//! manifest non-atomically (a concurrent reader could load a
//! truncated manifest and silently drop the whole warm cache), the
//! garbage-collection sweep deleted artifacts a *concurrent* process
//! had just written (its manifest then referenced missing files), and
//! concurrent saves clobbered each other's entries instead of
//! merging. With the cross-process cache lock, atomic rename, and
//! merge-on-save, any number of `tydic` processes can share one cache
//! directory: every manifest-referenced artifact exists, and the
//! compiled output is byte-identical to a serial run.

use std::path::{Path, PathBuf};
use std::process::Command;

fn tydic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tydic"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tydic-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create workdir");
    dir
}

/// A distinct design per child so every process inserts its own
/// entries into the shared cache.
fn design(index: usize) -> String {
    format!(
        "package stress{index};\n\
         type B{index} = Stream(Bit({}));\n\
         streamlet s{index} {{ i : B{index} in, o : B{index} out, }}\n\
         impl x{index} of s{index} {{ i => o, }}\n",
        8 + index
    )
}

fn write_designs(dir: &Path, count: usize) -> Vec<PathBuf> {
    (0..count)
        .map(|index| {
            let path = dir.join(format!("d{index}.td"));
            std::fs::write(&path, design(index)).expect("write design");
            path
        })
        .collect()
}

/// `tydic build --emit ir` into `out`, against `cache` (or
/// `--no-cache` when `None`); returns the child for the caller to
/// wait on.
fn spawn_build(design: &Path, out: &Path, cache: Option<&Path>) -> std::process::Child {
    let mut cmd = tydic();
    cmd.arg("build")
        .arg(design)
        .arg("--emit")
        .arg("ir")
        .arg("-o")
        .arg(out);
    match cache {
        Some(dir) => cmd.arg("--cache-dir").arg(dir),
        None => cmd.arg("--no-cache"),
    };
    cmd.stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn tydic")
}

/// Every `elab <fingerprint> ...` line in the manifest must have its
/// artifact file on disk — a dangling reference is exactly the lost
/// update the cache lock exists to prevent.
fn assert_manifest_closed(cache: &Path) {
    let manifest =
        std::fs::read_to_string(cache.join("manifest.txt")).expect("manifest.txt parses as UTF-8");
    assert!(
        manifest.starts_with("tydic-cache "),
        "manifest header: {manifest}"
    );
    let mut elab_lines = 0usize;
    for line in manifest.lines() {
        if let Some(rest) = line.strip_prefix("elab ") {
            let fingerprint = rest.split_whitespace().next().expect("elab line has a key");
            let artifact = cache.join(format!("{fingerprint}.tirb"));
            assert!(
                artifact.exists(),
                "manifest references missing artifact {}:\n{manifest}",
                artifact.display()
            );
            elab_lines += 1;
        }
    }
    assert!(elab_lines > 0, "stress run produced elab entries");
    // Atomic-rename hygiene: no temp manifests left behind.
    for entry in std::fs::read_dir(cache).expect("read cache dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            !name.starts_with("manifest.txt.tmp"),
            "leftover temp manifest {name}"
        );
    }
}

#[test]
fn concurrent_builds_share_one_cache_without_losing_artifacts() {
    let dir = workdir("concurrent");
    let cache = dir.join("cache");
    let designs = write_designs(&dir, 6);

    // Serial reference, no cache involved.
    for (index, design) in designs.iter().enumerate() {
        let child = spawn_build(design, &dir.join(format!("serial{index}")), None);
        let out = child.wait_with_output().expect("wait serial");
        assert!(
            out.status.success(),
            "serial build {index}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Two concurrent waves on the shared cache: the first populates
    // it (six processes racing load-merge-save), the second re-reads
    // and re-persists warm entries concurrently.
    for wave in 0..2 {
        let children: Vec<_> = designs
            .iter()
            .enumerate()
            .map(|(index, design)| {
                spawn_build(
                    design,
                    &dir.join(format!("wave{wave}_{index}")),
                    Some(&cache),
                )
            })
            .collect();
        for (index, child) in children.into_iter().enumerate() {
            let out = child.wait_with_output().expect("wait concurrent");
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(out.status.success(), "wave {wave} build {index}: {stderr}");
            assert!(
                !stderr.contains("cannot persist cache"),
                "persist warning in wave {wave} build {index}: {stderr}"
            );
        }
    }

    assert_manifest_closed(&cache);

    // The cached concurrent output is byte-identical to the serial,
    // cache-free output.
    for (index, _) in designs.iter().enumerate() {
        let serial =
            std::fs::read(dir.join(format!("serial{index}/project.tir"))).expect("serial IR");
        for wave in 0..2 {
            let concurrent = std::fs::read(dir.join(format!("wave{wave}_{index}/project.tir")))
                .expect("concurrent IR");
            assert_eq!(
                serial, concurrent,
                "design {index} wave {wave} diverged from the serial build"
            );
        }
    }

    // And the cache is actually usable afterwards: a warm check of
    // every design succeeds.
    for design in &designs {
        let out = tydic()
            .arg("check")
            .arg(design)
            .arg("--cache-dir")
            .arg(&cache)
            .output()
            .expect("warm check");
        assert!(
            out.status.success(),
            "warm check: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_design_hammered_from_many_processes_converges() {
    let dir = workdir("hammer");
    let cache = dir.join("cache");
    let design = write_designs(&dir, 1).remove(0);

    // Eight processes compiling the *same* design race to insert the
    // same keys; merge-on-save must neither duplicate nor lose them.
    let children: Vec<_> = (0..8)
        .map(|index| spawn_build(&design, &dir.join(format!("out{index}")), Some(&cache)))
        .collect();
    for (index, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().expect("wait hammer");
        assert!(
            out.status.success(),
            "hammer build {index}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_manifest_closed(&cache);

    let reference = std::fs::read(dir.join("out0/project.tir")).expect("reference IR");
    for index in 1..8 {
        let other = std::fs::read(dir.join(format!("out{index}/project.tir"))).expect("IR");
        assert_eq!(reference, other, "process {index} produced different IR");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
