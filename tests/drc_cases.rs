//! T-II / DRC: the design-rule check scenarios the paper describes
//! (§III: identical logical types and exactly-once port usage; §IV-B:
//! strict type equality with the relaxation attribute; Table I: clock
//! domain and complexity compatibility).

use tydi::lang::{compile, CompileOptions, Severity};

fn compile_str(source: &str) -> Result<tydi::lang::CompileOutput, String> {
    compile(&[("case.td", source)], &CompileOptions::default()).map_err(|e| e.render())
}

fn expect_drc_error(source: &str, needle: &str) {
    let err = compile(&[("case.td", source)], &CompileOptions::default())
        .err()
        .unwrap_or_else(|| panic!("expected a DRC failure containing `{needle}`"));
    assert!(
        err.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains(needle)),
        "no error containing `{needle}`:\n{}",
        err.render()
    );
}

#[test]
fn rule1_identical_logical_types() {
    // "the logical types of two connected ports must be identical to
    // avoid misinterpreted data" (paper III).
    expect_drc_error(
        r#"
package t;
type A = Stream(Bit(8));
type B = Stream(Bit(16));
streamlet s { i : A in, o : B out, }
impl x of s { i => o, }
"#,
        "type mismatch",
    );
}

#[test]
fn rule1_strict_equality_distinguishes_same_width_types() {
    // The paper's motivating case: "two types with the same number of
    // hardware bits, but ... for different purposes and should not be
    // connected" (IV-B). Celsius and Fahrenheit are structurally
    // identical, so only the strict check can tell them apart.
    expect_drc_error(
        r#"
package t;
Group Celsius { degrees : Bit(16), }
Group Fahrenheit { degrees : Bit(16), }
type CStream = Stream(Celsius);
type FStream = Stream(Fahrenheit);
streamlet s { i : CStream in, o : FStream out, }
impl x of s { i => o, }
"#,
        "strict type equality",
    );

    // Structurally identical but differently declared: strict check.
    expect_drc_error(
        r#"
package t;
type A = Stream(Bit(8));
type B = Stream(Bit(8));
streamlet s { i : A in, o : B out, }
impl x of s { i => o, }
"#,
        "strict type equality",
    );
}

#[test]
fn strict_equality_relaxed_by_attribute() {
    let out = compile_str(
        r#"
package t;
type A = Stream(Bit(8));
type B = Stream(Bit(8));
streamlet s { i : A in, o : B out, }
@NoStrictType
impl x of s { i => o, }
"#,
    )
    .expect("relaxed connection compiles");
    assert!(out.project.implementation("x").is_some());
}

#[test]
fn rule2_port_usage_exactly_once() {
    // "each port must be used once under the handshaking mechanism"
    // (paper III) - with sugaring disabled, both under- and over-use
    // are DRC errors.
    let no_sugar = CompileOptions {
        enable_sugaring: false,
        ..CompileOptions::default()
    };
    let unused = r#"
package t;
type A = Stream(Bit(8));
streamlet s { i : A in, o : A out, o2 : A out, }
impl x of s { i => o, }
"#;
    let err = compile(&[("case.td", unused)], &no_sugar).unwrap_err();
    assert!(err
        .diagnostics
        .iter()
        .any(|d| d.message.contains("used 0 times")));

    let double = r#"
package t;
type A = Stream(Bit(8));
streamlet s { i : A in, o : A out, o2 : A out, }
impl x of s { i => o, i => o2, }
"#;
    let err = compile(&[("case.td", double)], &no_sugar).unwrap_err();
    assert!(err
        .diagnostics
        .iter()
        .any(|d| d.message.contains("used 2 times")));
}

#[test]
fn clock_domain_compatibility() {
    // "only two ports with the same clock domains can be connected
    // together" (paper Table I).
    expect_drc_error(
        r#"
package t;
type A = Stream(Bit(8));
streamlet s { i : A in !fast, o : A out !slow, }
impl x of s { i => o, }
"#,
        "clock domain mismatch",
    );

    let out = compile_str(
        r#"
package t;
type A = Stream(Bit(8));
streamlet s { i : A in !fast, o : A out !fast, }
impl x of s { i => o, }
"#,
    )
    .expect("same-domain connection compiles");
    let port = out.project.streamlet("s").unwrap().port("i").unwrap();
    assert_eq!(port.clock.name(), "fast");
}

#[test]
fn direction_legality() {
    expect_drc_error(
        r#"
package t;
type A = Stream(Bit(8));
streamlet s { i : A in, o : A out, }
impl x of s { o => i, }
"#,
        "direction error",
    );
}

#[test]
fn assert_blocks_bad_template_instantiations() {
    // Paper IV-A: "template writers can use if and assert to restrict
    // the logical type to avoid potential errors".
    let source = r#"
package t;
type A = Stream(Bit(8));
streamlet gen_s<width: int> { o : Stream(Bit(width)) out, }
impl gen_i<width: int> of gen_s<width> {
    assert(width % 8 == 0, "width must be a whole number of bytes"),
    instance nothing_actually(gen_i_leaf<width>),
    nothing_actually.o => o,
}
@builtin("std.const")
impl gen_i_leaf<width: int> of gen_s<width> external;
streamlet top_s { o : Stream(Bit(12)) out, }
impl top_i of top_s {
    instance g(gen_i<12>),
    g.o => o,
}
"#;
    let err = compile(&[("case.td", source)], &CompileOptions::default()).unwrap_err();
    assert!(
        err.diagnostics
            .iter()
            .any(|d| d.message.contains("whole number of bytes")),
        "{}",
        err.render()
    );
}

#[test]
fn diagnostics_carry_source_spans() {
    let err = compile(
        &[(
            "case.td",
            r#"
package t;
type A = Stream(Bit(8));
type B = Stream(Bit(16));
streamlet s { i : A in, o : B out, }
impl x of s { i => o, }
"#,
        )],
        &CompileOptions::default(),
    )
    .unwrap_err();
    let rendered = err.render();
    // The rendered diagnostic points into the file and excerpts the
    // offending connection.
    assert!(rendered.contains("case.td:6"), "{rendered}");
    assert!(rendered.contains("i => o"), "{rendered}");
}
