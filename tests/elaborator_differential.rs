//! Differential test: the hash-consed elaborator versus the frozen
//! seed-path elaborator (`tydi_lang::baseline`).
//!
//! For every cookbook design (compiled together with the standard
//! library) both elaborators must produce **byte-identical IR text**,
//! the same diagnostics, and the same template statistics. This is
//! the correctness net under the `TypeStore` refactor: any semantic
//! drift in evaluation order, memoisation, mangling, or port typing
//! shows up here as a text diff of the emitted project.

use std::path::PathBuf;
use tydi::ir::text::emit_project;
use tydi::lang::baseline::elaborate_baseline;
use tydi::lang::diagnostics::has_errors;
use tydi::lang::instantiate::elaborate;
use tydi::lang::parser::parse_package;
use tydi::stdlib::with_stdlib;

fn cookbook_designs() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cookbook");
    let mut files: Vec<String> = std::fs::read_dir(&dir)
        .expect("cookbook dir")
        .filter_map(|e| {
            let name = e.expect("entry").file_name().to_string_lossy().to_string();
            name.ends_with(".td").then_some(name)
        })
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|name| {
            let text = std::fs::read_to_string(dir.join(&name)).expect("read design");
            (name, text)
        })
        .collect()
}

fn parse_all(sources: &[(String, String)]) -> Vec<tydi::lang::ast::Package> {
    let mut packages = Vec::new();
    for (index, (_, text)) in sources.iter().enumerate() {
        let (package, diags) = parse_package(index, text);
        assert!(!has_errors(&diags), "parse errors: {diags:?}");
        if let Some(p) = package {
            packages.push(p);
        }
    }
    packages
}

#[test]
fn hash_consed_elaboration_matches_seed_path_on_the_cookbook() {
    for (name, text) in cookbook_designs() {
        let sources = with_stdlib(&[(name.as_str(), text.as_str())]);
        let packages = parse_all(&sources);

        let (new_project, new_info, new_diags) = elaborate(packages.clone(), "diff");
        let (seed_project, seed_info, seed_diags) = elaborate_baseline(packages, "diff");

        let new_messages: Vec<&str> = new_diags.iter().map(|d| d.message.as_str()).collect();
        let seed_messages: Vec<&str> = seed_diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(new_messages, seed_messages, "{name}: diagnostics drifted");
        assert_eq!(
            emit_project(&new_project),
            emit_project(&seed_project),
            "{name}: hash-consed elaboration drifted from the seed path"
        );
        assert_eq!(
            new_info.template_instantiations, seed_info.template_instantiations,
            "{name}: instantiation counts drifted"
        );
        assert_eq!(
            new_info.template_cache_hits, seed_info.template_cache_hits,
            "{name}: memoisation counts drifted"
        );
        assert_eq!(
            new_info.connection_span_count(),
            seed_info.connection_span_count(),
            "{name}: connection span tables drifted"
        );
    }
}

#[test]
fn differential_holds_on_error_paths_too() {
    // Designs that fail elaboration must fail identically.
    let broken = r#"
package broken;
type T = Stream(Bit(nope));
streamlet s { i : T in, o : T out, }
impl x of s { i => o, }
assert(1 == 2, "both paths see me");
"#;
    let (pkg, diags) = parse_package(0, broken);
    assert!(!has_errors(&diags));
    let packages = vec![pkg.unwrap()];
    let (_, _, new_diags) = elaborate(packages.clone(), "diff");
    let (_, _, seed_diags) = elaborate_baseline(packages, "diff");
    let new_messages: Vec<&str> = new_diags.iter().map(|d| d.message.as_str()).collect();
    let seed_messages: Vec<&str> = seed_diags.iter().map(|d| d.message.as_str()).collect();
    assert!(!new_messages.is_empty());
    assert_eq!(new_messages, seed_messages);
}
