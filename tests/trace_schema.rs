//! Schema tests on `tydic --trace` Chrome trace-event files, run
//! against the real binary.
//!
//! Pinned properties:
//!
//! * the file is one valid JSON document shaped like
//!   `{"traceEvents": [...]}` with `ph`/`cat`/`name`/`ts`/`pid`/`tid`
//!   on every event;
//! * `B`/`E` events nest with stack discipline per thread track;
//! * a compile records all four pipeline stages and spans from at
//!   least four crates;
//! * the coarse span multiset is identical at `TYDI_THREADS=1` and
//!   `8` — only thread ids and timestamps may differ;
//! * at `TYDI_THREADS=8` the per-package elaboration spans land on
//!   distinct worker-thread tracks;
//! * emitted artifacts are byte-identical with tracing off, coarse,
//!   and fine.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::Command;
use tydi_obs::json::{parse, Json};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tydic-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create workdir");
    dir
}

fn tydic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tydic"))
}

fn cookbook(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("cookbook")
        .join(name)
}

/// Writes the 14-package import DAG the parallel-elaboration bench
/// generates (8 of the packages share no import edge, so they
/// elaborate concurrently) and returns the source paths.
fn write_dag(dir: &Path) -> Vec<PathBuf> {
    tydi_bench::package_dag_sources(8)
        .into_iter()
        .map(|(name, text)| {
            let path = dir.join(name);
            std::fs::write(&path, text).expect("write dag source");
            path
        })
        .collect()
}

/// One trace event, decoded from the Chrome document.
#[derive(Debug, Clone, PartialEq)]
struct Event {
    ph: String,
    cat: String,
    name: String,
    tid: u64,
}

/// Loads a trace file, checking the document shape and the required
/// fields of every event.
fn load_events(path: &Path) -> Vec<Event> {
    let text = std::fs::read_to_string(path).expect("read trace file");
    let doc = parse(&text).unwrap_or_else(|e| panic!("trace is not valid JSON: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("top-level `traceEvents` array");
    assert!(!events.is_empty(), "trace must not be empty");
    events
        .iter()
        .map(|event| {
            let field = |key: &str| {
                event
                    .get(key)
                    .unwrap_or_else(|| panic!("event lacks `{key}`: {event:?}"))
            };
            assert!(field("ts").as_f64().is_some(), "ts must be numeric");
            assert_eq!(field("pid").as_f64(), Some(1.0), "single-process trace");
            Event {
                ph: field("ph").as_str().expect("ph string").to_string(),
                cat: field("cat").as_str().expect("cat string").to_string(),
                name: field("name").as_str().expect("name string").to_string(),
                tid: field("tid").as_f64().expect("tid numeric") as u64,
            }
        })
        .collect()
}

/// Every `B` must be closed by an `E` of the same name on the same
/// thread track, in LIFO order.
fn assert_balanced(events: &[Event]) {
    let mut stacks: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for event in events {
        match event.ph.as_str() {
            "B" => stacks.entry(event.tid).or_default().push(&event.name),
            "E" => {
                let open = stacks
                    .get_mut(&event.tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("E without B on tid {}: {event:?}", event.tid));
                assert_eq!(
                    open, event.name,
                    "mismatched span close on tid {}",
                    event.tid
                );
            }
            "i" => {}
            other => panic!("unexpected phase `{other}`: {event:?}"),
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
}

/// The thread-independent fingerprint of a trace: the sorted multiset
/// of (phase, category, name) triples.
fn span_multiset(events: &[Event]) -> Vec<(String, String, String)> {
    let mut set: Vec<_> = events
        .iter()
        .map(|e| (e.ph.clone(), e.cat.clone(), e.name.clone()))
        .collect();
    set.sort();
    set
}

/// Runs a traced `tydic build` of the package DAG at the given thread
/// count and returns the decoded events.
fn traced_dag_build(dir: &Path, threads: &str) -> Vec<Event> {
    let sources = write_dag(dir);
    let trace = dir.join(format!("trace-{threads}.json"));
    let out = tydic()
        .arg("build")
        .args(&sources)
        .arg("--no-cache")
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .arg("-o")
        .arg(dir.join(format!("out-{threads}")))
        .arg("--trace")
        .arg(&trace)
        .env("TYDI_THREADS", threads)
        .output()
        .expect("run tydic");
    assert!(
        out.status.success(),
        "tydic build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let events = load_events(&trace);
    assert_balanced(&events);
    events
}

#[test]
fn build_trace_covers_stages_and_crates_at_any_thread_count() {
    let dir = workdir("build");
    let single = traced_dag_build(&dir, "1");
    let parallel = traced_dag_build(&dir, "8");

    for events in [&single, &parallel] {
        let names: BTreeSet<&str> = events.iter().map(|e| e.name.as_str()).collect();
        for stage in ["stage:parse", "stage:elaborate", "stage:sugar", "stage:drc"] {
            assert!(names.contains(stage), "missing `{stage}` in {names:?}");
        }
        let cats: BTreeSet<&str> = events.iter().map(|e| e.cat.as_str()).collect();
        assert!(
            cats.len() >= 4,
            "a build trace must span >= 4 crates: {cats:?}"
        );
        assert!(cats.contains("core"), "core spans missing: {cats:?}");
        assert!(
            names.iter().any(|n| n.starts_with("elab:")),
            "per-package elaboration spans missing"
        );
        assert!(
            names.iter().any(|n| n.starts_with("emit:")),
            "per-module emission spans missing"
        );
    }

    // Coarse span content is deterministic: thread count may only move
    // spans between tracks, never add, drop, or rename them.
    assert_eq!(
        span_multiset(&single),
        span_multiset(&parallel),
        "coarse trace content must not depend on TYDI_THREADS"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_elaboration_lands_on_distinct_thread_tracks() {
    let dir = workdir("tracks");
    let events = traced_dag_build(&dir, "8");
    let elab_tids: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.ph == "B" && e.name.starts_with("elab:"))
        .map(|e| e.tid)
        .collect();
    assert!(
        elab_tids.len() >= 2,
        "8 independent packages at TYDI_THREADS=8 must elaborate on \
         more than one worker track: {elab_tids:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sim_trace_records_scenario_lanes_and_fine_firings() {
    let dir = workdir("sim");
    let trace = dir.join("sim.json");
    let run = |fine: bool| {
        let mut cmd = tydic();
        cmd.arg("sim")
            .arg(cookbook("09_parallelize.td"))
            .arg("--top")
            .arg("one_per_cycle_i")
            .arg("--no-cache")
            .arg("--cache-dir")
            .arg(dir.join("cache"))
            .arg("--trace")
            .arg(&trace);
        if fine {
            cmd.arg("--trace-fine");
        }
        let out = cmd.output().expect("run tydic sim");
        assert!(
            out.status.success(),
            "tydic sim failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let events = load_events(&trace);
        assert_balanced(&events);
        events
    };

    let coarse = run(false);
    let names: BTreeSet<&str> = coarse.iter().map(|e| e.name.as_str()).collect();
    assert!(
        names.iter().any(|n| n.starts_with("flatten:")),
        "hierarchy flattening span missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("sim:")),
        "per-scenario lanes missing: {names:?}"
    );
    assert!(
        !names.iter().any(|n| n.starts_with("fire:")),
        "per-firing spans are fine-level and must stay out of coarse traces"
    );

    let fine = run(true);
    assert!(
        fine.iter().any(|e| e.name.starts_with("fire:")),
        "--trace-fine must record per-component firings"
    );
    assert!(
        fine.len() > coarse.len(),
        "fine traces must strictly extend coarse ones"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_trace_records_analysis_spans() {
    let dir = workdir("analyze");
    let trace = dir.join("analyze.json");
    let out = tydic()
        .arg("analyze")
        .arg(cookbook("13_analyze.td"))
        .arg("--no-cache")
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .arg("--trace")
        .arg(&trace)
        .output()
        .expect("run tydic analyze");
    assert!(
        out.status.success(),
        "tydic analyze failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let events = load_events(&trace);
    assert_balanced(&events);
    let cats: BTreeSet<&str> = events.iter().map(|e| e.cat.as_str()).collect();
    assert!(
        cats.contains("tydi-analyze"),
        "analyzer spans missing: {cats:?}"
    );
    assert!(
        events.iter().any(|e| e.name.starts_with("analyze:")),
        "per-top analysis span missing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracing_never_changes_emitted_artifacts() {
    let dir = workdir("artifacts");
    let sources = write_dag(&dir);
    let emit = |tag: &str, trace_args: &[&str]| -> BTreeMap<String, Vec<u8>> {
        let out_dir = dir.join(tag);
        let out = tydic()
            .arg("build")
            .args(&sources)
            .arg("--no-cache")
            .arg("--cache-dir")
            .arg(dir.join("cache"))
            .arg("-o")
            .arg(&out_dir)
            .args(trace_args)
            .output()
            .expect("run tydic");
        assert!(
            out.status.success(),
            "tydic build failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let mut files = BTreeMap::new();
        for entry in std::fs::read_dir(&out_dir).expect("read out dir") {
            let path = entry.expect("dir entry").path();
            files.insert(
                path.file_name().unwrap().to_string_lossy().to_string(),
                std::fs::read(&path).expect("read artifact"),
            );
        }
        assert!(!files.is_empty(), "build must emit files");
        files
    };

    let plain = emit("plain", &[]);
    let coarse_trace = dir.join("coarse.json");
    let coarse = emit("coarse", &["--trace", coarse_trace.to_str().unwrap()]);
    let fine_trace = dir.join("fine.json");
    let fine = emit(
        "fine",
        &["--trace", fine_trace.to_str().unwrap(), "--trace-fine"],
    );
    assert_eq!(plain, coarse, "coarse tracing changed emitted artifacts");
    assert_eq!(plain, fine, "fine tracing changed emitted artifacts");
    let _ = std::fs::remove_dir_all(&dir);
}
