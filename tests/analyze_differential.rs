//! Differential validation of the static analyzer (`tydi-analyze`)
//! against the event-driven simulator, over every cookbook design.
//!
//! The analyzer promises *sound upper bounds*: for every output port
//! the predicted elements-per-cycle must dominate whatever the
//! simulator actually measures, and when every service model is exact
//! the bound must also be *tight* (the simulator reaches at least half
//! of it on a free-running stimulus). Deadlocks found dynamically must
//! be covered statically: the blocked channels the simulator names
//! must fall inside the analyzer's stall cones, and the report must
//! carry at least one warning-or-worse hazard.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::process::Command;

use tydi::analyze::{analyze, AnalyzeOptions, Confidence, Severity};
use tydi::lang::{compile, CompileOptions};
use tydi::sim::{BehaviorRegistry, Packet, Simulator, StopReason};
use tydi::stdlib::{stdlib_source, STDLIB_FILE_NAME};

const FEED_PACKETS: u64 = 128;
const MAX_CYCLES: u64 = 200_000;
/// Slack for measured-vs-predicted comparisons (start-up transients,
/// drain cycles, fixpoint epsilon).
const DOMINANCE_SLACK: f64 = 0.02;

fn cookbook_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cookbook")
}

fn cookbook_files() -> Vec<String> {
    let mut files: Vec<String> = fs::read_dir(cookbook_dir())
        .expect("cookbook directory")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .to_string()
        })
        .filter(|n| n.ends_with(".td"))
        .collect();
    files.sort();
    files
}

fn compile_cookbook(file: &str) -> tydi::lang::CompileOutput {
    let path = cookbook_dir().join(file);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let sources = [
        (STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()),
        (file.to_string(), text),
    ];
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile(&refs, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("cookbook {file} failed to compile:\n{e}"))
}

/// Every simulatable `(file, top)` pair in the cookbook, with its
/// compiled project. Non-simulatable candidates (abstract tops,
/// behaviour-less externals) are analyzed but skipped for the sim leg.
fn run_pair<F>(mut check: F) -> (usize, usize)
where
    F: FnMut(&str, &str, &tydi::analyze::AnalysisReport, &mut Simulator, &tydi::sim::RunResult),
{
    let registry = BehaviorRegistry::with_std();
    let mut analyzed = 0usize;
    let mut simulated = 0usize;
    for file in cookbook_files() {
        let output = compile_cookbook(&file);
        for top in output.project.top_level_candidates() {
            // Behaviour-less externals cannot be flattened — neither
            // the simulator nor the analyzer can say anything about
            // them, so they are out of scope for the differential.
            let Ok(report) = analyze(
                &output.project,
                &output.index,
                top,
                &AnalyzeOptions::default(),
            ) else {
                continue;
            };
            analyzed += 1;
            let Ok(mut sim) = Simulator::new(&output.project, top, &registry) else {
                continue;
            };
            for port in sim.input_ports() {
                sim.feed(&port, (0..FEED_PACKETS).map(|i| Packet::data(i as i64)))
                    .unwrap_or_else(|e| panic!("{file}: feed `{top}.{port}`: {e}"));
            }
            let result = sim.run(MAX_CYCLES);
            simulated += 1;
            check(&file, top, &report, &mut sim, &result);
        }
    }
    (analyzed, simulated)
}

/// Soundness: the static bound dominates the measured throughput of
/// every output port, on every cookbook design. Tightness: when the
/// analyzer claims exact confidence and the run completed, the
/// simulator gets within 2x of the bound.
#[test]
fn predicted_bounds_dominate_measured_throughput() {
    let mut dominated = 0usize;
    let mut tightness_checked = 0usize;
    let (analyzed, simulated) = run_pair(|file, top, report, sim, result| {
        if matches!(result.reason, StopReason::Deadlocked { .. }) {
            return; // covered by `sim_deadlocks_are_flagged_statically`
        }
        let window = sim.active_cycles().max(1) as f64;
        for port in sim.output_ports() {
            let delivered = sim.outputs(&port).expect("output port").len() as f64;
            if delivered == 0.0 {
                continue;
            }
            let measured = delivered / window;
            let bound = report
                .output(&port)
                .unwrap_or_else(|| panic!("{file}: `{top}` has no bound for output `{port}`"));
            let predicted = bound.elements_per_cycle;
            assert!(
                measured <= predicted + DOMINANCE_SLACK,
                "{file}: `{top}.{port}` measured {measured:.4} elements/cycle \
                 exceeds the static bound {predicted:.4}"
            );
            dominated += 1;
            if report.confidence == Confidence::Exact && result.finished && delivered >= 16.0 {
                assert!(
                    measured >= predicted * 0.5,
                    "{file}: `{top}.{port}` bound {predicted:.4} is not tight: \
                     simulator only reached {measured:.4} elements/cycle"
                );
                tightness_checked += 1;
            }
        }
    });
    assert!(analyzed >= 10, "only {analyzed} (file, top) pairs analyzed");
    assert!(simulated >= 8, "only {simulated} pairs simulated");
    assert!(dominated >= 8, "only {dominated} output bounds compared");
    assert!(
        tightness_checked >= 3,
        "only {tightness_checked} exact bounds tightness-checked"
    );
}

/// Completeness: every deadlock the simulator observes must be visible
/// statically — a warning-or-worse hazard in the report, and every
/// blocked channel inside some stall cone.
#[test]
fn sim_deadlocks_are_flagged_statically() {
    let mut deadlocks = 0usize;
    run_pair(|file, top, report, _sim, result| {
        let StopReason::Deadlocked {
            blocked_channels, ..
        } = &result.reason
        else {
            return;
        };
        deadlocks += 1;
        assert!(
            report.hazards_at_least(Severity::Warning).count() > 0,
            "{file}: `{top}` deadlocked in simulation but the analyzer \
             reported no hazards at warning or above"
        );
        let cones: BTreeSet<&str> = report
            .stall_cones
            .iter()
            .flat_map(|c| c.channels.iter().map(String::as_str))
            .collect();
        for channel in blocked_channels {
            assert!(
                cones.contains(channel.as_str()),
                "{file}: `{top}` blocked channel `{channel}` is outside \
                 every static stall cone"
            );
        }
    });
    // cookbook/13_analyze.td guarantees at least one real deadlock.
    assert!(
        deadlocks >= 1,
        "no cookbook design deadlocked; the suite lost its completeness witness"
    );
}

/// Name parity: the analyzer reports exactly the channels the
/// simulator instruments, under exactly the same names (both reuse
/// `tydi_sim::graph::flatten`). Without this, the stall-cone subset
/// check above would be vacuous.
#[test]
fn channel_names_agree_between_analyzer_and_simulator() {
    let (analyzed, simulated) = run_pair(|file, top, report, sim, _result| {
        let static_names: BTreeSet<&str> =
            report.channels.iter().map(|c| c.name.as_str()).collect();
        let sim_stats = sim.channel_stats();
        let dynamic_names: BTreeSet<&str> = sim_stats.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            static_names, dynamic_names,
            "{file}: `{top}` channel names diverge between analyzer and simulator"
        );
        for ch in &report.channels {
            let stat = sim_stats.iter().find(|s| s.name == ch.name).unwrap();
            assert_eq!(
                ch.capacity, stat.capacity,
                "{file}: `{top}` channel `{}` capacity diverges",
                ch.name
            );
        }
    });
    assert!(analyzed >= 10 && simulated >= 8);
}

/// The CLI JSON report is byte-identical whatever `TYDI_THREADS` says:
/// the analysis itself is sequential and the parallel elaborator must
/// not perturb channel ordering or rate values.
#[test]
fn analyze_json_is_stable_across_thread_counts() {
    for file in cookbook_files() {
        // Skip files whose default top cannot be flattened (see
        // `run_pair`) — the CLI exits non-zero on those.
        let output = compile_cookbook(&file);
        let Some(top) = output.project.top_level_candidates().first().cloned() else {
            continue;
        };
        if analyze(
            &output.project,
            &output.index,
            top,
            &AnalyzeOptions::default(),
        )
        .is_err()
        {
            continue;
        }
        let path = cookbook_dir().join(&file);
        let mut legs = Vec::new();
        for threads in ["1", "8"] {
            let out = Command::new(env!("CARGO_BIN_EXE_tydic"))
                .arg("analyze")
                .arg(&path)
                .args(["--format", "json", "--no-cache"])
                .env("TYDI_THREADS", threads)
                .output()
                .expect("run tydic analyze");
            assert!(
                out.status.success(),
                "tydic analyze {file} (TYDI_THREADS={threads}) failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            legs.push(out.stdout);
        }
        assert_eq!(
            legs[0], legs[1],
            "{file}: analyze JSON differs between TYDI_THREADS=1 and 8"
        );
        let text = String::from_utf8(legs[0].clone()).expect("utf-8 json");
        assert!(
            text.contains("\"outputs\""),
            "{file}: JSON report misses the outputs section"
        );
    }
}
