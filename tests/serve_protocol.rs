//! End-to-end tests of the `tydic serve` daemon over its unix-socket
//! job protocol, against the real binary.
//!
//! Unix-only: the daemon's transport is a unix domain socket.
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use tydi_serve::client::Client;
use tydi_serve::protocol::{JobKind, JobRequest};

const GOOD: &str = "package demo;\ntype Byte = Stream(Bit(8));\n\
                    streamlet wire_s { i : Byte in, o : Byte out, }\n\
                    impl wire_i of wire_s { i => o, }\n";
const BROKEN: &str = "package demo;\nconst x = ;\n";

fn tydic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tydic"))
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tydic-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create workdir");
    dir
}

/// A daemon child plus the paths to talk to it; shut down on drop so
/// a failing test never leaks a resident process.
struct Daemon {
    child: Child,
    cache_dir: PathBuf,
    socket: PathBuf,
}

impl Daemon {
    fn spawn(cache_dir: &Path) -> Daemon {
        Daemon::spawn_with(cache_dir, &[])
    }

    fn spawn_with(cache_dir: &Path, extra_args: &[&str]) -> Daemon {
        let child = tydic()
            .arg("serve")
            .arg("--cache-dir")
            .arg(cache_dir)
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let socket = cache_dir.join("serve.sock");
        let deadline = Instant::now() + Duration::from_secs(10);
        while Client::connect(&socket).is_err() {
            assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
        Daemon {
            child,
            cache_dir: cache_dir.to_path_buf(),
            socket,
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.socket).expect("connect")
    }

    /// Graceful shutdown; asserts the daemon exits and cleans its
    /// socket up.
    fn shutdown(mut self) {
        let mut client = self.client();
        let response = client
            .request(&JobRequest::new(JobKind::Shutdown))
            .expect("shutdown response");
        assert!(response.ok);
        let status = self.child.wait().expect("daemon exit");
        assert!(status.success(), "daemon exit status: {status:?}");
        assert!(
            !self.socket.exists(),
            "socket removed on shutdown: {:?}",
            self.socket
        );
        assert!(
            !self.cache_dir.join("serve.pid").exists(),
            "pid file removed on shutdown"
        );
        // Disarm the drop killer.
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn check_request(file: &Path) -> JobRequest {
    let mut request = JobRequest::new(JobKind::Check);
    request.files = vec![file.display().to_string()];
    request
}

#[test]
fn daemon_serves_warm_checks_and_survives_failing_compiles() {
    let dir = workdir("warm");
    let good = dir.join("good.td");
    let broken = dir.join("broken.td");
    std::fs::write(&good, GOOD).unwrap();
    std::fs::write(&broken, BROKEN).unwrap();
    let daemon = Daemon::spawn(&dir.join("cache"));

    let mut client = daemon.client();
    let cold = client.request(&check_request(&good)).expect("cold check");
    assert!(cold.ok, "cold check: {}", cold.stderr);
    assert!(cold.stderr.contains("ok: "), "summary: {}", cold.stderr);

    // Second compile of the same design is served from the resident
    // cache: the elaborate stage reports reuse.
    let warm = client.request(&check_request(&good)).expect("warm check");
    assert!(warm.ok && warm.warm, "warm flag set: {}", warm.stderr);

    // A failing compile answers with diagnostics and a nonzero exit
    // code — and the daemon keeps serving afterwards.
    let failed = client
        .request(&check_request(&broken))
        .expect("broken check");
    assert!(!failed.ok);
    assert_eq!(failed.exit_code, 1);
    assert!(
        failed.stderr.contains("error:"),
        "stderr: {}",
        failed.stderr
    );
    let error = failed
        .diagnostics
        .iter()
        .find(|d| d.severity == "error")
        .expect("structured error diagnostic");
    assert!(error.line > 0 && error.col > 0, "span mapped: {error:?}");

    let after = client
        .request(&check_request(&good))
        .expect("check after failure");
    assert!(after.ok && after.warm);

    // Per-request metrics: the warm response embeds this job's own
    // timings namespace.
    let metrics = tydi_obs::json::parse(&after.metrics_json).expect("metrics parse");
    assert!(
        metrics.get("timings.wall_ms").is_some(),
        "metrics: {}",
        after.metrics_json
    );

    // Status reflects the served jobs.
    let status = client
        .request(&JobRequest::new(JobKind::Status))
        .expect("status")
        .status
        .expect("status payload");
    assert!(status.requests >= 4, "requests served: {status:?}");
    assert!(status.elab_entries >= 1, "resident artifacts: {status:?}");
    assert!(status.pid > 0 && status.uptime_ms >= 0.0);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_handles_concurrent_clients() {
    let dir = workdir("concurrent");
    let daemon = Daemon::spawn(&dir.join("cache"));
    let files: Vec<PathBuf> = (0..4)
        .map(|index| {
            let path = dir.join(format!("d{index}.td"));
            std::fs::write(
                &path,
                format!(
                    "package p{index};\ntype B = Stream(Bit(8));\n\
                     streamlet s {{ i : B in, o : B out, }}\nimpl x of s {{ i => o, }}\n"
                ),
            )
            .unwrap();
            path
        })
        .collect();

    let socket = daemon.socket.clone();
    let handles: Vec<_> = files
        .iter()
        .cloned()
        .map(|file| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                for _ in 0..3 {
                    let response = client.request(&check_request(&file)).expect("request");
                    assert!(response.ok, "concurrent check: {}", response.stderr);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    let status = daemon
        .client()
        .request(&JobRequest::new(JobKind::Status))
        .expect("status")
        .status
        .expect("status payload");
    assert_eq!(status.requests, 12, "all jobs accounted: {status:?}");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `tydic --daemon` vs plain `tydic`: diagnostics and artifacts must
/// be byte-identical (the summary line embeds a wall time, so it is
/// the one line allowed to differ).
#[test]
fn daemon_delegation_is_byte_identical_to_in_process() {
    let dir = workdir("identical");
    let good = dir.join("good.td");
    let broken = dir.join("broken.td");
    std::fs::write(&good, GOOD).unwrap();
    std::fs::write(&broken, BROKEN).unwrap();
    let cache = dir.join("cache");
    let daemon = Daemon::spawn(&cache);

    // Failing compile: stderr is pure diagnostics, compare verbatim.
    let plain = tydic()
        .arg("check")
        .arg(&broken)
        .arg("--no-cache")
        .output()
        .expect("plain check");
    let delegated = tydic()
        .arg("check")
        .arg(&broken)
        .arg("--daemon")
        .arg("--cache-dir")
        .arg(&cache)
        .output()
        .expect("daemon check");
    assert_eq!(plain.status.code(), Some(1));
    assert_eq!(delegated.status.code(), Some(1));
    assert_eq!(
        String::from_utf8_lossy(&plain.stderr),
        String::from_utf8_lossy(&delegated.stderr),
        "failing diagnostics byte-identical"
    );

    // Successful build: emitted IR text on stdout is byte-identical;
    // stderr matches apart from the timing in the summary line.
    let plain = tydic()
        .arg("build")
        .arg(&good)
        .arg("--emit")
        .arg("ir")
        .arg("--no-cache")
        .output()
        .expect("plain build");
    let delegated = tydic()
        .arg("build")
        .arg(&good)
        .arg("--emit")
        .arg("ir")
        .arg("--daemon")
        .arg("--cache-dir")
        .arg(&cache)
        .output()
        .expect("daemon build");
    assert!(plain.status.success() && delegated.status.success());
    assert_eq!(plain.stdout, delegated.stdout, "emitted IR byte-identical");
    let strip_timing = |stderr: &[u8]| -> Vec<String> {
        String::from_utf8_lossy(stderr)
            .lines()
            .map(|line| match line.split_once(" in ") {
                Some((head, _)) if line.starts_with("ok: ") => head.to_string(),
                _ => line.to_string(),
            })
            .collect()
    };
    assert_eq!(
        strip_timing(&plain.stderr),
        strip_timing(&delegated.stderr),
        "stderr identical apart from the wall time"
    );

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_falls_back_in_process_when_unreachable() {
    let dir = workdir("fallback");
    let good = dir.join("good.td");
    std::fs::write(&good, GOOD).unwrap();

    // TYDIC_NO_SPAWN forbids starting a daemon, and none is running:
    // the compile must still succeed, in-process, with a warning.
    let out = tydic()
        .arg("check")
        .arg(&good)
        .arg("--daemon")
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .env("TYDIC_NO_SPAWN", "1")
        .output()
        .expect("fallback check");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fallback: {stderr}");
    assert!(
        stderr.contains("warning: daemon unavailable"),
        "fallback warned: {stderr}"
    );
    assert!(stderr.contains("ok: "), "compile ran in-process: {stderr}");
    assert!(
        !dir.join("cache").join("serve.sock").exists(),
        "no daemon was spawned"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn timed_out_job_answers_structured_timeout_and_daemon_keeps_serving() {
    let dir = workdir("timeout");
    let good = dir.join("good.td");
    std::fs::write(&good, GOOD).unwrap();
    let daemon = Daemon::spawn_with(&dir.join("cache"), &["--job-timeout", "200"]);

    let mut client = daemon.client();
    let mut slow = check_request(&good);
    slow.test_sleep_ms = Some(1200);
    let response = client.request(&slow).expect("timeout response");
    assert!(!response.ok);
    assert_eq!(response.error_kind.as_deref(), Some("timeout"));
    assert_eq!(response.exit_code, 124);
    assert!(
        response.stderr.contains("wall-clock limit"),
        "stderr: {}",
        response.stderr
    );

    // The daemon keeps serving: once the abandoned job finishes its
    // sleep and releases the cache, the next (fast) job succeeds. Wait
    // out the remainder so the follow-up doesn't spend its own
    // wall-clock budget queueing on the cache lock.
    std::thread::sleep(Duration::from_millis(1200));
    let after = client.request(&check_request(&good)).expect("after");
    assert!(after.ok, "served after timeout: {}", after.stderr);

    // The timeout is visible in status, rendered from the daemon's
    // metrics registry.
    let status = client
        .request(&JobRequest::new(JobKind::Status))
        .expect("status")
        .status
        .expect("status payload");
    assert_eq!(status.jobs_timed_out, 1, "{status:?}");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturated_daemon_answers_busy_and_backoff_recovers() {
    let dir = workdir("busy");
    let good = dir.join("good.td");
    std::fs::write(&good, GOOD).unwrap();
    let daemon = Daemon::spawn_with(&dir.join("cache"), &["--max-jobs", "1"]);

    // Occupy the single slot with a sleeping job on its own connection.
    let mut slow = check_request(&good);
    slow.test_sleep_ms = Some(1500);
    let socket = daemon.socket.clone();
    let holder = std::thread::spawn(move || {
        let mut client = Client::connect(&socket).expect("connect holder");
        client.request(&slow).expect("slow job response")
    });
    std::thread::sleep(Duration::from_millis(250)); // let the slot fill

    // A plain request is refused with a structured `busy`.
    let mut client = daemon.client();
    let refused = client.request(&check_request(&good)).expect("busy answer");
    assert!(!refused.ok);
    assert_eq!(refused.error_kind.as_deref(), Some("busy"));
    assert_eq!(refused.exit_code, 75);

    // The retrying client backs off until the slot frees, then wins.
    let retried = client
        .request_with_retry(&check_request(&good))
        .expect("retried answer");
    assert!(
        retried.ok,
        "backoff recovered: {} / {:?}",
        retried.stderr, retried.error_kind
    );

    let held = holder.join().expect("holder thread");
    assert!(held.ok, "the slow job itself succeeded: {}", held.stderr);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_is_isolated_and_counted() {
    let dir = workdir("panic");
    let good = dir.join("good.td");
    std::fs::write(&good, GOOD).unwrap();
    let daemon = Daemon::spawn(&dir.join("cache"));

    let mut client = daemon.client();
    let mut crashing = check_request(&good);
    crashing.test_panic = true;
    let response = client.request(&crashing).expect("panic response");
    assert!(!response.ok);
    assert_eq!(response.error_kind.as_deref(), Some("internal_error"));
    assert_eq!(response.exit_code, 70);

    // The daemon survived and serves byte-identical work afterwards.
    let first = client.request(&check_request(&good)).expect("first");
    let second = client.request(&check_request(&good)).expect("second");
    assert!(first.ok && second.ok);
    assert_eq!(first.stdout, second.stdout);

    let status = client
        .request(&JobRequest::new(JobKind::Status))
        .expect("status")
        .status
        .expect("status payload");
    assert_eq!(status.jobs_panicked, 1, "{status:?}");
    assert_eq!(status.jobs_active, 0, "panicked job released its slot");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_shutdown_exits_cleanly_and_persists_the_cache() {
    let dir = workdir("idle");
    let good = dir.join("good.td");
    std::fs::write(&good, GOOD).unwrap();
    let cache = dir.join("cache");
    let mut daemon = Daemon::spawn_with(&cache, &["--idle-timeout", "400"]);

    // One compile dirties the resident cache.
    let response = daemon
        .client()
        .request(&check_request(&good))
        .expect("check");
    assert!(response.ok, "stderr: {}", response.stderr);

    // The status response advertises the pending idle deadline.
    let status = daemon
        .client()
        .request(&JobRequest::new(JobKind::Status))
        .expect("status")
        .status
        .expect("status payload");
    let deadline = status.idle_deadline_ms.expect("idle deadline advertised");
    assert!(deadline <= 400.0, "deadline within the limit: {status:?}");

    // Left alone, the daemon exits on its own, cleanly.
    let exit_deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = daemon.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < exit_deadline,
            "daemon never idle-shut-down"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "idle shutdown exit: {status:?}");
    assert!(!daemon.socket.exists(), "socket removed");
    assert!(!cache.join("serve.pid").exists(), "pid file removed");
    assert!(
        cache.join("manifest.txt").exists(),
        "warm cache persisted on the way out"
    );
    std::mem::forget(daemon); // already exited; nothing to kill
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_status_subcommand_renders_daemon_health() {
    let dir = workdir("status-cli");
    let good = dir.join("good.td");
    std::fs::write(&good, GOOD).unwrap();
    let cache = dir.join("cache");

    // Without a daemon: a failure, not a spawn.
    let out = tydic()
        .args(["serve", "status", "--cache-dir"])
        .arg(&cache)
        .output()
        .expect("status without daemon");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no daemon"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let daemon = Daemon::spawn_with(&cache, &["--idle-timeout", "60000"]);
    let response = daemon
        .client()
        .request(&check_request(&good))
        .expect("check");
    assert!(response.ok);

    let out = tydic()
        .args(["serve", "status", "--cache-dir"])
        .arg(&cache)
        .output()
        .expect("status with daemon");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "status ok: {stdout}");
    assert!(stdout.contains("daemon pid "), "pid line: {stdout}");
    assert!(
        stdout.contains("jobs: 1 served, 0 active, 0 timed out, 0 panicked"),
        "jobs line: {stdout}"
    );
    assert!(stdout.contains("cache: "), "cache line: {stdout}");
    assert!(stdout.contains("idle shutdown in "), "deadline: {stdout}");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_protocol_errors_not_hangs() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let dir = workdir("malformed");
    let daemon = Daemon::spawn(&dir.join("cache"));

    let mut stream = UnixStream::connect(&daemon.socket).expect("connect raw");
    stream.write_all(b"this is not json\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("error response");
    let response = tydi_serve::protocol::JobResponse::parse(&line).expect("parseable");
    assert!(!response.ok);
    assert_eq!(response.exit_code, 2);

    // The connection (and the daemon) still work afterwards.
    stream
        .write_all(br#"{"kind":"status","id":5}"#)
        .and_then(|()| stream.write_all(b"\n"))
        .unwrap();
    line.clear();
    reader.read_line(&mut line).expect("status response");
    let response = tydi_serve::protocol::JobResponse::parse(&line).expect("parseable");
    assert!(response.ok);
    assert_eq!(response.id, 5);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
