//! T-III: the qualitative comparison of paper Table III, turned into
//! an executable feature-coverage test. The table credits Tydi-lang
//! with: *architecture* description, *configuration* (customizable
//! components), *built-in typed streams*, *OOP with templates*, and
//! VHDL output via the Tydi-IR backend (and explicitly NOT behaviour
//! description, which lives in external implementations).

use tydi::lang::{compile, CompileOptions};
use tydi::stdlib::{full_registry, with_stdlib};
use tydi::vhdl::{generate_project, VhdlOptions};

#[test]
fn architecture_components_and_connections() {
    let source = r#"
package feat;
type B = Stream(Bit(4));
streamlet leaf_s { i : B in, o : B out, }
@builtin("std.passthrough")
impl leaf_i of leaf_s external;
streamlet top_s { i : B in, o : B out, }
impl top_i of top_s {
    instance a(leaf_i),
    instance b(leaf_i),
    i => a.i,
    a.o => b.i,
    b.o => o,
}
"#;
    let out = compile(&[("f.td", source)], &CompileOptions::default()).unwrap();
    let top = out.project.implementation("top_i").unwrap();
    assert_eq!(top.instances().len(), 2);
    assert_eq!(top.connections().len(), 3);
}

#[test]
fn configuration_via_template_arguments() {
    // Components customized by variables and types at instantiation.
    let source = r#"
package feat;
use std;
type B8 = Stream(Bit(8));
type B16 = Stream(Bit(16));
streamlet top_s { a : B8 in, b : B16 in, }
impl top_i of top_s {
    instance v8(voider_i<type B8>),
    instance v16(voider_i<type B16>),
    a => v8.i,
    b => v16.i,
}
"#;
    let sources = with_stdlib(&[("f.td", source)]);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    let out = compile(&refs, &CompileOptions::default()).unwrap();
    // One template, two distinct configurations.
    assert!(out
        .project
        .implementation("voider_i<Stream(Bit(8))>")
        .is_some());
    assert!(out
        .project
        .implementation("voider_i<Stream(Bit(16))>")
        .is_some());
}

#[test]
fn built_in_typed_streams() {
    // The unique Table III feature: structured data encoded in the
    // type system itself (Bit/Group/Union/Stream of paper Table I).
    let source = r#"
package feat;
Group Pixel { r : Bit(8), g : Bit(8), b : Bit(8), }
Union Event { key : Bit(8), click : Pixel, }
type Frame = Stream(Pixel, d=2, t=4.0, c=7);
type Events = Stream(Event, d=1);
streamlet cam_s { frame : Frame out, events : Events out, }
@builtin("fletcher.source")
impl cam_i of cam_s external;
"#;
    let out = compile(&[("f.td", source)], &CompileOptions::default()).unwrap();
    let cam = out.project.streamlet("cam_s").unwrap();
    let frame = cam.port("frame").unwrap();
    // 24-bit pixels, four lanes, two dimensions.
    let phys = tydi::spec::lower(&frame.ty).unwrap();
    assert_eq!(phys[0].element_bits, 24);
    assert_eq!(phys[0].lanes(), 4);
    assert_eq!(phys[0].dimension, 2);
    let events = cam.port("events").unwrap();
    let phys = tydi::spec::lower(&events.ty).unwrap();
    // Union: max(8, 24) + 1 tag bit.
    assert_eq!(phys[0].element_bits, 25);
}

#[test]
fn oop_with_templates_including_impl_arguments() {
    // Templates over values, types, AND implementations bounded by a
    // streamlet (the paper's three template argument kinds, IV-B).
    let source = r#"
package feat;
use std;
type B = Stream(Bit(8));
streamlet worker_s { i : B in, o : B out, }
@builtin("std.passthrough")
impl fast_worker of worker_s external;
@builtin("std.passthrough")
impl slow_worker of worker_s external;
streamlet farm_s { i : B in, o : B out, }
impl farm_i<w: impl of worker_s, n: int> of farm_s {
    instance dm(demux_i<type B, n>),
    instance mx(mux_i<type B, n>),
    instance workers(w) [n],
    i => dm.i,
    for k in (0..n) {
        dm.o[k] => workers[k].i,
        workers[k].o => mx.i[k],
    }
    mx.o => o,
}
impl top_fast of farm_s {
    instance f(farm_i<impl fast_worker, 3>),
    i => f.i,
    f.o => o,
}
impl top_slow of farm_s {
    instance f(farm_i<impl slow_worker, 2>),
    i => f.i,
    f.o => o,
}
"#;
    let sources = with_stdlib(&[("f.td", source)]);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    let out = compile(&refs, &CompileOptions::default()).unwrap();
    assert!(out
        .project
        .implementation("farm_i<fast_worker,3>")
        .is_some());
    assert!(out
        .project
        .implementation("farm_i<slow_worker,2>")
        .is_some());
    let farm = out.project.implementation("farm_i<fast_worker,3>").unwrap();
    assert_eq!(farm.instances().len(), 5); // demux + mux + 3 workers
}

#[test]
fn output_is_vhdl_via_the_backend() {
    let source = r#"
package feat;
type B = Stream(Bit(4));
streamlet wire_s { i : B in, o : B out, }
impl wire_i of wire_s { i => o, }
"#;
    let out = compile(&[("f.td", source)], &CompileOptions::default()).unwrap();
    let files = generate_project(&out.project, &full_registry(), &VhdlOptions::default()).unwrap();
    assert!(files[0].contents.contains("library ieee;"));
    assert!(files[0].contents.contains("entity wire_i is"));
}

#[test]
fn behaviour_is_not_described_in_tydi_lang_itself() {
    // Table III: Tydi-lang supports architecture + configuration but
    // not functionality; behaviour belongs to external impls
    // (simulation code or builtin RTL) - an external impl with neither
    // is a black box that still compiles to an entity.
    let source = r#"
package feat;
type B = Stream(Bit(4));
streamlet magic_s { i : B in, o : B out, }
impl magic_i of magic_s external;
"#;
    let out = compile(&[("f.td", source)], &CompileOptions::default()).unwrap();
    let files = generate_project(&out.project, &full_registry(), &VhdlOptions::default()).unwrap();
    assert!(files[0].contents.contains("architecture black_box"));
}
