//! Chaos suite for the fault-injection engine: seeded fault runs are
//! byte-deterministic at any `TYDI_THREADS`, statically predicted
//! hazards can be *provoked* by their synthesized fault plans (with
//! the resulting deadlock landing inside the predicted stall cones),
//! and frozen-component deadlocks name the frozen component.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::process::Command;

use tydi::analyze::{analyze, synthesize_faults, AnalyzeOptions, HazardKind};
use tydi::lang::{compile, CompileOptions};
use tydi::sim::{BehaviorRegistry, FaultPlan, Packet, Simulator, StopReason};
use tydi::stdlib::{stdlib_source, STDLIB_FILE_NAME};

const MAX_CYCLES: u64 = 200_000;
const FEED_PACKETS: u64 = 64;

fn cookbook_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("cookbook")
        .join(file)
}

fn compile_cookbook(file: &str) -> tydi::lang::CompileOutput {
    let path = cookbook_path(file);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let sources = [
        (STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()),
        (file.to_string(), text),
    ];
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile(&refs, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("cookbook {file} failed to compile:\n{e}"))
}

/// Builds a fed simulator for `top` with the given fault plan applied.
fn faulted_sim(
    output: &tydi::lang::CompileOutput,
    top: &str,
    registry: &BehaviorRegistry,
    plan: &FaultPlan,
) -> Simulator {
    let mut sim = Simulator::new(&output.project, top, registry)
        .unwrap_or_else(|e| panic!("build simulator for {top}: {e}"));
    for port in sim.input_ports() {
        sim.feed(&port, (0..FEED_PACKETS).map(|i| Packet::data(i as i64)))
            .unwrap_or_else(|e| panic!("feed {top}.{port}: {e}"));
    }
    sim.set_fault_plan(plan)
        .unwrap_or_else(|e| panic!("inject {plan} into {top}: {e}"));
    sim
}

/// The loop the analyzer promised closed: every provocable hazard on
/// `cookbook/13_analyze.td` (credit starvation on `starved_i`, the
/// deadlockable cycle on `wedged_i`) gets its synthesized fault plan
/// run through the simulator, which must wedge — and every channel it
/// names as blocked must sit inside a statically predicted stall cone.
#[test]
fn synthesized_faults_provoke_the_predicted_deadlocks() {
    let output = compile_cookbook("13_analyze.td");
    let registry = BehaviorRegistry::with_std();
    let mut experiments = 0usize;
    for top in output.project.top_level_candidates() {
        let Ok(report) = analyze(
            &output.project,
            &output.index,
            top,
            &AnalyzeOptions::default(),
        ) else {
            continue;
        };
        let cones: BTreeSet<&str> = report
            .stall_cones
            .iter()
            .flat_map(|c| c.channels.iter().map(String::as_str))
            .collect();
        for synthesized in synthesize_faults(&report) {
            let mut sim = faulted_sim(&output, top, &registry, &synthesized.plan);
            let result = sim.run(MAX_CYCLES);
            let StopReason::Deadlocked {
                blocked_channels, ..
            } = &result.reason
            else {
                panic!(
                    "{top}: plan `{}` (for {:?} hazard) did not wedge the design: {:?}",
                    synthesized.plan, synthesized.hazard.kind, result.reason
                );
            };
            assert!(
                !blocked_channels.is_empty(),
                "{top}: provoked deadlock names no blocked channels"
            );
            for channel in blocked_channels {
                assert!(
                    cones.contains(channel.as_str()),
                    "{top}: provoked blocked channel `{channel}` is outside \
                     every predicted stall cone"
                );
            }
            experiments += 1;
        }
    }
    assert!(
        experiments >= 2,
        "only {experiments} hazard→fault experiment(s) ran; \
         13_analyze.td guarantees starvation + cycle"
    );
}

/// Freezing the component the starvation hazard points at wedges the
/// design, and the deadlock report carries channels touching that
/// exact component — the operator can read *who* froze off the
/// blocked-channel list alone.
#[test]
fn frozen_component_deadlock_names_the_frozen_component() {
    let output = compile_cookbook("13_analyze.td");
    let registry = BehaviorRegistry::with_std();
    let report = analyze(
        &output.project,
        &output.index,
        "starved_i",
        &AnalyzeOptions::default(),
    )
    .expect("analyze starved_i");
    let component = report
        .hazards
        .iter()
        .find(|h| h.kind == HazardKind::CreditStarvation)
        .and_then(|h| h.component.clone())
        .expect("starvation hazard names its join component");
    let plan = FaultPlan::parse(&format!("freeze({component},0)")).expect("freeze spec");
    let mut sim = faulted_sim(&output, "starved_i", &registry, &plan);
    let result = sim.run(MAX_CYCLES);
    let StopReason::Deadlocked {
        blocked_channels, ..
    } = &result.reason
    else {
        panic!(
            "freezing `{component}` did not wedge starved_i: {:?}",
            result.reason
        );
    };
    // Channel names use the instance-local scheme on the consumer side
    // (`top.dup.o_0 => add.in0`), so match on the component's leaf
    // instance name.
    let leaf = component.rsplit('.').next().unwrap_or(&component);
    assert!(
        blocked_channels.iter().any(|c| c.contains(leaf)),
        "no blocked channel mentions frozen `{component}`: {blocked_channels:?}"
    );
    assert!(
        sim.fault_stats().frozen_ticks > 0,
        "the freeze never suppressed a tick"
    );
}

/// The real binary: an `--inject-sweep` over jitter seeds produces
/// byte-identical stdout whatever `TYDI_THREADS` says — the chaos is
/// seeded, not scheduled.
#[test]
fn seeded_fault_sweeps_are_byte_identical_across_thread_counts() {
    // Pick a real flattened channel to jitter: the late arm the
    // analyzer names in the starvation hazard is guaranteed to exist.
    let output = compile_cookbook("13_analyze.td");
    let report = analyze(
        &output.project,
        &output.index,
        "starved_i",
        &AnalyzeOptions::default(),
    )
    .expect("analyze starved_i");
    let channel = report
        .hazards
        .iter()
        .find(|h| h.kind == HazardKind::CreditStarvation)
        .and_then(|h| h.channels.get(1).cloned())
        .expect("starvation hazard names its late arm");

    let mut legs = Vec::new();
    for threads in ["1", "8"] {
        let out = Command::new(env!("CARGO_BIN_EXE_tydic"))
            .arg("sim")
            .arg(cookbook_path("13_analyze.td"))
            .args(["--top", "starved_i", "--packets", "32"])
            .args(["--inject", &format!("jitter({channel},7,3)")])
            .args(["--inject-sweep", "1,2,3"])
            .env("TYDI_THREADS", threads)
            .output()
            .expect("run tydic sim");
        assert!(
            out.status.success(),
            "tydic sim (TYDI_THREADS={threads}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        legs.push(out.stdout);
    }
    assert_eq!(
        legs[0], legs[1],
        "faulted sim report differs between TYDI_THREADS=1 and 8"
    );
    let text = String::from_utf8(legs[0].clone()).expect("utf-8 report");
    for seed in ["seed-1", "seed-2", "seed-3"] {
        assert!(text.contains(seed), "sweep arm {seed} missing:\n{text}");
    }
}

/// The real binary reports a provoked wedge as `DEADLOCKED (...)` with
/// the blocked channels inline, and rejects malformed inject specs
/// with a usage error instead of simulating nothing.
#[test]
fn cli_reports_provoked_deadlocks_and_rejects_bad_specs() {
    let output = compile_cookbook("13_analyze.td");
    let report = analyze(
        &output.project,
        &output.index,
        "starved_i",
        &AnalyzeOptions::default(),
    )
    .expect("analyze starved_i");
    let late_arm = report
        .hazards
        .iter()
        .find(|h| h.kind == HazardKind::CreditStarvation)
        .and_then(|h| h.channels.get(1).cloned())
        .expect("starvation hazard names its late arm");

    let out = Command::new(env!("CARGO_BIN_EXE_tydic"))
        .arg("sim")
        .arg(cookbook_path("13_analyze.td"))
        .args(["--top", "starved_i", "--packets", "32", "--scenarios", "1"])
        .args(["--inject", &format!("stall({late_arm},0,*)")])
        .output()
        .expect("run tydic sim");
    assert!(
        out.status.success(),
        "a provoked deadlock is a finding, not a crash:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("DEADLOCKED ("),
        "no deadlock reported:\n{stdout}"
    );
    assert!(
        stdout.contains("1 deadlocked"),
        "summary line misses the deadlock:\n{stdout}"
    );

    let bad = Command::new(env!("CARGO_BIN_EXE_tydic"))
        .arg("sim")
        .arg(cookbook_path("13_analyze.td"))
        .args(["--top", "starved_i", "--inject", "wobble(x,1)"])
        .output()
        .expect("run tydic sim with bad spec");
    assert!(!bad.status.success(), "bad inject spec must fail");
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("invalid fault clause"),
        "stderr: {}",
        String::from_utf8_lossy(&bad.stderr)
    );

    let orphan_sweep = Command::new(env!("CARGO_BIN_EXE_tydic"))
        .arg("sim")
        .arg(cookbook_path("13_analyze.td"))
        .args(["--top", "starved_i", "--inject-sweep", "1,2"])
        .output()
        .expect("run tydic sim with orphan sweep");
    assert!(
        !orphan_sweep.status.success(),
        "--inject-sweep without --inject must fail"
    );
}
