//! Property test: a random well-formed Tydi-lang program round-trips
//! parse → pretty-print → re-parse to an equivalent AST.
//!
//! The generator builds structurally diverse programs — constants
//! with nested math, stream types with dimension/complexity/
//! throughput/user arguments, Groups/Unions, templated streamlets and
//! implementations, clock-domain annotations, generative `for`/`if`/
//! `assert`, instances with template arguments, and external impls
//! with simulation blocks — from a byte-string "DNA", so every case
//! is well-formed by construction while still exercising the lexer,
//! parser and printer across the grammar.
//!
//! Equivalence is checked as a printer fixed point: `print(parse(s))`
//! and `print(parse(print(parse(s))))` must be byte-identical (spans
//! differ between the two parses, so the canonical printed form *is*
//! the span-insensitive AST equality), plus structural spot checks on
//! declaration counts.

use proptest::prelude::*;
use std::fmt::Write as _;
use tydi::lang::parser::parse_package;
use tydi::lang::pretty::print_package;

/// Deterministically builds a well-formed program from DNA bytes.
/// `allow_sim` gates simulation blocks: their body text is captured
/// verbatim by the parser (comments included), so tests that inject
/// comment noise into every line disable them.
fn program_from_with(dna: &[u8], allow_sim: bool) -> String {
    let byte = |i: usize| -> i64 { i64::from(dna[i % dna.len()]) };
    let mut src = String::from("package gen;\nuse std;\n");

    // Constants with nested math expressions.
    for k in 0..(byte(0) % 3) {
        let a = byte(1 + k as usize) + 1;
        let b = byte(2 + k as usize) + 2;
        let expr = match byte(3 + k as usize) % 4 {
            0 => format!("{a} + {b} * 2"),
            1 => format!("min({a}, {b}) + max({b}, 1)"),
            2 => format!("ceil(log2(2 ^ {})) + {b}", (a % 6) + 1),
            _ => format!("({a}..{b} step 2)"),
        };
        let kind = match byte(4 + k as usize) % 3 {
            0 => " : int",
            1 => "",
            _ => " : [int]",
        };
        let value = if kind == " : [int]" {
            format!("[{a}, {b}, {}]", a + b)
        } else {
            expr
        };
        let _ = writeln!(src, "const c{k}{kind} = {value};");
    }

    // Type aliases with varied stream parameters.
    let n_types = 1 + byte(5) % 3;
    for k in 0..n_types {
        let width = 1 + byte(6 + k as usize) % 63;
        let mut args = String::new();
        if byte(7 + k as usize) % 2 == 0 {
            let _ = write!(args, ", d={}", 1 + byte(8 + k as usize) % 3);
        }
        if byte(9 + k as usize) % 2 == 0 {
            let _ = write!(args, ", c={}", 1 + byte(10 + k as usize) % 7);
        }
        if byte(11 + k as usize) % 3 == 0 {
            let _ = write!(args, ", t={}.5", 1 + byte(12 + k as usize) % 4);
        }
        if byte(13 + k as usize) % 4 == 0 {
            args.push_str(", u=Bit(3)");
        }
        let _ = writeln!(src, "type T{k} = Stream(Bit({width}){args});");
    }

    // Occasionally a Group or Union of bit fields.
    if byte(14) % 3 == 0 {
        let keyword = if byte(15) % 2 == 0 { "Group" } else { "Union" };
        let _ = writeln!(
            src,
            "{keyword} Rec {{ a : Bit({}), b : Bit({}), }}",
            1 + byte(16) % 15,
            1 + byte(17) % 15
        );
    }

    // A plain streamlet plus, sometimes, a templated one.
    let clock = if byte(18) % 3 == 0 { " !fast" } else { "" };
    let arr = if byte(19) % 3 == 0 {
        format!(" [{}]", 1 + byte(20) % 4)
    } else {
        String::new()
    };
    let _ = writeln!(
        src,
        "streamlet plain_s {{ i : T0 in{arr}{clock}, o : T0 out, }}"
    );
    let templated = byte(21) % 2 == 0;
    if templated {
        let _ = writeln!(
            src,
            "streamlet tpl_s<n: int, t: type> {{ i : t in [n], o : t out, }}"
        );
    }

    // An external implementation, sometimes with simulation code.
    if !allow_sim || byte(22) % 2 == 0 {
        let _ = writeln!(src, "@builtin(\"std.passthrough\")");
        let _ = writeln!(src, "impl ext_i of plain_s external;");
    } else {
        let _ = writeln!(
            src,
            "impl ext_i of plain_s external {{\n    simulation {{\n        state st = \"idle\";\n        on (i.recv && st == \"idle\") {{ send(o, i.data + {}); ack(i); }}\n    }}\n}}",
            byte(23) % 9
        );
    }

    // A structural implementation exercising statements.
    if byte(24) % 3 == 0 {
        src.push_str("@NoStrictType\n");
    }
    let _ = writeln!(src, "impl top_i of plain_s {{");
    let _ = writeln!(src, "    instance u0(ext_i),");
    if templated {
        let _ = writeln!(
            src,
            "    instance u1(tpl_i<{}, type T0>) [{}],",
            1 + byte(25) % 4,
            1 + byte(26) % 3
        );
    }
    match byte(27) % 4 {
        0 => {
            let _ = writeln!(
                src,
                "    for k in (0..{}) {{\n        i => u0.i,\n    }}",
                1 + byte(28) % 4
            );
        }
        1 => {
            let _ = writeln!(
                src,
                "    if (c0 > {}) {{\n        i => u0.i,\n    }} else if (c0 == 1) {{\n        assert(true, \"one\"),\n    }} else {{\n        const local = 3,\n    }}",
                byte(29) % 5
            );
        }
        2 => {
            let _ = writeln!(src, "    assert({} < {}, \"bound\"),", byte(30) % 9, 300);
            let _ = writeln!(src, "    i => u0.i,");
        }
        _ => {
            let _ = writeln!(src, "    i => u0.i,");
        }
    }
    let _ = writeln!(src, "    u0.o => o,");
    let _ = writeln!(src, "}}");
    src
}

fn program_from(dna: &[u8]) -> String {
    program_from_with(dna, true)
}

fn parse_ok(source: &str, context: &str) -> tydi::lang::ast::Package {
    let (package, diags) = parse_package(0, source);
    assert!(
        !tydi::lang::diagnostics::has_errors(&diags),
        "{context} produced parse errors:\n{source}\ndiagnostics: {diags:?}"
    );
    package.unwrap_or_else(|| panic!("{context}: no package parsed from:\n{source}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generated programs parse cleanly, and parse → print → re-parse
    /// reaches the printer fixed point with identical structure.
    #[test]
    fn random_program_round_trips(dna in proptest::collection::vec(0u8..=255, 8..48)) {
        let source = program_from(&dna);
        let first_ast = parse_ok(&source, "generated program");
        let printed = print_package(&first_ast);
        let second_ast = parse_ok(&printed, "pretty-printed program");
        let reprinted = print_package(&second_ast);
        prop_assert!(
            printed == reprinted,
            "printer fixed point violated for:\n{source}\nfirst print:\n{printed}\nsecond print:\n{reprinted}"
        );
        // Structural equivalence spot checks (spans aside, the
        // canonical print is the AST's identity).
        prop_assert_eq!(first_ast.name.as_str(), second_ast.name.as_str());
        prop_assert_eq!(&first_ast.uses, &second_ast.uses);
        prop_assert_eq!(first_ast.decls.len(), second_ast.decls.len());
        for (a, b) in first_ast.decls.iter().zip(&second_ast.decls) {
            prop_assert_eq!(a.name(), b.name());
        }
    }

    /// The canonical print is insensitive to comments and whitespace
    /// noise injected between tokens-at-line-boundaries.
    #[test]
    fn noise_does_not_change_the_canonical_form(dna in proptest::collection::vec(0u8..=255, 8..32)) {
        let source = program_from_with(&dna, false);
        let noisy: String = source
            .lines()
            .map(|line| format!("{line}  // noise\n"))
            .collect::<String>()
            + "\n/* trailing\n   block comment */\n";
        let clean = print_package(&parse_ok(&source, "clean"));
        let noised = print_package(&parse_ok(&noisy, "noisy"));
        prop_assert_eq!(clean, noised);
    }
}
