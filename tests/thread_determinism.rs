//! Thread-count determinism of the whole pipeline, end to end.
//!
//! Package-parallel elaboration shards type interning 16 ways and
//! fans packages out across worker threads, but type ids are assigned
//! deterministically, so everything downstream — IR text, VHDL,
//! SystemVerilog — must be byte-identical whether the compiler runs
//! on one thread (`TYDI_THREADS=1`) or eight. These tests drive the
//! real `tydic` binary over a 17-package import DAG wide enough (ten
//! packages on one level) to genuinely exercise the parallel path.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tydic-threads-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create workdir");
    dir
}

/// Writes the synthetic package DAG to `dir`, returning the file
/// paths in a stable order.
fn write_dag(dir: &Path) -> Vec<PathBuf> {
    tydi_bench::package_dag_sources(10)
        .into_iter()
        .map(|(name, text)| {
            let path = dir.join(name);
            std::fs::write(&path, text).expect("write design");
            path
        })
        .collect()
}

/// Runs `tydic compile --emit <format>` over `files` with the given
/// `TYDI_THREADS` and returns the raw stdout bytes.
fn compile_stdout(files: &[PathBuf], emit: &str, threads: &str) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tydic"));
    cmd.arg("compile")
        .args(files)
        .arg("--emit")
        .arg(emit)
        .arg("--no-cache")
        .env("TYDI_THREADS", threads);
    let out = cmd.output().expect("run tydic");
    assert!(
        out.status.success(),
        "tydic --emit {emit} (TYDI_THREADS={threads}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "--emit {emit} produced no output");
    out.stdout
}

#[test]
fn emitted_artifacts_are_byte_identical_across_thread_counts() {
    let dir = workdir();
    let files = write_dag(&dir);
    for emit in ["ir", "vhdl", "verilog"] {
        let sequential = compile_stdout(&files, emit, "1");
        for threads in ["2", "8"] {
            let parallel = compile_stdout(&files, emit, threads);
            assert!(
                sequential == parallel,
                "--emit {emit} differs between TYDI_THREADS=1 and {threads} \
                 ({} vs {} bytes)",
                sequential.len(),
                parallel.len()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diagnostics_are_stable_across_thread_counts() {
    let dir = workdir();
    let mut files = write_dag(&dir);
    // A design with a deliberate DRC error: the dangling port must be
    // reported identically (same text, same order) on every thread
    // count, even though the erroring package elaborates concurrently
    // with nine siblings.
    let broken = dir.join("zz_broken.td");
    std::fs::write(
        &broken,
        "package zz_broken;\nuse base;\nimpl broken_i of pass_s<8> { i => o, instance a(pass_i<8>), }\n",
    )
    .expect("write broken design");
    files.push(broken);
    let stderr_of = |threads: &str| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_tydic"));
        cmd.arg("check")
            .args(&files)
            .arg("--no-cache")
            .env("TYDI_THREADS", threads);
        let out = cmd.output().expect("run tydic");
        assert!(
            !out.status.success(),
            "the broken design must fail the DRC (TYDI_THREADS={threads})"
        );
        String::from_utf8_lossy(&out.stderr).to_string()
    };
    let sequential = stderr_of("1");
    let parallel = stderr_of("8");
    assert_eq!(
        sequential, parallel,
        "diagnostics differ between TYDI_THREADS=1 and 8"
    );
    assert!(
        sequential.contains("broken_i"),
        "the report should name the broken implementation:\n{sequential}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persisted_cache_replays_identically_after_parallel_populate() {
    // Populate the on-disk cache with an 8-thread compile, then
    // replay it on one thread: the binary `.tirb` artifact must
    // restore the exact project the parallel elaboration produced.
    let dir = workdir();
    let files = write_dag(&dir);
    let cache_dir = dir.join("cache");
    let run = |threads: &str| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_tydic"));
        cmd.arg("compile")
            .args(&files)
            .arg("--emit")
            .arg("ir")
            .arg("--cache-dir")
            .arg(&cache_dir)
            .env("TYDI_THREADS", threads);
        let out = cmd.output().expect("run tydic");
        assert!(
            out.status.success(),
            "tydic failed (TYDI_THREADS={threads}):\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let cold_parallel = run("8");
    let warm_sequential = run("1");
    assert!(
        cold_parallel == warm_sequential,
        "cache replay drifted from the parallel compile that populated it"
    );
    let wrote_binary = std::fs::read_dir(&cache_dir)
        .expect("cache dir exists")
        .any(|e| {
            e.expect("entry")
                .file_name()
                .to_string_lossy()
                .ends_with(".tirb")
        });
    assert!(
        wrote_binary,
        "the cache should persist binary .tirb artifacts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
