//! End-to-end test of `tydic serve --lsp`: a scripted Language Server
//! Protocol session over the real binary's stdio.

use std::io::Write;
use std::process::{Command, Stdio};

fn frame(body: &str) -> Vec<u8> {
    format!("Content-Length: {}\r\n\r\n{body}", body.len()).into_bytes()
}

/// Splits a byte stream of `Content-Length`-framed messages back into
/// bodies.
fn parse_frames(mut bytes: &[u8]) -> Vec<String> {
    let mut frames = Vec::new();
    while let Some(header_end) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
        let header = String::from_utf8_lossy(&bytes[..header_end]);
        let length: usize = header
            .lines()
            .find_map(|line| line.strip_prefix("Content-Length:"))
            .and_then(|value| value.trim().parse().ok())
            .expect("framed header");
        let body_start = header_end + 4;
        frames.push(String::from_utf8_lossy(&bytes[body_start..body_start + length]).into_owned());
        bytes = &bytes[body_start + length..];
    }
    frames
}

#[test]
fn lsp_session_over_stdio_publishes_diagnostics() {
    let dir = std::env::temp_dir().join(format!("tydic-lsp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_tydic"))
        .arg("serve")
        .arg("--lsp")
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn lsp server");

    let good = "package demo;\\ntype Byte = Stream(Bit(8));\\nstreamlet wire_s { i : Byte in, o : Byte out, }\\nimpl wire_i of wire_s { i => o, }\\n";
    let broken = "package demo;\\nconst x = ;\\n";
    let uri = "file:///ws/demo.td";
    {
        let stdin = child.stdin.as_mut().expect("stdin");
        stdin
            .write_all(&frame(
                r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}"#,
            ))
            .unwrap();
        stdin
            .write_all(&frame(&format!(
                r#"{{"jsonrpc":"2.0","method":"textDocument/didOpen","params":{{"textDocument":{{"uri":"{uri}","languageId":"tydi","version":1,"text":"{good}"}}}}}}"#
            )))
            .unwrap();
        stdin
            .write_all(&frame(&format!(
                r#"{{"jsonrpc":"2.0","id":2,"method":"textDocument/hover","params":{{"textDocument":{{"uri":"{uri}"}},"position":{{"line":2,"character":12}}}}}}"#
            )))
            .unwrap();
        stdin
            .write_all(&frame(&format!(
                r#"{{"jsonrpc":"2.0","method":"textDocument/didChange","params":{{"textDocument":{{"uri":"{uri}","version":2}},"contentChanges":[{{"text":"{broken}"}}]}}}}"#
            )))
            .unwrap();
        stdin
            .write_all(&frame(
                r#"{"jsonrpc":"2.0","id":3,"method":"shutdown","params":{}}"#,
            ))
            .unwrap();
        stdin
            .write_all(&frame(r#"{"jsonrpc":"2.0","method":"exit","params":{}}"#))
            .unwrap();
        stdin.flush().unwrap();
    }
    let output = child.wait_with_output().expect("lsp server exit");
    assert!(output.status.success(), "clean exit: {:?}", output.status);
    let frames = parse_frames(&output.stdout);

    let initialize = frames
        .iter()
        .find(|f| f.contains(r#""id":1"#))
        .expect("initialize response");
    assert!(
        initialize.contains(r#""hoverProvider":true"#),
        "capabilities: {initialize}"
    );

    let hover = frames
        .iter()
        .find(|f| f.contains(r#""id":2"#))
        .expect("hover response");
    assert!(
        hover.contains("streamlet wire_s"),
        "hover resolves the streamlet: {hover}"
    );
    assert!(
        hover.contains("Stream"),
        "hover shows the logical stream type: {hover}"
    );

    let publishes: Vec<&String> = frames
        .iter()
        .filter(|f| f.contains("textDocument/publishDiagnostics"))
        .collect();
    assert_eq!(
        publishes.len(),
        2,
        "one publish per open/change: {frames:?}"
    );
    assert!(
        !publishes[0].contains(r#""severity":1"#),
        "good document has no errors: {}",
        publishes[0]
    );
    assert!(
        publishes[1].contains(r#""severity":1"#),
        "broken edit publishes an error: {}",
        publishes[1]
    );

    // The LSP server persisted its compile cache on exit.
    assert!(
        dir.join("cache").join("manifest.txt").exists(),
        "cache persisted on exit"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
