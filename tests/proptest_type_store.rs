//! Property-based parity suite for the hash-consed type store: for
//! arbitrary valid logical types, the interned representation must
//! agree with the deep representation on **everything** —
//!
//! * id equality ⇔ structural equality (hash-consing is sound and
//!   complete),
//! * identical bit widths, node counts, stream/null classification,
//! * identical physical signal expansion,
//! * identical stable fingerprints (equal exactly for equal types),
//! * stable mangled names byte-identical to the historic
//!   `to_string().replace(' ', "")` form, with **no collisions**
//!   between distinct types (a collision would merge distinct
//!   template instances in generated VHDL).

use proptest::prelude::*;
use std::sync::Arc;
use tydi::spec::{
    lower, lower_cached, structural_fingerprint, Complexity, Field, LogicalType, StreamParams,
    Synchronicity, Throughput, TypeStore,
};

/// A recursive strategy for arbitrary valid logical types (fields are
/// index-named, so generated composites never have duplicate names).
fn arb_type() -> impl Strategy<Value = LogicalType> {
    let leaf = prop_oneof![
        Just(LogicalType::Null),
        (1u32..=64).prop_map(LogicalType::Bit),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(|tys| {
                LogicalType::Group(
                    tys.into_iter()
                        .enumerate()
                        .map(|(i, t)| Field::new(format!("f{i}"), t))
                        .collect(),
                )
            }),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(|tys| {
                LogicalType::Union(
                    tys.into_iter()
                        .enumerate()
                        .map(|(i, t)| Field::new(format!("v{i}"), t))
                        .collect(),
                )
            }),
            (inner, arb_params()).prop_map(|(t, p)| LogicalType::stream(t, p)),
        ]
    })
}

fn arb_params() -> impl Strategy<Value = StreamParams> {
    (
        0u32..4,
        1u32..5,
        1u8..=8,
        prop_oneof![
            Just(Synchronicity::Sync),
            Just(Synchronicity::Flatten),
            Just(Synchronicity::Desync),
            Just(Synchronicity::FlatDesync)
        ],
        any::<bool>(),
        // Stream-free user sideband type, present half the time.
        prop_oneof![
            Just(None),
            (1u32..=8).prop_map(|w| Some(LogicalType::Bit(w)))
        ],
    )
        .prop_map(|(d, t, c, x, keep, user)| {
            let mut params = StreamParams::new()
                .with_dimension(d)
                .with_throughput(Throughput::new(t, 1).expect("positive"))
                .with_complexity(Complexity::new(c).expect("in range"))
                .with_synchronicity(x)
                .with_keep(keep);
            if let Some(user) = user {
                params = params.with_user(user);
            }
            params
        })
}

proptest! {
    #[test]
    fn id_equality_is_structural_equality(a in arb_type(), b in arb_type()) {
        let store = TypeStore::new();
        let ia = store.intern(&a).expect("valid by construction");
        let ib = store.intern(&b).expect("valid by construction");
        prop_assert_eq!(ia == ib, a == b);
        // Re-interning is idempotent and shares the canonical Arc.
        let ia2 = store.intern(&a).expect("valid");
        prop_assert_eq!(ia, ia2);
        prop_assert!(Arc::ptr_eq(&store.ty(ia), &store.ty(ia2)));
        prop_assert_eq!(&*store.ty(ia), &a);
    }

    #[test]
    fn cached_properties_match_deep_representation(ty in arb_type()) {
        let store = TypeStore::new();
        let id = store.intern(&ty).expect("valid by construction");
        prop_assert_eq!(store.bit_width(id), ty.bit_width());
        prop_assert_eq!(store.node_count(id), ty.node_count());
        prop_assert_eq!(store.contains_stream(id), ty.contains_stream());
        prop_assert_eq!(store.is_null(id), ty.is_null());
    }

    #[test]
    fn expansion_matches_physical_lowering(ty in arb_type()) {
        let store = TypeStore::new();
        let id = store.intern(&ty).expect("valid by construction");
        match (store.expansion(id), lower(&ty)) {
            (Ok(cached), Ok(deep)) => prop_assert_eq!(&*cached, &deep),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "expansion disagreement: {:?} vs {:?}", a, b),
        }
        // The process-wide memo agrees too.
        match (lower_cached(&ty), lower(&ty)) {
            (Ok(cached), Ok(deep)) => prop_assert_eq!(&*cached, &deep),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "lower_cached disagreement: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn fingerprints_mirror_equality(a in arb_type(), b in arb_type()) {
        let store = TypeStore::new();
        let ia = store.intern(&a).expect("valid");
        let ib = store.intern(&b).expect("valid");
        prop_assert_eq!(store.fingerprint(ia), structural_fingerprint(&a));
        prop_assert_eq!(store.fingerprint(ia) == store.fingerprint(ib), a == b);
    }

    #[test]
    fn mangled_names_are_stable_and_collision_free(a in arb_type(), b in arb_type()) {
        let store = TypeStore::new();
        let ia = store.intern(&a).expect("valid");
        let ib = store.intern(&b).expect("valid");
        // Byte-identical to the historic display-minus-spaces mangling
        // (template instance names in generated VHDL depend on this).
        let mangled = store.mangled(ia);
        prop_assert_eq!(mangled.as_ref(), a.to_string().replace(' ', ""));
        // Distinct types never share a mangled name: that would merge
        // distinct template instances.
        if a != b {
            prop_assert_ne!(store.mangled(ia), store.mangled(ib));
        } else {
            prop_assert_eq!(store.mangled(ia), store.mangled(ib));
        }
    }
}
