//! F-1: the complete toolchain workflow of paper Fig. 1.
//!
//! Tydi-lang source → frontend → Tydi-IR (text round trip) → VHDL;
//! simulator → Tydi-IR testbench → VHDL testbench.

use tydi::ir::text::{emit_project, parse_project};
use tydi::lang::{compile, CompileOptions};
use tydi::sim::{BehaviorRegistry, Packet, Simulator};
use tydi::stdlib::{full_registry, with_stdlib};
use tydi::vhdl::check::check_vhdl;
use tydi::vhdl::{generate_project, generate_testbench, VhdlOptions};

const DESIGN: &str = r#"
package flow;
use std;

type Row = Stream(Bit(16), d=1);

streamlet double_s {
    i : Row in,
    o : Row out,
}
@NoStrictType
impl double_i of double_s {
    instance two(const_vec_i<type Row, 2, 6>),
    instance mul(multiplier_i<type Row, type Row, type Row>),
    i => mul.in0,
    two.o => mul.in1,
    mul.o => o,
}
"#;

fn compiled() -> tydi::lang::CompileOutput {
    let sources = with_stdlib(&[("flow.td", DESIGN)]);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile(&refs, &CompileOptions::default()).expect("compile")
}

#[test]
fn frontend_to_ir_text_round_trip() {
    let output = compiled();
    let text = emit_project(&output.project);
    let reparsed = parse_project(&text).expect("IR text parses back");
    assert_eq!(
        reparsed.implementations().len(),
        output.project.implementations().len()
    );
    assert_eq!(
        reparsed.streamlets().len(),
        output.project.streamlets().len()
    );
    // Round trip is a fixed point.
    assert_eq!(emit_project(&reparsed), text);
    // The reparsed project still satisfies every design rule.
    assert_eq!(reparsed.validate(), Ok(()));
}

#[test]
fn backend_generates_checkable_vhdl() {
    let output = compiled();
    let registry = full_registry();
    let files = generate_project(&output.project, &registry, &VhdlOptions::default())
        .expect("VHDL generation");
    assert!(!files.is_empty());
    for file in &files {
        let issues = check_vhdl(&file.contents);
        assert!(issues.is_empty(), "{}: {issues:?}", file.name);
    }
}

#[test]
fn simulator_records_testbench_and_lowers_to_vhdl() {
    let output = compiled();
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&output.project, "double_i", &registry).expect("simulator");
    sim.feed("i", [Packet::data(3), Packet::data(5), Packet::last(7, 1)])
        .unwrap();
    let result = sim.run(10_000);
    // The const source is sized to the stimulus; everything drains.
    let outputs: Vec<i64> = sim
        .outputs("o")
        .unwrap()
        .iter()
        .map(|(_, p)| p.data)
        .collect();
    assert_eq!(outputs, vec![6, 10, 14], "run: {result:?}");

    // Record the boundary traffic as a Tydi-IR testbench, then lower
    // it to a VHDL testbench (paper section V-C).
    let tb =
        tydi::sim::testbench_gen::record_testbench(&sim, &output.project, "double_i", "double_tb")
            .expect("testbench recording");
    assert_eq!(tb.stimuli().len(), 3);
    assert_eq!(tb.expectations().len(), 3);
    let vhdl =
        generate_testbench(&output.project, &tb, &VhdlOptions::default()).expect("testbench VHDL");
    assert!(vhdl.contains("entity double_tb is"));
    assert!(check_vhdl(&vhdl).is_empty());
}

#[test]
fn state_transitions_are_observable() {
    // Simulation code drives a state machine; the engine records the
    // transition table (paper section V-B).
    let source = r#"
package fsm;
type W8 = Stream(Bit(8));
streamlet echo_s { i : W8 in, o : W8 out, }
impl echo_i of echo_s external {
    simulation {
        state mode = "waiting";
        on (i.recv && mode == "waiting") {
            set_state(mode, "replying");
            send(o, i.data);
            ack(i);
        }
        on (o.ack && mode == "replying") {
            set_state(mode, "waiting");
        }
    }
}
"#;
    let out = compile(&[("fsm.td", source)], &CompileOptions::default()).expect("compile");
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&out.project, "echo_i", &registry).expect("simulator");
    sim.feed("i", [Packet::data(1), Packet::data(2)]).unwrap();
    let result = sim.run(10_000);
    assert!(result.finished);
    let transitions = sim.state_transitions();
    assert!(
        transitions
            .iter()
            .any(|(_, _, from, to)| from.contains("waiting") && to.contains("replying")),
        "transitions: {transitions:?}"
    );
    assert!(transitions
        .iter()
        .any(|(_, _, from, to)| from.contains("replying") && to.contains("waiting")));
}

#[test]
fn multi_clock_design_lowers_with_per_domain_clocks() {
    // Cookbook 07's CDC design: the generated entities expose one
    // clk/rst pair per clock domain.
    let source = std::fs::read_to_string(
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cookbook/07_clockdomains.td"),
    )
    .expect("cookbook file");
    let out = compile(&[("cdc.td", &source)], &CompileOptions::default()).expect("compile");
    let registry = full_registry();
    let files = generate_project(&out.project, &registry, &VhdlOptions::default())
        .expect("VHDL generation");
    let app = files
        .iter()
        .find(|f| f.name == "app_i.vhd")
        .expect("app_i.vhd");
    assert!(app.contents.contains("clk_mem : in std_logic"));
    assert!(app.contents.contains("rst_mem : in std_logic"));
    assert!(app.contents.contains("clk_core : in std_logic"));
    for file in &files {
        assert!(check_vhdl(&file.contents).is_empty(), "{}", file.name);
    }
}
