//! Differential tests for the incremental compilation pipeline: a
//! compile served (partly or fully) from a warm [`ArtifactCache`]
//! must produce **byte-identical** VHDL and SystemVerilog to a cold
//! compile of the same sources — for every cookbook design and for
//! every edit kind the cache distinguishes:
//!
//! * a *touch* (recompile with unchanged text) reuses every stage;
//! * a *comment-only edit* re-parses the edited file but reuses
//!   elaboration, sugaring and the DRC (the AST fingerprint is
//!   comment-insensitive);
//! * a *structural edit* (template argument change, added
//!   definitions) recomputes the dirty cone — and still matches the
//!   cold compile of the edited text bit for bit;
//! * a cache restored from disk behaves like the in-memory one.

use std::fs;
use std::path::PathBuf;
use tydi::lang::{
    compile, compile_with_cache, ArtifactCache, CompileOptions, CompileOutput, Stage,
};
use tydi::stdlib::{full_registry, stdlib_source, STDLIB_FILE_NAME};
use tydi::vhdl::{
    generate_project_cached, generate_project_for, Backend, BuiltinRegistry, CodegenCache,
    VhdlOptions,
};

fn cookbook_files() -> Vec<String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cookbook");
    let mut files: Vec<String> = fs::read_dir(dir)
        .expect("cookbook dir")
        .filter_map(|e| {
            let name = e.expect("entry").file_name().to_string_lossy().to_string();
            name.ends_with(".td").then_some(name)
        })
        .collect();
    files.sort();
    files
}

fn cookbook_text(file: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("cookbook")
        .join(file);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

fn sources_for(file: &str, text: &str) -> Vec<(String, String)> {
    vec![
        (STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()),
        (file.to_string(), text.to_string()),
    ]
}

fn registry() -> BuiltinRegistry {
    let registry = full_registry();
    tydi::fletcher::register_fletcher_rtl(&registry);
    registry
}

fn render_backend(
    project: &tydi::ir::Project,
    registry: &BuiltinRegistry,
    backend: Backend,
) -> String {
    generate_project_for(project, registry, &VhdlOptions::default(), backend)
        .unwrap_or_else(|e| panic!("{backend} generation failed: {e}"))
        .iter()
        .map(|f| {
            format!(
                "{} file: {}\n{}",
                backend.comment_prefix(),
                f.name,
                f.contents
            )
        })
        .collect()
}

/// Renders both backends' concatenated output for a project.
fn render_both(project: &tydi::ir::Project, registry: &BuiltinRegistry) -> (String, String) {
    (
        render_backend(project, registry, Backend::Vhdl),
        render_backend(project, registry, Backend::SystemVerilog),
    )
}

fn compile_cold(file: &str, text: &str) -> CompileOutput {
    let sources = sources_for(file, text);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile(&refs, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("{file} failed to compile:\n{e}"))
}

fn compile_warm(file: &str, text: &str, cache: &mut ArtifactCache) -> CompileOutput {
    let sources = sources_for(file, text);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile_with_cache(&refs, &CompileOptions::default(), cache)
        .unwrap_or_else(|e| panic!("{file} failed cached compile:\n{e}"))
}

/// Sums (reused, recomputed) for one stage across the records.
fn stage_counts(output: &CompileOutput, stage: Stage) -> (usize, usize) {
    output
        .stage_records
        .iter()
        .filter(|r| r.stage == stage)
        .fold((0, 0), |(re, rc), r| (re + r.reused, rc + r.recomputed))
}

/// Asserts warm output equals a cold compile of the same text, both
/// in diagnostics-bearing compile results and in emitted RTL bytes.
fn assert_differential(file: &str, text: &str, warm: &CompileOutput) {
    let cold = compile_cold(file, text);
    let registry = registry();
    let (cold_vhdl, cold_sv) = render_both(&cold.project, &registry);
    let (warm_vhdl, warm_sv) = render_both(&warm.project, &registry);
    assert_eq!(cold_vhdl, warm_vhdl, "{file}: VHDL drifted under the cache");
    assert_eq!(cold_sv, warm_sv, "{file}: SV drifted under the cache");
    // Diagnostics replay identically (message + stage + severity).
    let render = |out: &CompileOutput| -> Vec<String> {
        out.diagnostics
            .iter()
            .map(|d| format!("{}|{}|{}", d.severity, d.stage, d.message))
            .collect()
    };
    assert_eq!(render(&cold), render(warm), "{file}: diagnostics drifted");
    assert_eq!(
        cold.sugar_report, warm.sugar_report,
        "{file}: sugar report drifted"
    );
}

/// Touch: recompiling unchanged text through a warm cache reuses
/// every stage and matches the cold compile byte for byte.
#[test]
fn touch_reuses_everything_and_matches_cold() {
    for file in cookbook_files() {
        let text = cookbook_text(&file);
        let mut cache = ArtifactCache::new();
        compile_warm(&file, &text, &mut cache); // populate
        let warm = compile_warm(&file, &text, &mut cache);
        let (parse_reused, parse_recomputed) = stage_counts(&warm, Stage::Parse);
        assert_eq!(parse_recomputed, 0, "{file}: touch must not re-parse");
        assert_eq!(parse_reused, 2, "{file}: stdlib + design reuse");
        assert_eq!(stage_counts(&warm, Stage::Elaborate), (1, 0), "{file}");
        assert_eq!(stage_counts(&warm, Stage::Sugar), (1, 0), "{file}");
        assert_eq!(stage_counts(&warm, Stage::Drc), (1, 0), "{file}");
        assert_differential(&file, &text, &warm);
    }
}

/// Comment-only edit: the edited file re-parses, but its AST
/// fingerprint is unchanged, so elaboration and everything after it
/// reuse — and the output still matches a cold compile.
#[test]
fn comment_only_edit_reuses_elaboration() {
    for file in cookbook_files() {
        let text = cookbook_text(&file);
        let mut cache = ArtifactCache::new();
        compile_warm(&file, &text, &mut cache);
        let edited = format!("// touched by incremental_cache tests\n{text}\n// trailing\n");
        let warm = compile_warm(&file, &edited, &mut cache);
        let (parse_reused, parse_recomputed) = stage_counts(&warm, Stage::Parse);
        assert_eq!(parse_reused, 1, "{file}: stdlib reuses");
        assert_eq!(parse_recomputed, 1, "{file}: edited file re-parses");
        assert_eq!(
            stage_counts(&warm, Stage::Elaborate),
            (1, 0),
            "{file}: comment edit must not re-elaborate"
        );
        assert_differential(&file, &edited, &warm);
    }
}

/// Structural edit: appended definitions change the AST fingerprint,
/// elaboration recomputes, and the warm output matches a cold compile
/// of the edited text.
#[test]
fn structural_edit_recomputes_and_matches_cold() {
    for file in cookbook_files() {
        let text = cookbook_text(&file);
        let mut cache = ArtifactCache::new();
        compile_warm(&file, &text, &mut cache);
        let edited = format!(
            "{text}\ntype CacheProbeT = Stream(Bit(7));\n\
             streamlet cache_probe_s {{ i : CacheProbeT in, o : CacheProbeT out, }}\n\
             impl cache_probe_i of cache_probe_s {{ i => o, }}\n"
        );
        let warm = compile_warm(&file, &edited, &mut cache);
        assert_eq!(
            stage_counts(&warm, Stage::Elaborate),
            (0, 1),
            "{file}: structural edit must re-elaborate"
        );
        assert!(
            warm.project.implementation("cache_probe_i").is_some(),
            "{file}: edit visible in output"
        );
        assert_differential(&file, &edited, &warm);
    }
}

/// Template-argument change: flipping an instantiation argument in
/// the templates cookbook recomputes elaboration and matches cold.
#[test]
fn template_argument_change_matches_cold() {
    let file = "03_templates.td";
    let text = cookbook_text(file);
    let mut cache = ArtifactCache::new();
    compile_warm(file, &text, &mut cache);
    // A genuine template-argument change: widen the lane type.
    let edited = text.replace("Stream(Bit(8))", "Stream(Bit(24))");
    assert_ne!(text, edited, "03_templates.td should use Stream(Bit(8))");
    let warm = compile_warm(file, &edited, &mut cache);
    assert_eq!(stage_counts(&warm, Stage::Elaborate), (0, 1));
    assert_differential(file, &edited, &warm);
    // And back: the original artifact is still cached, so everything
    // reuses and still matches cold.
    let back = compile_warm(file, &text, &mut cache);
    assert_eq!(stage_counts(&back, Stage::Elaborate), (1, 0));
    assert_differential(file, &text, &back);
}

/// Disk persistence: a cache saved and reloaded serves the elaborate
/// stage from disk and still produces byte-identical output.
#[test]
fn persisted_cache_round_trips_and_matches_cold() {
    let dir = std::env::temp_dir().join(format!("tydic-differential-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    for file in ["01_variables.td", "06_sugaring.td", "10_full_flow.td"] {
        let text = cookbook_text(file);
        let mut cache = ArtifactCache::new();
        compile_warm(file, &text, &mut cache);
        cache.save(&dir).expect("save cache");

        let mut restored = ArtifactCache::load(&dir);
        assert_eq!(restored.elab_entries(), cache.elab_entries());
        let warm = compile_warm(file, &text, &mut restored);
        assert_eq!(
            stage_counts(&warm, Stage::Elaborate),
            (1, 0),
            "{file}: disk hit"
        );
        let (parse_reused, parse_recomputed) = stage_counts(&warm, Stage::Parse);
        assert_eq!(
            (parse_reused, parse_recomputed),
            (2, 0),
            "{file}: full elab hit needs no AST materialization"
        );
        assert_differential(file, &text, &warm);

        // A comment edit against the restored cache: the unchanged
        // stdlib AST is rebuilt on demand, the elaboration recomputes
        // only because the edited design changed structurally? No —
        // comment edits keep the AST fingerprint, so even from disk
        // the elaborate stage reuses.
        let edited = format!("// disk warm start\n{text}");
        let mut restored2 = ArtifactCache::load(&dir);
        let warm2 = compile_warm(file, &edited, &mut restored2);
        assert_eq!(
            stage_counts(&warm2, Stage::Elaborate),
            (1, 0),
            "{file}: comment edit reuses elaboration from disk"
        );
        assert_differential(file, &edited, &warm2);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The per-module codegen cache is differential too: cached lowering
/// and emission match the uncached path for every cookbook design,
/// and a second pass reuses every module.
#[test]
fn codegen_cache_matches_uncached_for_every_design() {
    let registry = registry();
    let mut cache = CodegenCache::new();
    for file in cookbook_files() {
        let text = cookbook_text(&file);
        let cold = compile_cold(&file, &text);
        for backend in Backend::ALL {
            let plain =
                generate_project_for(&cold.project, &registry, &VhdlOptions::default(), backend)
                    .unwrap();
            let cached = generate_project_cached(
                &cold.project,
                &registry,
                &VhdlOptions::default(),
                backend,
                &mut cache,
            )
            .unwrap();
            assert_eq!(plain, cached, "{file}/{backend}: cached codegen drifted");
        }
        // Second pass over the same project: modules and files reuse.
        let before = cache.stats();
        for backend in Backend::ALL {
            let again = generate_project_cached(
                &cold.project,
                &registry,
                &VhdlOptions::default(),
                backend,
                &mut cache,
            )
            .unwrap();
            let plain =
                generate_project_for(&cold.project, &registry, &VhdlOptions::default(), backend)
                    .unwrap();
            assert_eq!(again, plain, "{file}/{backend}: reuse pass drifted");
        }
        let after = cache.stats();
        assert_eq!(
            after.modules_recomputed, before.modules_recomputed,
            "{file}: second pass must not re-lower"
        );
        assert_eq!(
            after.files_recomputed, before.files_recomputed,
            "{file}: second pass must not re-emit"
        );
    }
}
