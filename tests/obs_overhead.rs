//! The disabled-path guarantee of the tracing layer, checked by
//! counter rather than by clock: with tracing off, a full compile
//! must record **zero** trace events — every `span`/`instant` call
//! site reduces to one relaxed atomic load and allocates nothing.
//!
//! This is the deterministic half of the overhead guard; the timed
//! half (`overhead_ratio` vs the committed `BENCH_obs_overhead.json`)
//! lives in `crates/bench/benches/obs_overhead.rs`.
//!
//! One test function on purpose: the trace level and event counter
//! are process-wide, so sharing this binary with other tests would
//! race on them.

use tydi_obs::trace::{self, Level};

#[test]
fn disabled_tracing_records_nothing_across_a_full_compile() {
    trace::set_level(Level::Off);
    let drained = trace::take_events();
    assert!(drained.is_empty(), "stale events before the probe");

    let before = trace::events_recorded();
    // A real multi-package compile crosses every instrumented crate:
    // parse, per-package elaboration, sugar, DRC, IR emission.
    let (_output, ir) = tydi_bench::compile_package_dag(10);
    assert!(!ir.is_empty());

    assert_eq!(
        trace::events_recorded() - before,
        0,
        "a disabled-trace compile must not record events"
    );
    assert!(
        trace::take_events().is_empty(),
        "a disabled-trace compile must not buffer events"
    );

    // The same compile with tracing on does record — proving the
    // counter probe actually covers the instrumented call sites.
    trace::set_level(Level::Coarse);
    tydi_bench::compile_package_dag(10);
    trace::set_level(Level::Off);
    let events = trace::take_events();
    assert!(
        !events.is_empty(),
        "the probe workload must cross instrumented call sites"
    );
}
