//! End-to-end SystemVerilog backend coverage: every cookbook design
//! lowers once to the backend-neutral netlist and renders through the
//! SystemVerilog emitter, structurally clean and in lock-step with
//! the VHDL output.

use std::fs;
use std::path::PathBuf;
use tydi::lang::{compile, CompileOptions};
use tydi::rtl::check::check_verilog;
use tydi::rtl::{emitter_for, Backend};
use tydi::stdlib::{full_registry, stdlib_source, STDLIB_FILE_NAME};
use tydi::vhdl::lower::{backend_is_complete, lower_project};
use tydi::vhdl::{files_to_string, generate_project_for, VhdlOptions};

fn cookbook_files() -> Vec<String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("cookbook");
    let mut files: Vec<String> = fs::read_dir(dir)
        .expect("cookbook dir")
        .filter_map(|e| {
            let name = e.expect("entry").file_name().to_string_lossy().to_string();
            name.ends_with(".td").then_some(name)
        })
        .collect();
    files.sort();
    files
}

fn compile_cookbook(file: &str) -> tydi::ir::Project {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("cookbook")
        .join(file);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let sources = [
        (STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()),
        (file.to_string(), text),
    ];
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile(&refs, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("cookbook {file} failed to compile:\n{e}"))
        .project
}

fn registry() -> tydi::vhdl::BuiltinRegistry {
    let registry = full_registry();
    tydi::fletcher::register_fletcher_rtl(&registry);
    registry
}

/// `tydic compile --emit verilog` must succeed on every cookbook
/// design and produce structurally clean SystemVerilog.
#[test]
fn every_cookbook_design_emits_clean_verilog() {
    for file in cookbook_files() {
        let project = compile_cookbook(&file);
        let files = generate_project_for(
            &project,
            &registry(),
            &VhdlOptions::default(),
            Backend::SystemVerilog,
        )
        .unwrap_or_else(|e| panic!("{file}: verilog generation failed:\n{e}"));
        assert!(!files.is_empty(), "{file}: no files generated");
        for f in &files {
            assert!(f.name.ends_with(".sv"), "{file}: {}", f.name);
            let issues = check_verilog(&f.contents);
            assert!(issues.is_empty(), "{file}/{}: {issues:?}", f.name);
            assert!(f.contents.contains("endmodule"), "{file}/{}", f.name);
        }
    }
}

/// Both emitters consume one shared lowering: same module set, same
/// order, same netlist object.
#[test]
fn vhdl_and_verilog_share_one_netlist_lowering() {
    for file in cookbook_files() {
        let project = compile_cookbook(&file);
        let registry = registry();
        let netlist = lower_project(&project, &registry, &VhdlOptions::default())
            .unwrap_or_else(|e| panic!("{file}: lowering failed:\n{e}"));
        for backend in Backend::ALL {
            assert!(
                backend_is_complete(&netlist, backend),
                "{file}: netlist incomplete for {backend}"
            );
        }
        let vhdl = emitter_for(Backend::Vhdl).emit_netlist(&netlist).unwrap();
        let sv = emitter_for(Backend::SystemVerilog)
            .emit_netlist(&netlist)
            .unwrap();
        assert_eq!(vhdl.len(), sv.len(), "{file}: file count diverged");
        for (v, s) in vhdl.iter().zip(&sv) {
            assert_eq!(
                v.name.trim_end_matches(".vhd"),
                s.name.trim_end_matches(".sv"),
                "{file}: module order diverged"
            );
        }
    }
}

/// The concatenated stdout form is splittable: one banner per file,
/// and splitting on banners recovers every file body.
#[test]
fn banner_concatenation_is_splittable() {
    let project = compile_cookbook("12_emit_verilog.td");
    let registry = registry();
    for backend in Backend::ALL {
        let files =
            generate_project_for(&project, &registry, &VhdlOptions::default(), backend).unwrap();
        let text = files_to_string(&files, backend);
        let banner_prefix = format!("{} file: ", backend.comment_prefix());
        let banners: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with(&banner_prefix))
            .collect();
        assert_eq!(banners.len(), files.len(), "{backend}");
        for (banner, file) in banners.iter().zip(&files) {
            assert_eq!(
                *banner,
                format!("{banner_prefix}{}", file.name),
                "{backend}"
            );
        }
    }
}

/// Identifier legalization is shared across backends: a module name
/// never collides with a VHDL *or* Verilog keyword, whichever backend
/// renders it.
#[test]
fn module_names_are_legal_in_every_backend() {
    for file in cookbook_files() {
        let project = compile_cookbook(&file);
        let netlist = lower_project(&project, &registry(), &VhdlOptions::default()).unwrap();
        for module in &netlist.modules {
            for backend in Backend::ALL {
                assert!(
                    !backend.is_reserved(&module.name),
                    "{file}: module `{}` collides with a {backend} keyword",
                    module.name
                );
            }
        }
    }
}
