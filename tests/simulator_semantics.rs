//! Property-based and scenario tests on simulator semantics:
//! conservation laws, ordering, backpressure, and deadlock reporting.

use proptest::prelude::*;
use tydi::lang::{compile, CompileOptions};
use tydi::sim::{BehaviorRegistry, Packet, SchedulerKind, Simulator, StopReason};
use tydi::stdlib::with_stdlib;

fn chain_project(stages: usize) -> tydi::ir::Project {
    use std::fmt::Write as _;
    let mut source = String::from(
        "package t;\nuse std;\ntype B = Stream(Bit(32), d=1);\nstreamlet top_s { i : B in, o : B out, }\nimpl top_i of top_s {\n",
    );
    for s in 0..stages {
        let _ = writeln!(source, "    instance p_{s}(passthrough_i<type B>),");
    }
    source.push_str("    i => p_0.i,\n");
    for s in 1..stages {
        let _ = writeln!(source, "    p_{}.o => p_{s}.i,", s - 1);
    }
    let _ = writeln!(source, "    p_{}.o => o,", stages - 1);
    source.push_str("}\n");
    let sources = with_stdlib(&[("t.td", source.as_str())]);
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(a, b)| (a.as_str(), b.as_str()))
        .collect();
    compile(&refs, &CompileOptions::default())
        .expect("compile")
        .project
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lossless pipelines conserve packets and preserve order under
    /// arbitrary backpressure.
    #[test]
    fn passthrough_chain_conserves_packets(
        stages in 1usize..5,
        values in proptest::collection::vec(-1000i64..1000, 1..40),
        stall in 1u64..5,
    ) {
        let project = chain_project(stages);
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).expect("simulator");
        sim.set_probe_backpressure("o", stall).unwrap();
        let n = values.len();
        sim.feed("i", values.iter().enumerate().map(|(i, &v)| {
            if i + 1 == n { Packet::last(v, 1) } else { Packet::data(v) }
        })).unwrap();
        let result = sim.run(200_000);
        prop_assert!(result.finished, "{result:?}");
        let out: Vec<i64> = sim.outputs("o").unwrap().iter().map(|(_, p)| p.data).collect();
        prop_assert_eq!(out, values.clone());
        // The final packet still carries its dimension close.
        prop_assert_eq!(sim.outputs("o").unwrap().last().unwrap().1.last, 1);
    }

    /// sum(filter(x, keep)) == sum of kept values, for arbitrary data
    /// and keep masks.
    #[test]
    fn filter_sum_equals_reference(
        rows in proptest::collection::vec((0i64..1000, any::<bool>()), 1..30),
    ) {
        let n = rows.len();
        let source = "package t;\nuse std;\ntype B = Stream(Bit(32), d=1);\ntype Agg = Stream(Bit(64));\n\
             streamlet top_s { data : B in, keep : BoolStream in, total : Agg out, }\n\
             @NoStrictType\nimpl top_i of top_s {\n\
                 instance f(filter_i<type B>),\n\
                 data => f.i,\n    keep => f.keep,\n\
                 instance s(sum_i<type B, type Agg>),\n\
                 f.o => s.i,\n    s.o => total,\n}".to_string();
        let sources = with_stdlib(&[("t.td", source.as_str())]);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let project = compile(&refs, &CompileOptions::default()).expect("compile").project;
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).expect("simulator");
        sim.feed("data", rows.iter().enumerate().map(|(i, &(v, _))| {
            if i + 1 == n { Packet::last(v, 1) } else { Packet::data(v) }
        })).unwrap();
        sim.feed("keep", rows.iter().map(|&(_, k)| Packet::data(k as i64))).unwrap();
        let result = sim.run(200_000);
        prop_assert!(result.finished, "{result:?}");
        let expected: i64 = rows.iter().filter(|(_, k)| *k).map(|(v, _)| v).sum();
        let out = sim.outputs("total").unwrap();
        let produced: Vec<i64> = out.iter().filter(|(_, p)| !p.empty).map(|(_, p)| p.data).collect();
        prop_assert_eq!(produced, vec![expected]);
    }

    /// The event-driven scheduler is an optimization, not a semantic
    /// change: delivered packets, arrival cycles, injection cycles and
    /// termination classification must match the polling loop exactly,
    /// for arbitrary pipeline depth, stimulus and backpressure.
    #[test]
    fn event_driven_scheduler_matches_polling(
        stages in 1usize..5,
        values in proptest::collection::vec(-1000i64..1000, 1..40),
        stall in 1u64..9,
    ) {
        let project = chain_project(stages);
        let registry = BehaviorRegistry::with_std();
        let run = |kind: SchedulerKind| {
            let mut sim = Simulator::new(&project, "top_i", &registry).expect("simulator");
            sim.set_scheduler(kind);
            sim.set_probe_backpressure("o", stall).unwrap();
            sim.feed("i", values.iter().map(|&v| Packet::data(v))).unwrap();
            let result = sim.run(200_000);
            (
                result.finished,
                result.deadlock,
                sim.outputs("o").unwrap().to_vec(),
                sim.injected("i").unwrap().to_vec(),
            )
        };
        let polling = run(SchedulerKind::Polling);
        let event = run(SchedulerKind::EventDriven);
        prop_assert_eq!(polling.0, event.0);
        prop_assert_eq!(polling.1, event.1);
        prop_assert_eq!(polling.2, event.2);
        prop_assert_eq!(polling.3, event.3);
    }

    /// The duplicator delivers identical copies on every branch.
    #[test]
    fn duplicator_copies_agree(values in proptest::collection::vec(0i64..100, 1..20)) {
        let source = "package t;\nuse std;\ntype B = Stream(Bit(32), d=1);\n\
             streamlet top_s { i : B in, a : B out, b : B out, c : B out, }\n\
             impl top_i of top_s {\n    i => a,\n    i => b,\n    i => c,\n}";
        let sources = with_stdlib(&[("t.td", source)]);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(x, y)| (x.as_str(), y.as_str())).collect();
        let project = compile(&refs, &CompileOptions::default()).expect("compile").project;
        let registry = BehaviorRegistry::with_std();
        let mut sim = Simulator::new(&project, "top_i", &registry).expect("simulator");
        sim.feed("i", values.iter().map(|&v| Packet::data(v))).unwrap();
        let result = sim.run(100_000);
        prop_assert!(result.finished);
        let get = |p: &str| -> Vec<i64> {
            sim.outputs(p).unwrap().iter().map(|(_, q)| q.data).collect()
        };
        prop_assert_eq!(get("a"), values.clone());
        prop_assert_eq!(get("b"), values.clone());
        prop_assert_eq!(get("c"), values);
    }
}

#[test]
fn throughput_excludes_trailing_idle_window() {
    use tydi::spec::clock::PhysicalClock;
    use tydi::spec::ClockDomain;
    // Under the polling loop, a run spends the full idle threshold
    // winding down after the last packet; the throughput figure must
    // be computed over the active window, not the padded total.
    let project = chain_project(1);
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&project, "top_i", &registry).expect("simulator");
    sim.set_scheduler(SchedulerKind::Polling);
    sim.set_physical_clock(PhysicalClock::new(ClockDomain::default(), 100e6));
    sim.feed("i", (0..10).map(Packet::data)).unwrap();
    let result = sim.run(10_000);
    assert!(result.finished);
    // The polling run padded the total with the idle threshold.
    assert!(sim.cycle() > sim.active_cycles() + 32);
    let hz = sim.throughput_hz("o").unwrap().expect("clock bound");
    let active_seconds = sim.active_cycles() as f64 * 10e-9;
    assert!(
        (hz - 10.0 / active_seconds).abs() < 1e-6,
        "throughput must use the active window: {hz}"
    );
    // Computed over the padded total it would be visibly lower.
    let padded = 10.0 / (sim.cycle() as f64 * 10e-9);
    assert!(hz > 2.0 * padded);
}

#[test]
fn clean_idle_timeout_is_not_a_deadlock() {
    // A registered custom behaviour with the default (polling) wake
    // hint and no packets in flight: the run ends via the idle
    // threshold, classified as IdleTimeout, finished = true.
    struct Inert;
    impl tydi::sim::Behavior for Inert {
        fn tick(&mut self, _io: &mut tydi::sim::IoCtx<'_>) {}
    }
    let mut project = tydi::ir::Project::new("t");
    let ty = tydi::spec::LogicalType::stream(
        tydi::spec::LogicalType::Bit(8),
        tydi::spec::StreamParams::new(),
    );
    project
        .add_streamlet(tydi::ir::Streamlet::new("s").with_port(tydi::ir::Port::new(
            "o",
            tydi::ir::PortDirection::Out,
            ty,
        )))
        .unwrap();
    project
        .add_implementation(
            tydi::ir::Implementation::external("inert_i", "s").with_builtin("test.inert"),
        )
        .unwrap();
    let mut registry = BehaviorRegistry::new();
    registry.register("test.inert", |_, _| Ok(Box::new(Inert)));
    let mut sim = Simulator::new(&project, "inert_i", &registry).unwrap();
    let result = sim.run(10_000);
    assert_eq!(result.reason, StopReason::IdleTimeout);
    assert!(result.finished);
    assert!(result.deadlock.is_none());
}

#[test]
fn deadlock_report_names_the_congested_channel() {
    let project = chain_project(2);
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&project, "top_i", &registry).expect("simulator");
    sim.set_probe_backpressure("o", u64::MAX).unwrap();
    sim.feed("i", (0..32).map(Packet::data)).unwrap();
    let result = sim.run(50_000);
    let report = result.deadlock.expect("stall expected");
    assert!(!report.stuck_channels.is_empty());
    assert!(report.pending_inputs.contains(&"i".to_string()));
    // Bottleneck accounting blames output ports of the chain.
    let bn = sim.bottlenecks();
    assert!(bn.blockages.iter().any(|b| b.port == "o"));
    assert!(bn.worst_ratio() > 0.5);
}

#[test]
fn failure_injection_component_that_never_acks() {
    // A broken external component holds packets forever: the design
    // stalls and the report points at it.
    let source = r#"
package t;
type B = Stream(Bit(8), d=1);
streamlet hold_s { i : B in, o : B out, }
impl hold_i of hold_s external {
    simulation {
        state st = "stuck";
        on (i.recv && st == "never") {
            send(o, i.data);
            ack(i);
        }
    }
}
"#;
    let project = compile(&[("t.td", source)], &CompileOptions::default())
        .expect("compile")
        .project;
    let registry = BehaviorRegistry::with_std();
    let mut sim = Simulator::new(&project, "hold_i", &registry).unwrap();
    sim.feed("i", (0..8).map(Packet::data)).unwrap();
    let result = sim.run(10_000);
    assert!(!result.finished);
    let report = result.deadlock.expect("stall report");
    assert!(report
        .stuck_channels
        .iter()
        .any(|(name, occupancy)| name.contains("boundary.i") && *occupancy > 0));
}

#[test]
fn failure_injection_bad_simulation_source() {
    // Simulation code that does not parse is rejected by the frontend
    // already, with a named unknown action.
    let source = r#"
package t;
type B = Stream(Bit(8));
streamlet s { i : B in, o : B out, }
impl broken_i of s external {
    simulation {
        on (i.recv) {
            launch_missiles(i);
        }
    }
}
"#;
    let err = compile(&[("t.td", source)], &CompileOptions::default())
        .expect_err("malformed simulation code must not compile");
    assert!(err
        .diagnostics
        .iter()
        .any(|d| d.message.contains("launch_missiles")));
}

#[test]
fn failure_injection_missing_builtin_parameter() {
    // A builtin that requires a template parameter rejects impls
    // without it at simulator construction time.
    let mut project = tydi::ir::Project::new("t");
    let ty = tydi::spec::LogicalType::stream(
        tydi::spec::LogicalType::Bit(8),
        tydi::spec::StreamParams::new(),
    );
    project
        .add_streamlet(tydi::ir::Streamlet::new("s").with_port(tydi::ir::Port::new(
            "o",
            tydi::ir::PortDirection::Out,
            ty,
        )))
        .unwrap();
    project
        .add_implementation(
            tydi::ir::Implementation::external("c_i", "s").with_builtin("std.const"),
        )
        .unwrap();
    let registry = BehaviorRegistry::with_std();
    let Err(err) = Simulator::new(&project, "c_i", &registry) else {
        panic!("expected a behaviour error");
    };
    assert!(err.to_string().contains("missing template parameter"));
}
