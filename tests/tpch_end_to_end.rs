//! F-2 / T-IV: the full big-data workflow of paper Fig. 2 on every
//! evaluated TPC-H query — compile, lower to VHDL (structurally
//! checked), simulate, and match the software reference.

use tydi::fletcher::register_fletcher_rtl;
use tydi::stdlib::full_registry;
use tydi::tpch::{all_queries, table4, verify_query, GenOptions, TpchData};
use tydi::vhdl::{check::check_vhdl, generate_project, VhdlOptions};

fn data() -> TpchData {
    TpchData::generate(GenOptions {
        rows: 160,
        seed: 90,
    })
}

#[test]
fn every_query_simulates_to_the_reference_result() {
    let data = data();
    for case in all_queries(&data) {
        verify_query(&case, &data).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn every_query_lowers_to_structurally_valid_vhdl() {
    let data = data();
    let registry = full_registry();
    register_fletcher_rtl(&registry);
    for case in all_queries(&data) {
        let compiled = case
            .compile()
            .unwrap_or_else(|e| panic!("{}:\n{e}", case.id));
        let files = generate_project(&compiled.project, &registry, &VhdlOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        for file in &files {
            let issues = check_vhdl(&file.contents);
            assert!(issues.is_empty(), "{} {}: {issues:?}", case.id, file.name);
        }
    }
}

#[test]
fn table4_ratios_reproduce_the_paper_shape() {
    let data = data();
    let rows = table4(&data).expect("table4");
    // Who wins: Tydi-lang is always far terser than VHDL.
    for row in &rows {
        assert!(row.rq > 5.0, "{}: Rq = {:.1}", row.query, row.rq);
        assert!(row.ra > 1.5, "{}: Ra = {:.1}", row.query, row.ra);
    }
    // By roughly what factor: queries with repeated sub-structure
    // (Q19's three similar clauses, Q1's four combos) have the highest
    // Rq, exactly as the paper argues.
    let rq_of = |name: &str| rows.iter().find(|r| r.query == name).unwrap().rq;
    assert!(rq_of("TPC-H 19") > rq_of("TPC-H 3"));
    assert!(rq_of("TPC-H 1") > rq_of("TPC-H 3"));
    // Where the crossover falls: sugaring shrinks the query logic.
    let sugared = rows.iter().find(|r| r.query == "TPC-H 1").unwrap();
    let desugared = rows
        .iter()
        .find(|r| r.query.contains("without sugaring"))
        .unwrap();
    assert!(desugared.loc_q > sugared.loc_q);
    assert!(desugared.loc_a > sugared.loc_a);
}

#[test]
fn q6_simulation_produces_a_vhdl_testbench() {
    // §V-C on a real query: record the boundary traffic of a Q6 run
    // and lower it to a self-checking VHDL testbench.
    let data = data();
    let case = all_queries(&data)
        .into_iter()
        .find(|c| c.id == "q6")
        .unwrap();
    let compiled = case.compile().unwrap();
    let mut registry = tydi::sim::BehaviorRegistry::with_std();
    tydi::fletcher::register_fletcher_behaviors(&mut registry, data.tables.clone());
    let mut sim = tydi::sim::Simulator::new(&compiled.project, &case.top_impl, &registry).unwrap();
    sim.run((data.rows as u64 + 64) * 64);
    let tb = tydi::sim::testbench_gen::record_testbench(
        &sim,
        &compiled.project,
        &case.top_impl,
        "q6_tb",
    )
    .expect("record");
    // Q6 has no boundary inputs (the reader is internal) and one
    // output expectation stream.
    assert!(!tb.expectations().is_empty());
    let vhdl = tydi::vhdl::generate_testbench(&compiled.project, &tb, &VhdlOptions::default())
        .expect("vhdl testbench");
    assert!(vhdl.contains("entity q6_tb is"));
    assert!(check_vhdl(&vhdl).is_empty());
}

#[test]
fn results_are_independent_of_simulation_backpressure() {
    // Queries must compute the same answers under output stalls: the
    // handshake protocol guarantees functional determinism.
    let data = data();
    let case = all_queries(&data)
        .into_iter()
        .find(|c| c.id == "q6")
        .unwrap();
    let compiled = case.compile().unwrap();
    let mut registry = tydi::sim::BehaviorRegistry::with_std();
    tydi::fletcher::register_fletcher_behaviors(&mut registry, data.tables.clone());
    for stall in [1u64, 3, 7] {
        let mut sim =
            tydi::sim::Simulator::new(&compiled.project, &case.top_impl, &registry).unwrap();
        sim.set_probe_backpressure("revenue", stall).unwrap();
        sim.run((data.rows as u64 + 64) * 64 * stall);
        let out: Vec<i64> = sim
            .outputs("revenue")
            .unwrap()
            .iter()
            .filter(|(_, p)| !p.empty)
            .map(|(_, p)| p.data)
            .collect();
        assert_eq!(out, case.expected[0].1, "stall={stall}");
    }
}
