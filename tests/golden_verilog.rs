//! Golden-file snapshot tests for SystemVerilog emission over the
//! cookbook designs — the SV twin of `golden_vhdl.rs`.
//!
//! Each cookbook program compiles (with the standard library) and
//! lowers to SystemVerilog; the concatenated output — every generated
//! file prefixed with a `// file: <name>` banner — must match the
//! snapshot under `tests/golden/verilog/` byte for byte, so the SV
//! backend is byte-pinned rather than only structurally checked.
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_verilog
//! ```

use std::fs;
use std::path::PathBuf;
use tydi::lang::{compile, CompileOptions};
use tydi::stdlib::{full_registry, stdlib_source, STDLIB_FILE_NAME};
use tydi::vhdl::{generate_project_for, Backend, VhdlOptions};

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Compiles one cookbook file and renders every generated SV file
/// behind a `// file:` banner, in definition order.
fn render_cookbook_verilog(file: &str) -> String {
    let path = repo_path("cookbook").join(file);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let sources = [
        (STDLIB_FILE_NAME.to_string(), stdlib_source().to_string()),
        (file.to_string(), text),
    ];
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    let out = compile(&refs, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("cookbook {file} failed to compile:\n{e}"));
    let registry = full_registry();
    tydi::fletcher::register_fletcher_rtl(&registry);
    let files = generate_project_for(
        &out.project,
        &registry,
        &VhdlOptions::default(),
        Backend::SystemVerilog,
    )
    .unwrap_or_else(|e| panic!("cookbook {file} failed SV generation:\n{e}"));
    let mut rendered = String::new();
    for f in &files {
        rendered.push_str(&format!("// file: {}\n", f.name));
        rendered.push_str(&f.contents);
    }
    rendered
}

/// Compares (or, with `UPDATE_GOLDEN=1`, rewrites) one snapshot.
fn check_golden(cookbook_file: &str) {
    let stem = cookbook_file.trim_end_matches(".td");
    let golden_path = repo_path("tests/golden/verilog").join(format!("{stem}.sv"));
    let actual = render_cookbook_verilog(cookbook_file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(golden_path.parent().unwrap()).expect("golden dir");
        fs::write(&golden_path, &actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {golden_path:?} ({e}); \
             run `UPDATE_GOLDEN=1 cargo test --test golden_verilog` to create it"
        )
    });
    if actual != expected {
        // Point at the first diverging line for a reviewable failure.
        let mismatch = actual
            .lines()
            .zip(expected.lines())
            .position(|(a, e)| a != e)
            .map(|i| {
                format!(
                    "first mismatch at line {}:\n  actual:   {}\n  expected: {}",
                    i + 1,
                    actual.lines().nth(i).unwrap_or(""),
                    expected.lines().nth(i).unwrap_or("")
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "outputs differ after the last common line (actual {} line(s), \
                     expected {} line(s); check trailing content)",
                    actual.lines().count(),
                    expected.lines().count()
                )
            });
        panic!(
            "SystemVerilog output for {cookbook_file} drifted from {golden_path:?}.\n{mismatch}\n\
             If the change is intentional, regenerate with \
             `UPDATE_GOLDEN=1 cargo test --test golden_verilog` and review the diff."
        );
    }
}

/// Every cookbook design matches its pinned snapshot, and every
/// snapshot belongs to a cookbook design (no stale goldens). Driven
/// off the cookbook directory so newly added designs are covered (and
/// creatable via `UPDATE_GOLDEN=1`) without editing this file.
#[test]
fn cookbook_verilog_matches_golden_snapshots() {
    let mut cookbook: Vec<String> = fs::read_dir(repo_path("cookbook"))
        .expect("cookbook dir")
        .filter_map(|e| {
            let name = e.expect("entry").file_name().to_string_lossy().to_string();
            name.ends_with(".td").then_some(name)
        })
        .collect();
    cookbook.sort();
    assert!(
        cookbook.len() >= 11,
        "expected at least 11 cookbook designs, found {}",
        cookbook.len()
    );
    for file in &cookbook {
        check_golden(file);
    }
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return;
    }
    let mut goldens: Vec<String> = fs::read_dir(repo_path("tests/golden/verilog"))
        .expect("golden dir (run UPDATE_GOLDEN=1 once)")
        .filter_map(|e| {
            let name = e.expect("entry").file_name().to_string_lossy().to_string();
            name.strip_suffix(".sv").map(|stem| format!("{stem}.td"))
        })
        .collect();
    goldens.sort();
    assert_eq!(
        cookbook, goldens,
        "stale golden snapshot(s): every tests/golden/verilog/*.sv must match a cookbook design"
    );
}
