//! Property-based tests on the compiler frontend: the parser never
//! panics, the math system obeys arithmetic laws, and sugaring always
//! repairs fan-out/unused-port designs into DRC-clean projects.

use proptest::prelude::*;
use tydi::lang::{compile, CompileOptions};
use tydi::stdlib::with_stdlib;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup must never panic the lexer/parser.
    #[test]
    fn parser_never_panics_on_garbage(input in "\\PC{0,200}") {
        let _ = tydi::lang::parser::parse_package(0, &input);
    }

    /// Garbage assembled from Tydi-lang-ish fragments must never
    /// panic either (exercises deeper parse paths than raw bytes).
    #[test]
    fn parser_never_panics_on_fragment_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("package"), Just("p"), Just(";"), Just("streamlet"),
                Just("impl"), Just("of"), Just("{"), Just("}"), Just("<"),
                Just(">"), Just("type"), Just("="), Just("Stream"), Just("("),
                Just(")"), Just("Bit"), Just("8"), Just("in"), Just("out"),
                Just(","), Just("=>"), Just("for"), Just("if"), Just("const"),
                Just("instance"), Just(".."), Just("external"), Just("@"),
            ],
            0..60,
        )
    ) {
        let source = parts.join(" ");
        let _ = tydi::lang::parser::parse_package(0, &source);
    }

    /// Integer arithmetic in the math system matches Rust semantics.
    #[test]
    fn math_system_matches_host_arithmetic(a in -1000i64..1000, b in -1000i64..1000) {
        prop_assume!(b != 0);
        let source = format!(
            "package t;\nconst r : int = ({a}) + ({b}) * 3 - ({a}) / ({b}) + ({a}) % ({b});\n\
             type T = Stream(Bit(8));\nstreamlet s {{ i : T in, o : T out, }}\nimpl x of s {{ i => o, }}"
        );
        let out = compile(&[("t.td", &source)], &CompileOptions::default());
        // The const is unused by hardware but still evaluated lazily;
        // force it through a width expression instead.
        prop_assert!(out.is_ok());
        let expected = a + b * 3 - a / b + a % b;
        let width_source = format!(
            "package t;\nconst r : int = {};\ntype T = Stream(Bit(r));\n\
             streamlet s {{ i : T in, o : T out, }}\nimpl x of s {{ i => o, }}",
            expected.unsigned_abs().max(1)
        );
        let out = compile(&[("t.td", &width_source)], &CompileOptions::default()).unwrap();
        let port = &out.project.streamlet("s").unwrap().ports[0];
        let phys = tydi::spec::lower(&port.ty).unwrap();
        prop_assert_eq!(u64::from(phys[0].element_bits), expected.unsigned_abs().max(1));
    }

    /// A generated fan-out design (one source, N consumers, M unused
    /// outputs) always compiles clean WITH sugaring and always fails
    /// the DRC WITHOUT it (for N != 1 or M > 0).
    #[test]
    fn sugaring_repairs_random_fanout(consumers in 1usize..6, unused in 0usize..3) {
        use std::fmt::Write as _;
        let mut source = String::from(
            "package t;\nuse std;\ntype B = Stream(Bit(8));\nstreamlet src_s {\n    a : B out,\n",
        );
        for u in 0..unused {
            let _ = writeln!(source, "    u_{u} : B out,");
        }
        source.push_str("}\n@builtin(\"fletcher.source\")\nimpl src_i of src_s external;\nstreamlet top_s { }\nimpl top_i of top_s {\n    instance s(src_i),\n");
        for k in 0..consumers {
            let _ = writeln!(
                source,
                "    instance v_{k}(voider_i<type B>),\n    s.a => v_{k}.i,"
            );
        }
        source.push_str("}\n");

        let sources = with_stdlib(&[("t.td", source.as_str())]);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(n, t)| (n.as_str(), t.as_str())).collect();

        let sugared = compile(&refs, &CompileOptions::default());
        prop_assert!(sugared.is_ok(), "sugaring failed to repair the design");
        let out = sugared.unwrap();
        let expected_dups = usize::from(consumers > 1);
        prop_assert_eq!(out.sugar_report.duplicators, expected_dups);
        prop_assert_eq!(out.sugar_report.voiders, unused);

        let no_sugar = CompileOptions { enable_sugaring: false, ..CompileOptions::default() };
        let raw = compile(&refs, &no_sugar);
        if consumers != 1 || unused > 0 {
            prop_assert!(raw.is_err(), "DRC should reject without sugaring");
        } else {
            prop_assert!(raw.is_ok());
        }
    }

    /// Template memoisation: instantiating one template N times with
    /// K distinct argument values elaborates exactly K implementations
    /// and hits the cache N - K times.
    #[test]
    fn template_memoisation_counts(uses in proptest::collection::vec(0i64..4, 1..12)) {
        use std::fmt::Write as _;
        let mut source = String::from(
            "package t;\nuse std;\ntype B = Stream(Bit(16));\nstreamlet top_s {\n",
        );
        for k in 0..uses.len() {
            let _ = writeln!(source, "    o_{k} : B out,");
        }
        source.push_str("}\n@NoStrictType\nimpl top_i of top_s {\n");
        for (k, v) in uses.iter().enumerate() {
            let _ = writeln!(
                source,
                "    instance c_{k}(const_vec_i<type B, {v}, 4>),\n    c_{k}.o => o_{k},"
            );
        }
        source.push_str("}\n");
        let sources = with_stdlib(&[("t.td", source.as_str())]);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let out = compile(&refs, &CompileOptions::default()).expect("compile");
        let distinct: std::collections::HashSet<i64> = uses.iter().copied().collect();
        // One const impl per distinct value (each pulls in its
        // streamlet instantiation too).
        let const_impls = out
            .project
            .implementations()
            .iter()
            .filter(|i| i.name.starts_with("const_vec_i<"))
            .count();
        prop_assert_eq!(const_impls, distinct.len());
    }

    /// Algebraic laws of the math system, checked through Bit widths
    /// (the only place a constant becomes observable in the IR).
    #[test]
    fn math_laws_through_widths(a in 1i64..1000, b in 1i64..1000, c in 1i64..50) {
        let width_of = |expr: &str| -> u32 {
            let source = format!(
                "package t;\ntype T = Stream(Bit({expr}));\nstreamlet s {{ i : T in, o : T out, }}\nimpl x of s {{ i => o, }}"
            );
            let out = compile(&[("t.td", &source)], &CompileOptions::default())
                .unwrap_or_else(|e| panic!("{e}"));
            let port = &out.project.streamlet("s").unwrap().ports[0];
            tydi::spec::lower(&port.ty).unwrap()[0].element_bits
        };
        // Commutativity.
        prop_assert_eq!(width_of(&format!("{a} + {b}")), width_of(&format!("{b} + {a}")));
        prop_assert_eq!(width_of(&format!("{a} * {c} + 1")), width_of(&format!("{c} * {a} + 1")));
        // min/max relations.
        prop_assert_eq!(
            width_of(&format!("min({a}, {b}) + max({a}, {b})")),
            width_of(&format!("{a} + {b}"))
        );
        // ceil(log2(2^c)) == c for exact powers.
        prop_assert_eq!(u64::from(width_of(&format!("ceil(log2(2 ^ {c})) + 1"))), c as u64 + 1);
    }

    /// Generative for-loops expand to exactly the requested number of
    /// instances and connections, regardless of bounds.
    #[test]
    fn for_expansion_count(n in 1usize..12) {
        let source = format!(
            "package t;\nuse std;\ntype B = Stream(Bit(8));\nstreamlet top_s {{ i : B in [{n}], }}\n\
             impl top_i of top_s {{\n    for k in (0..{n}) {{\n        instance v(voider_i<type B>),\n        i[k] => v.i,\n    }}\n}}"
        );
        let sources = with_stdlib(&[("t.td", source.as_str())]);
        let refs: Vec<(&str, &str)> = sources.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let out = compile(&refs, &CompileOptions::default()).unwrap();
        let top = out.project.implementation("top_i").unwrap();
        prop_assert_eq!(top.instances().len(), n);
        prop_assert_eq!(top.connections().len(), n);
        prop_assert_eq!(out.project.validate(), Ok(()));
    }
}
