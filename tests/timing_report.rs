//! Regression tests on the shape of `tydic --timings` output.
//!
//! The historic bug: the headline duration summed per-stage times and
//! presented the sum as elapsed time, which double-counts when stage
//! work overlaps on the thread pool. The fixed report separates the
//! two: per-stage **self times** on one line, then `totals: self
//! <sum>, wall <elapsed>` as distinct numbers, then per-stage cache
//! reuse counts. These tests pin that shape (and the reuse counters)
//! by running the real binary.

use std::path::PathBuf;
use std::process::Command;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tydic-timing-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create workdir");
    dir
}

fn tydic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tydic"))
}

const DESIGN: &str = "package timing;\ntype B = Stream(Bit(8));\n\
                      streamlet s { i : B in, o : B out, }\nimpl x of s { i => o, }\n";

/// Runs `tydic check --timings` and returns stderr.
fn check_with_timings(dir: &std::path::Path, extra: &[&str]) -> String {
    let design = dir.join("t.td");
    std::fs::write(&design, DESIGN).expect("write design");
    let mut cmd = tydic();
    cmd.arg("check")
        .arg(&design)
        .arg("--timings")
        .arg("--cache-dir")
        .arg(dir.join("cache"));
    cmd.args(extra);
    let out = cmd.output().expect("run tydic");
    assert!(
        out.status.success(),
        "tydic failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stderr).to_string()
}

/// Extracts `name <duration>` pairs from `stages:` lines; durations
/// print via `Duration`'s Debug form (`1.2ms`, `340µs`, `0ns`, ...).
fn stage_line<'a>(stderr: &'a str, prefix: &str) -> &'a str {
    stderr
        .lines()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("missing `{prefix}` line in:\n{stderr}"))
}

#[test]
fn report_separates_self_times_from_the_wall_total() {
    let dir = workdir();
    let stderr = check_with_timings(&dir, &["--no-cache"]);

    // Per-stage line names every stage and labels them as self times.
    let stages = stage_line(&stderr, "stages: ");
    for stage in ["parse", "elaborate", "sugar", "drc"] {
        assert!(stages.contains(stage), "`{stage}` missing in: {stages}");
    }
    assert!(
        stages.ends_with("(self times)"),
        "self-time label missing: {stages}"
    );

    // Totals line reports self and wall separately — two numbers, not
    // one sum presented as elapsed time.
    let totals = stage_line(&stderr, "totals: ");
    assert!(
        totals.contains("self ") && totals.contains(", wall "),
        "totals must carry self and wall separately: {totals}"
    );

    // The headline `ok:` line reports the wall figure, not the sum.
    let ok = stage_line(&stderr, "ok: ");
    let wall = totals.split(", wall ").nth(1).unwrap().trim();
    assert!(
        ok.ends_with(&format!("in {wall}")),
        "headline should report the wall time `{wall}`: {ok}"
    );

    // Cache accounting is part of the report shape.
    let cache = stage_line(&stderr, "cache: ");
    assert!(
        cache.contains("parse") && cache.contains("reused") && cache.contains("recomputed"),
        "cache line shape: {cache}"
    );

    // Type-store statistics follow: distinct interned nodes, dedup
    // hit rate, cached-expansion reuse.
    let types = stage_line(&stderr, "types: ");
    assert!(
        types.contains("distinct node(s) interned")
            && types.contains("hit rate")
            && types.contains("expansions:"),
        "type-store line shape: {types}"
    );
    // The design (plus stdlib) interns a nonzero number of types.
    assert!(
        !types.starts_with("types: 0 distinct"),
        "a cold compile must intern types: {types}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_includes_parallel_elaboration_line() {
    let dir = workdir();
    let stderr = check_with_timings(&dir, &["--no-cache"]);
    // The `par:` line reports how elaboration fanned out: worker
    // threads, package counts per import-DAG level, and type-store
    // shard contention.
    let par = stage_line(&stderr, "par: ");
    assert!(
        par.contains("thread(s)")
            && par.contains("packages per level [")
            && par.contains("shard contention event(s)"),
        "parallelism line shape: {par}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_line_pins_the_thread_override() {
    let dir = workdir();
    let design = dir.join("t.td");
    std::fs::write(&design, DESIGN).expect("write design");
    let out = tydic()
        .arg("check")
        .arg(&design)
        .arg("--timings")
        .arg("--no-cache")
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .env("TYDI_THREADS", "1")
        .output()
        .expect("run tydic");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    let par = stage_line(&stderr, "par: ");
    assert!(
        par.starts_with("par: 1 thread(s)"),
        "TYDI_THREADS=1 must pin the reported worker count: {par}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_run_reports_stage_reuse() {
    let dir = workdir();
    let cold = check_with_timings(&dir, &[]);
    assert!(
        stage_line(&cold, "cache: ").contains("elaborate 0/1"),
        "cold run should recompute elaboration: {cold}"
    );
    let warm = check_with_timings(&dir, &[]);
    let cache = stage_line(&warm, "cache: ");
    assert!(
        cache.contains("elaborate 1/0") && cache.contains("sugar 1/0") && cache.contains("drc 1/0"),
        "warm run should reuse the later stages: {cache}"
    );
    assert!(
        cache.contains("parse 2 reused / 0 recomputed"),
        "warm run should reuse both parses (stdlib + design): {cache}"
    );
    // The warm run replays the type-store counts persisted with the
    // elaboration artifact instead of reporting zeros.
    let types = stage_line(&warm, "types: ");
    assert!(
        !types.starts_with("types: 0 distinct"),
        "cache-served compile must restore type-store stats: {types}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_mode_recompiles_on_edit_and_reports_reuse() {
    let dir = workdir();
    let design = dir.join("w.td");
    std::fs::write(&design, DESIGN).expect("write design");
    // Spawn the watcher limited to two compiles, append a comment
    // after it starts, and collect its output.
    let child = tydic()
        .arg("check")
        .arg(&design)
        .arg("--watch")
        .arg("--watch-runs")
        .arg("2")
        .arg("--poll-ms")
        .arg("25")
        .arg("--timings")
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn tydic --watch");
    std::thread::sleep(std::time::Duration::from_millis(400));
    let mut text = std::fs::read_to_string(&design).unwrap();
    text.push_str("\n// watch edit\n");
    std::fs::write(&design, text).expect("touch design");
    let out = child.wait_with_output().expect("watcher exits");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        stderr.contains("change detected, recompiling..."),
        "watcher must react to the edit:\n{stderr}"
    );
    // The recompile after a comment-only edit reuses elaboration.
    let last_cache = stderr
        .lines()
        .rfind(|l| l.starts_with("cache: "))
        .expect("cache lines");
    assert!(
        last_cache.contains("elaborate 1/0"),
        "comment edit must reuse elaboration: {last_cache}"
    );
    assert_eq!(
        stderr.matches("ok: ").count(),
        2,
        "exactly two compiles:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
