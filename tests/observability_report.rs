//! The `--timings` report and `--timings-json` must tell one story.
//!
//! The `types:`/`par:` lines and the sim channel table used to format
//! their own private structs (`TypeStoreStats`, `ParallelStats`,
//! `ChannelStats`); they now read the metrics registry, and these
//! tests pin two things across that migration:
//!
//! * **format**: this file re-renders the report from the
//!   `--timings-json` snapshot through the *pre-migration* format
//!   templates, then requires the rebuilt text byte-for-byte in
//!   stderr — a drifted template or a renamed metric fails here;
//! * **coverage**: every namespace the report draws from
//!   (`timings.`, `cache.`, `types.`, `par.`, `sim.`) is present in
//!   the JSON file.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use tydi_obs::json::{parse, Json};

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tydic-obs-report-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create workdir");
    dir
}

fn tydic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tydic"))
}

fn cookbook(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("cookbook")
        .join(name)
}

/// Runs the binary, asserting success; returns (stderr, parsed
/// `--timings-json` document).
fn run_with_snapshot(mut cmd: Command, json_path: &Path) -> (String, Json) {
    cmd.arg("--timings").arg("--timings-json").arg(json_path);
    let out = cmd.output().expect("run tydic");
    assert!(
        out.status.success(),
        "tydic failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    let text = std::fs::read_to_string(json_path).expect("read timings json");
    let doc = parse(&text).unwrap_or_else(|e| panic!("timings json invalid: {e}"));
    (stderr, doc)
}

fn counter(doc: &Json, key: &str) -> u64 {
    doc.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing counter `{key}`")) as u64
}

fn gauge(doc: &Json, key: &str) -> f64 {
    doc.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing gauge `{key}`"))
}

fn text<'a>(doc: &'a Json, key: &str) -> &'a str {
    doc.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing text `{key}`"))
}

#[test]
fn compile_report_lines_render_from_the_snapshot() {
    let dir = workdir("check");
    let design = dir.join("t.td");
    std::fs::write(
        &design,
        "package timing;\ntype B = Stream(Bit(8));\n\
         streamlet s { i : B in, o : B out, }\nimpl x of s { i => o, }\n",
    )
    .expect("write design");
    let json_path = dir.join("m.json");
    let mut cmd = tydic();
    cmd.arg("check")
        .arg(&design)
        .arg("--no-cache")
        .arg("--cache-dir")
        .arg(dir.join("cache"));
    let (stderr, doc) = run_with_snapshot(cmd, &json_path);

    // Rebuild the `types:` line through the pre-migration template.
    let expected_types = format!(
        "types: {} distinct node(s) interned, {} dedup hit(s) ({:.0}% hit rate); \
         expansions: {} reused / {} computed",
        counter(&doc, "types.distinct"),
        counter(&doc, "types.intern_hits"),
        gauge(&doc, "types.intern_hit_rate_pct"),
        counter(&doc, "types.expansions_reused"),
        counter(&doc, "types.expansions_computed"),
    );
    assert!(
        stderr.lines().any(|l| l == expected_types),
        "stderr must carry the registry-rendered line\n  {expected_types}\nin:\n{stderr}"
    );

    // Rebuild the `par:` line.
    let levels = text(&doc, "par.level_packages");
    let expected_par = format!(
        "par: {} thread(s), packages per level [{}], {} shard contention event(s)",
        counter(&doc, "par.threads"),
        if levels.is_empty() { "-" } else { levels },
        counter(&doc, "types.shard_contention"),
    );
    assert!(
        stderr.lines().any(|l| l == expected_par),
        "stderr must carry the registry-rendered line\n  {expected_par}\nin:\n{stderr}"
    );

    // Every compile-side namespace lands in the JSON file.
    for key in [
        "timings.parse_ms",
        "timings.elaborate_ms",
        "timings.sugar_ms",
        "timings.drc_ms",
        "timings.total_self_ms",
        "timings.wall_ms",
        "cache.stage.parse.recomputed",
        "cache.stage.drc.reused",
    ] {
        assert!(
            doc.get(key).and_then(Json::as_f64).is_some(),
            "snapshot lacks `{key}`"
        );
    }
    assert!(gauge(&doc, "timings.wall_ms") > 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One channel row, read back from the snapshot like the binary does.
struct Row {
    name: String,
    transferred: u64,
    max_occupancy: u64,
    capacity: u64,
    refused: u64,
}

impl Row {
    fn saturated(&self) -> bool {
        self.max_occupancy >= self.capacity
    }
}

#[test]
fn sim_channel_table_renders_from_the_snapshot() {
    let dir = workdir("sim");
    let json_path = dir.join("m.json");
    let mut cmd = tydic();
    cmd.arg("sim")
        .arg(cookbook("09_parallelize.td"))
        .arg("--top")
        .arg("one_per_cycle_i")
        .arg("--no-cache")
        .arg("--cache-dir")
        .arg(dir.join("cache"));
    let (stderr, doc) = run_with_snapshot(cmd, &json_path);

    // Group the `sim.channel.<scenario>.<name>.<field>` keys back into
    // per-scenario channel rows. Scenario names carry no dots; channel
    // names may, so only the first segment splits.
    let mut scenarios: BTreeMap<String, BTreeMap<String, Row>> = BTreeMap::new();
    for (key, value) in doc.as_object().expect("flat snapshot object") {
        let Some(rest) = key.strip_prefix("sim.channel.") else {
            continue;
        };
        let (scenario, rest) = rest.split_once('.').expect("scenario segment");
        let (name, field) = rest.rsplit_once('.').expect("field suffix");
        let row = scenarios
            .entry(scenario.to_string())
            .or_default()
            .entry(name.to_string())
            .or_insert_with(|| Row {
                name: name.to_string(),
                transferred: 0,
                max_occupancy: 0,
                capacity: 0,
                refused: 0,
            });
        let value = value.as_f64().expect("numeric channel counter") as u64;
        match field {
            "transferred" => row.transferred = value,
            "max_occupancy" => row.max_occupancy = value,
            "capacity" => row.capacity = value,
            "refused" => row.refused = value,
            other => panic!("unexpected channel field `{other}`"),
        }
    }
    assert_eq!(
        scenarios.len() as u64,
        counter(&doc, "sim.scenarios"),
        "every scenario publishes channel counters"
    );
    assert!(
        gauge(&doc, "sim.elapsed_ms") >= 0.0,
        "sim wall time missing from snapshot"
    );

    // Re-render each scenario's table through the pre-migration
    // templates and require it verbatim (as a contiguous block) in
    // stderr.
    for (scenario, rows) in &scenarios {
        let mut stats: Vec<&Row> = rows
            .values()
            .filter(|c| c.transferred > 0 || c.refused > 0)
            .collect();
        stats.sort_by(|a, b| {
            (b.refused, b.max_occupancy, &a.name).cmp(&(a.refused, a.max_occupancy, &b.name))
        });
        let mut block = String::new();
        writeln!(
            block,
            "channels [{}]: {} active of {} ({} saturated)",
            scenario,
            stats.len(),
            rows.len(),
            rows.values().filter(|c| c.saturated()).count(),
        )
        .unwrap();
        block.push_str("  xfer   max/cap  refused  name\n");
        for c in stats.iter().take(12) {
            writeln!(
                block,
                "  {:<6} {:>3}/{:<4} {:>7}  {}{}",
                c.transferred,
                c.max_occupancy,
                c.capacity,
                c.refused,
                c.name,
                if c.saturated() { "  [saturated]" } else { "" },
            )
            .unwrap();
        }
        if stats.len() > 12 {
            writeln!(block, "  ... {} more", stats.len() - 12).unwrap();
        }
        assert!(
            stderr.contains(&block),
            "stderr must carry the registry-rendered channel table for \
             `{scenario}`:\n{block}\nin:\n{stderr}"
        );
        assert!(!stats.is_empty(), "the parallelize sim moves data");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_deny_renders_hazards_as_source_diagnostics() {
    let dir = workdir("deny");
    let out = tydic()
        .arg("analyze")
        .arg(cookbook("13_analyze.td"))
        .arg("--deny")
        .arg("warning")
        .arg("--no-cache")
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .output()
        .expect("run tydic analyze");
    assert!(
        !out.status.success(),
        "--deny warning must fail on the starved join"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The hazard renders through the compiler's diagnostic pipeline,
    // pointing at the declaring implementation in source — not just
    // naming a channel.
    let diag = stderr
        .lines()
        .find(|l| l.starts_with("error: credit-starvation:"))
        .unwrap_or_else(|| panic!("no rendered hazard diagnostic in:\n{stderr}"));
    assert!(
        diag.contains("[analyze] at ") && diag.contains(".td:"),
        "hazard must carry a source location: {diag}"
    );
    assert!(
        stderr
            .lines()
            .any(|l| l.trim_start().starts_with("| ^") || (l.contains('|') && l.contains('^'))),
        "hazard must render the source line with a caret:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
