//! `tydic serve` round-trip latency: warm daemon checks vs cold
//! process starts, against the real `tydic` binary.
//!
//! Three schedules are measured over the same generated design:
//!
//! * **cold process** — a full `tydic check --no-cache` run per
//!   iteration: process spawn, cache-less compile, exit;
//! * **warm daemon** — one NDJSON `check` job round-trip over the
//!   daemon's unix socket, served from the resident [`ArtifactCache`]
//!   and warm interners;
//! * **delegated CLI** — `tydic check --daemon`: a fresh client
//!   process per iteration that forwards the job to the daemon, so
//!   the measured win is what an editor shelling out actually sees.
//!
//! Besides timing, the bench **asserts** the daemon contract: the
//! second request onward must report `warm` (elaboration served from
//! the resident cache) and the warm round-trip must be measurably
//! (>= 2x) faster than the cold process start — so a daemon or cache
//! regression fails the bench-smoke CI job rather than just printing
//! slower numbers. Writes `BENCH_serve.json` at the repository root.
//!
//! Unix-only: the daemon's transport is a unix domain socket.

#[cfg(unix)]
mod imp {
    use criterion::{black_box, Criterion};
    use std::path::Path;
    use std::process::{Child, Command, Stdio};
    use std::time::{Duration, Instant};
    use tydi_serve::client::Client;
    use tydi_serve::protocol::{JobKind, JobRequest, JobResponse};

    /// Streamlet count of the generated design — large enough that
    /// the compile dominates trivial fixed costs, small enough that a
    /// cold run stays interactive.
    const STREAMLETS: usize = 24;

    fn tydic() -> Command {
        Command::new(env!("CARGO_BIN_EXE_tydic"))
    }

    /// A multi-streamlet design exercising distinct logical types per
    /// streamlet (so elaboration does real per-entry work).
    fn design() -> String {
        let mut text = String::from("package bench_serve;\n");
        for index in 0..STREAMLETS {
            let width = 8 + (index % 24);
            text.push_str(&format!(
                "Group G{index} {{ data: Bit({width}), tag: Bit(4), }}\n\
                 type T{index} = Stream(G{index});\n\
                 streamlet s{index} {{ i : T{index} in, o : T{index} out, }}\n\
                 impl x{index} of s{index} {{ i => o, }}\n"
            ));
        }
        text
    }

    /// One full cold `tydic check --no-cache` process run.
    fn cold_process(design: &Path) -> Duration {
        let t0 = Instant::now();
        let status = tydic()
            .arg("check")
            .arg(design)
            .arg("--no-cache")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run tydic check");
        let elapsed = t0.elapsed();
        assert!(status.success(), "cold check failed");
        elapsed
    }

    /// One `tydic check --daemon` process run (spawn, forward to the
    /// daemon, replay output, exit).
    fn delegated_process(design: &Path, cache: &Path) -> Duration {
        let t0 = Instant::now();
        let status = tydic()
            .arg("check")
            .arg(design)
            .arg("--daemon")
            .arg("--cache-dir")
            .arg(cache)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run tydic check --daemon");
        let elapsed = t0.elapsed();
        assert!(status.success(), "delegated check failed");
        elapsed
    }

    fn check_request(design: &Path) -> JobRequest {
        let mut request = JobRequest::new(JobKind::Check);
        request.files = vec![design.display().to_string()];
        request
    }

    /// One warm job round-trip over the already-connected client.
    fn warm_roundtrip(client: &mut Client, design: &Path) -> (Duration, JobResponse) {
        let t0 = Instant::now();
        let response = client.request(&check_request(design)).expect("warm check");
        let elapsed = t0.elapsed();
        assert!(response.ok, "warm check failed: {}", response.stderr);
        (elapsed, response)
    }

    fn spawn_daemon(cache: &Path) -> Child {
        let child = tydic()
            .arg("serve")
            .arg("--cache-dir")
            .arg(cache)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let socket = cache.join("serve.sock");
        let deadline = Instant::now() + Duration::from_secs(10);
        while Client::connect(&socket).is_err() {
            assert!(Instant::now() < deadline, "daemon never bound {socket:?}");
            std::thread::sleep(Duration::from_millis(20));
        }
        child
    }

    /// Best-of-N wall time of `f`.
    fn best_of(n: usize, mut f: impl FnMut() -> Duration) -> Duration {
        (0..n).map(|_| black_box(f())).min().expect("samples")
    }

    pub fn bench(c: &mut Criterion) {
        let dir = std::env::temp_dir().join(format!("tydic-bench-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create workdir");
        let design_path = dir.join("bench.td");
        std::fs::write(&design_path, design()).expect("write design");
        let cache = dir.join("cache");

        let mut daemon = spawn_daemon(&cache);
        let socket = cache.join("serve.sock");
        let mut client = Client::connect(&socket).expect("connect");

        // Prime: the first request compiles cold inside the daemon;
        // from the second on, every stage must be served resident.
        warm_roundtrip(&mut client, &design_path);
        let (_, primed) = warm_roundtrip(&mut client, &design_path);
        assert!(
            primed.warm,
            "second daemon check must reuse the resident cache: {}",
            primed.stderr
        );

        let cold = best_of(5, || cold_process(&design_path));
        let warm = best_of(15, || warm_roundtrip(&mut client, &design_path).0);
        let delegated = best_of(5, || delegated_process(&design_path, &cache));

        let warm_speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        let delegated_speedup = cold.as_secs_f64() / delegated.as_secs_f64().max(1e-9);
        println!(
            "\n====== tydic serve: warm daemon vs cold process ({STREAMLETS} streamlets) ======"
        );
        println!("cold process start:      {cold:>12.2?}");
        println!("warm daemon round-trip:  {warm:>12.2?}  ({warm_speedup:.1}x)");
        println!("delegated `--daemon`:    {delegated:>12.2?}  ({delegated_speedup:.1}x)");
        println!(
            "================================================================================\n"
        );

        tydi_bench::BenchReport::new("serve")
            .text("units", "ms (best-of-N, one generated design)")
            .metric("streamlets", STREAMLETS as f64)
            .metric("cold_process_ms", cold.as_secs_f64() * 1e3)
            .metric("warm_daemon_ms", warm.as_secs_f64() * 1e3)
            .metric("delegated_cli_ms", delegated.as_secs_f64() * 1e3)
            .metric("warm_speedup", warm_speedup)
            .metric("delegated_speedup", delegated_speedup)
            .write()
            .expect("write BENCH_serve.json");

        // The headline daemon claim: a warm in-socket check beats a
        // cold process start by a wide margin. 2x is deliberately
        // conservative (locally it is orders of magnitude) so shared
        // CI runners never flake on it.
        assert!(
            warm_speedup >= 2.0,
            "warm daemon check must be measurably faster than a cold process start \
             (cold {cold:?}, warm {warm:?})"
        );

        let mut group = c.benchmark_group("serve");
        group.sample_size(10);
        group.bench_function("cold/process", |b| b.iter(|| cold_process(&design_path)));
        group.bench_function("warm/daemon-roundtrip", |b| {
            b.iter(|| warm_roundtrip(&mut client, &design_path).0)
        });
        group.finish();

        // Graceful shutdown: the daemon persists its cache, removes
        // the socket, and exits cleanly.
        let response = client
            .request(&JobRequest::new(JobKind::Shutdown))
            .expect("shutdown");
        assert!(response.ok);
        let status = daemon.wait().expect("daemon exit");
        assert!(status.success(), "daemon exit status: {status:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(unix)]
criterion::criterion_group!(benches, imp::bench);
#[cfg(unix)]
criterion::criterion_main!(benches);

#[cfg(not(unix))]
fn main() {}
